"""Unit tests for dataset persistence."""

import numpy as np

from repro.datasets.io import load_collection, save_collection
from repro.similarity.vectors import VectorCollection


class TestRoundTrip:
    def test_save_and_load(self, tmp_path, sparse_text_collection):
        path = save_collection(sparse_text_collection, tmp_path / "corpus")
        assert path.suffix == ".npz"
        loaded = load_collection(path)
        assert loaded.n_vectors == sparse_text_collection.n_vectors
        assert loaded.n_features == sparse_text_collection.n_features
        np.testing.assert_allclose(
            loaded.matrix.toarray(), sparse_text_collection.matrix.toarray()
        )
        np.testing.assert_array_equal(loaded.ids, sparse_text_collection.ids)

    def test_load_without_extension(self, tmp_path, tiny_collection):
        save_collection(tiny_collection, tmp_path / "tiny")
        loaded = load_collection(tmp_path / "tiny")
        assert loaded.n_vectors == tiny_collection.n_vectors

    def test_empty_collection_round_trip(self, tmp_path):
        empty = VectorCollection.from_dense(np.zeros((3, 5)))
        path = save_collection(empty, tmp_path / "empty.npz")
        loaded = load_collection(path)
        assert loaded.n_vectors == 3
        assert loaded.nnz == 0
