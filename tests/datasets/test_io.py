"""Unit tests for dataset persistence.

Beyond round-trips, this module pins the durability contract dataset
archives share with the serving snapshots: every write goes through the
atomic writer (crash mid-save leaves the previous file, never a torn one)
and every malformed archive raises the typed
:class:`~repro.datasets.io.CollectionArchiveError` naming the path.
"""

import numpy as np
import pytest

from repro.datasets.io import (
    CollectionArchiveError,
    load_collection,
    pending_temp_files,
    save_collection,
)
from repro.similarity.vectors import VectorCollection
from repro.testing import faults
from repro.testing.faults import InjectedCrash


class TestRoundTrip:
    def test_save_and_load(self, tmp_path, sparse_text_collection):
        path = save_collection(sparse_text_collection, tmp_path / "corpus")
        assert path.suffix == ".npz"
        loaded = load_collection(path)
        assert loaded.n_vectors == sparse_text_collection.n_vectors
        assert loaded.n_features == sparse_text_collection.n_features
        np.testing.assert_allclose(
            loaded.matrix.toarray(), sparse_text_collection.matrix.toarray()
        )
        np.testing.assert_array_equal(loaded.ids, sparse_text_collection.ids)

    def test_load_without_extension(self, tmp_path, tiny_collection):
        save_collection(tiny_collection, tmp_path / "tiny")
        loaded = load_collection(tmp_path / "tiny")
        assert loaded.n_vectors == tiny_collection.n_vectors

    def test_empty_collection_round_trip(self, tmp_path):
        empty = VectorCollection.from_dense(np.zeros((3, 5)))
        path = save_collection(empty, tmp_path / "empty.npz")
        loaded = load_collection(path)
        assert loaded.n_vectors == 3
        assert loaded.nnz == 0


class TestAtomicSave:
    def test_save_leaves_no_temp_file(self, tmp_path, tiny_collection):
        path = save_collection(tiny_collection, tmp_path / "clean")
        assert [entry.name for entry in tmp_path.iterdir()] == [path.name]
        assert not pending_temp_files()

    def test_crash_before_replace_keeps_previous_archive(
        self, tmp_path, tiny_collection
    ):
        """The dataset writer shares the snapshot writer's crash seam."""
        path = save_collection(tiny_collection, tmp_path / "stable")
        before = path.read_bytes()
        bigger = VectorCollection.from_dense(np.ones((8, 5)))
        with faults.inject() as plan:
            plan.crash_before_replace()
            with pytest.raises(InjectedCrash):
                save_collection(bigger, path)
        assert any(fired[0] == "snapshot_crash" for fired in plan.fired)
        assert path.read_bytes() == before
        # The aborted temp file stays on disk like a real crash's would,
        # but is deliberately dropped from the leak registry.
        assert list(tmp_path.glob(".stable.npz.tmp.*"))
        assert not pending_temp_files()

    def test_failed_save_cleans_its_temp_file(self, tmp_path):
        class Hostile:
            """Breaks mid-serialisation, after the temp file opened."""

            matrix = property(lambda self: (_ for _ in ()).throw(RuntimeError("boom")))
            ids = np.arange(3)

        with pytest.raises(RuntimeError, match="boom"):
            save_collection(Hostile(), tmp_path / "broken")
        assert list(tmp_path.iterdir()) == []
        assert not pending_temp_files()


class TestTypedLoadErrors:
    def test_truncated_archive_raises_typed_error(self, tmp_path, tiny_collection):
        path = save_collection(tiny_collection, tmp_path / "torn")
        data = path.read_bytes()
        for cut in (0, 1, len(data) // 2, len(data) - 1):
            path.write_bytes(data[:cut])
            with pytest.raises(CollectionArchiveError) as excinfo:
                load_collection(path)
            assert excinfo.value.path == path
            assert str(path) in str(excinfo.value)

    def test_bitflipped_archive_raises_typed_error(self, tmp_path, tiny_collection):
        path = save_collection(tiny_collection, tmp_path / "flipped")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CollectionArchiveError):
            load_collection(path)

    def test_non_archive_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(CollectionArchiveError, match="unreadable archive"):
            load_collection(path)

    def test_missing_member_raises_typed_error(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, data=np.zeros(3))  # indices/indptr/shape/ids absent
        with pytest.raises(CollectionArchiveError, match="missing member"):
            load_collection(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        """Absence is not corruption — the historical error type stands."""
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "never-written.npz")

    def test_typed_error_is_a_value_error(self, tmp_path):
        """Callers catching the historical ValueError keep working."""
        path = tmp_path / "legacy.npz"
        path.write_bytes(b"junk")
        with pytest.raises(ValueError):
            load_collection(path)
