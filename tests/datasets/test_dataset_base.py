"""Unit tests for the Dataset container."""

import numpy as np

from repro.datasets.base import Dataset, DatasetStatistics


class TestDataset:
    def test_from_dense(self):
        dataset = Dataset.from_dense(np.ones((4, 3)), name="ones")
        assert dataset.name == "ones"
        assert dataset.n_vectors == 4
        assert dataset.n_features == 3
        assert len(dataset) == 4

    def test_from_sets_and_dicts(self):
        sets = Dataset.from_sets([{0, 1}, {2}], n_features=4)
        assert sets.collection.is_binary
        dicts = Dataset.from_dicts([{0: 2.0}, {3: 1.0}], n_features=4)
        assert dicts.nnz == 2

    def test_statistics(self):
        dataset = Dataset.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        stats = dataset.statistics()
        assert isinstance(stats, DatasetStatistics)
        assert stats.n_vectors == 2
        assert stats.nnz == 3
        assert stats.average_length == 1.5
        assert stats.as_row() == (2, 2, 1.5, 3)

    def test_binarized_view(self):
        dataset = Dataset.from_dicts([{0: 5.0, 1: 2.0}], n_features=2, name="weighted")
        binary = dataset.binarized()
        assert binary.collection.is_binary
        assert "binary" in binary.name
        assert binary.metadata["binary"] is True

    def test_subset(self):
        dataset = Dataset.from_dense(np.arange(12, dtype=float).reshape(4, 3), name="base")
        subset = dataset.subset([0, 2])
        assert subset.n_vectors == 2
        assert subset.metadata["subset_size"] == 2

    def test_repr(self):
        dataset = Dataset.from_dense(np.ones((2, 2)), name="tiny")
        assert "tiny" in repr(dataset)
