"""Unit tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    dataset_spec,
    load_dataset,
)


class TestRegistry:
    def test_six_paper_datasets_registered(self):
        assert set(DATASET_NAMES) == {
            "rcv1",
            "wikiwords100k",
            "wikiwords500k",
            "wikilinks",
            "orkut",
            "twitter",
        }
        assert set(PAPER_STATISTICS) == set(DATASET_NAMES)

    def test_paper_statistics_table1_values(self):
        assert PAPER_STATISTICS["rcv1"].n_vectors == 804_414
        assert PAPER_STATISTICS["twitter"].average_length == 1369.0
        assert PAPER_STATISTICS["orkut"].n_features == 3_072_626

    def test_dataset_spec_lookup(self):
        spec = dataset_spec("RCV1")  # case-insensitive
        assert spec.kind == "text"
        with pytest.raises(ValueError, match="unknown dataset"):
            dataset_spec("enron")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_load_dataset_small_scale(self, name):
        dataset = load_dataset(name, scale=0.1, seed=0)
        assert dataset.name == name
        assert dataset.n_vectors > 0
        assert dataset.nnz > 0
        assert dataset.metadata["stands_in_for"]
        # TF-IDF weighting applied -> not binary
        assert not dataset.collection.is_binary

    def test_scale_changes_size(self):
        small = load_dataset("rcv1", scale=0.1, seed=0)
        large = load_dataset("rcv1", scale=0.3, seed=0)
        assert large.n_vectors > small.n_vectors

    def test_deterministic_given_seed(self):
        import numpy as np

        a = load_dataset("wikilinks", scale=0.1, seed=4)
        b = load_dataset("wikilinks", scale=0.1, seed=4)
        assert np.array_equal(a.collection.matrix.toarray(), b.collection.matrix.toarray())

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("rcv1", scale=0.0)

    def test_relative_average_lengths_preserved(self):
        """Text stand-ins keep the paper's ordering: WikiWords100K longest, graphs shortest."""
        wiki = load_dataset("wikiwords100k", scale=0.2, seed=0)
        rcv1 = load_dataset("rcv1", scale=0.2, seed=0)
        wikilinks = load_dataset("wikilinks", scale=0.2, seed=0)
        assert wiki.collection.average_length > rcv1.collection.average_length
        assert rcv1.collection.average_length > wikilinks.collection.average_length
