"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_graph, synthetic_text_corpus
from repro.evaluation.ground_truth import exact_all_pairs
from repro.similarity.transforms import tfidf_weighting


class TestSyntheticTextCorpus:
    def test_shape_and_determinism(self):
        a = synthetic_text_corpus(n_documents=100, vocabulary_size=500, seed=3)
        b = synthetic_text_corpus(n_documents=100, vocabulary_size=500, seed=3)
        assert a.n_vectors == 100
        assert a.n_features == 500
        assert np.array_equal(a.collection.matrix.toarray(), b.collection.matrix.toarray())

    def test_seed_changes_corpus(self):
        a = synthetic_text_corpus(n_documents=50, vocabulary_size=200, seed=1)
        b = synthetic_text_corpus(n_documents=50, vocabulary_size=200, seed=2)
        assert not np.array_equal(a.collection.matrix.toarray(), b.collection.matrix.toarray())

    def test_average_length_roughly_matches(self):
        corpus = synthetic_text_corpus(
            n_documents=400, vocabulary_size=3000, average_length=60, seed=0
        )
        # lengths are log-normal with repeated tokens collapsing, so allow slack
        assert 25 <= corpus.collection.average_length <= 80

    def test_planted_duplicates_create_high_similarity_pairs(self):
        corpus = synthetic_text_corpus(
            n_documents=200,
            vocabulary_size=800,
            duplicate_fraction=0.4,
            cluster_size=4,
            mutation_rate=0.05,
            seed=5,
        )
        weighted = tfidf_weighting(corpus.collection)
        truth = exact_all_pairs(weighted, 0.7, "cosine")
        assert len(truth) > 0

    def test_zero_duplicate_fraction(self):
        corpus = synthetic_text_corpus(
            n_documents=60, vocabulary_size=300, duplicate_fraction=0.0, seed=2
        )
        assert corpus.n_vectors == 60
        assert np.all(corpus.metadata["cluster_labels"] == -1)

    def test_cluster_labels_recorded(self):
        corpus = synthetic_text_corpus(
            n_documents=100, vocabulary_size=300, duplicate_fraction=0.5, cluster_size=5, seed=2
        )
        labels = corpus.metadata["cluster_labels"]
        assert len(labels) == 100
        assert (labels >= 0).sum() == 10 * 5  # 10 clusters of 5

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_text_corpus(n_documents=0)
        with pytest.raises(ValueError):
            synthetic_text_corpus(duplicate_fraction=1.5)
        with pytest.raises(ValueError):
            synthetic_text_corpus(cluster_size=1)


class TestSyntheticGraph:
    def test_shape_and_determinism(self):
        a = synthetic_graph(n_nodes=120, seed=7)
        b = synthetic_graph(n_nodes=120, seed=7)
        assert a.n_vectors == 120
        assert a.n_features == 120
        assert np.array_equal(a.collection.matrix.toarray(), b.collection.matrix.toarray())

    def test_no_self_loops(self):
        graph = synthetic_graph(n_nodes=80, seed=1)
        dense = graph.collection.matrix.toarray()
        assert np.all(np.diag(dense) == 0)

    def test_degree_scale(self):
        graph = synthetic_graph(n_nodes=300, average_degree=15, seed=3)
        assert 5 <= graph.collection.average_length <= 30

    def test_community_structure_creates_similar_rows(self):
        graph = synthetic_graph(
            n_nodes=200, average_degree=15, n_communities=8, within_community_fraction=0.9, seed=9
        )
        weighted = tfidf_weighting(graph.collection)
        truth = exact_all_pairs(weighted, 0.5, "cosine")
        communities = graph.metadata["communities"]
        if len(truth) == 0:
            pytest.skip("no similar pairs at this seed; community check not applicable")
        same = sum(communities[i] == communities[j] for i, j in truth.pair_set())
        assert same / len(truth) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_graph(n_nodes=0)
        with pytest.raises(ValueError):
            synthetic_graph(n_nodes=10, n_communities=20)
        with pytest.raises(ValueError):
            synthetic_graph(within_community_fraction=1.5)
