"""Unit tests for the search-result containers."""

import numpy as np
import pytest

from repro.search.results import ScoredPair, SearchResult


@pytest.fixture()
def result():
    return SearchResult(
        left=np.array([0, 1, 2]),
        right=np.array([5, 4, 3]),
        similarities=np.array([0.9, 0.7, 0.8]),
        method="test",
        threshold=0.6,
        measure="cosine",
        n_candidates=10,
        n_pruned=7,
        timings={"generation": 0.1, "verification": 0.2, "total": 0.35},
    )


class TestSearchResult:
    def test_len_and_iteration(self, result):
        assert len(result) == 3
        pairs = list(result)
        assert pairs[0] == ScoredPair(0, 5, 0.9)
        assert all(isinstance(pair, ScoredPair) for pair in pairs)

    def test_pair_set_and_similarity_map(self, result):
        assert result.pair_set() == {(0, 5), (1, 4), (2, 3)}
        assert result.similarity_map()[(2, 3)] == pytest.approx(0.8)

    def test_top_k(self, result):
        top = result.top(2)
        assert [pair.similarity for pair in top] == [0.9, 0.8]
        assert result.top(0) == []
        assert len(result.top(100)) == 3

    def test_total_time(self, result):
        assert result.total_time == pytest.approx(0.35)
        empty = SearchResult(
            left=np.array([]), right=np.array([]), similarities=np.array([]),
            method="x", threshold=0.5, measure="cosine",
        )
        assert empty.total_time == 0.0

    def test_repr(self, result):
        assert "method='test'" in repr(result)
        assert "n_pairs=3" in repr(result)
