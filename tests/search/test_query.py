"""Unit tests for query-centric similarity search (QueryIndex)."""

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection


@pytest.fixture(scope="module")
def cosine_index(sparse_text_collection):
    return QueryIndex(sparse_text_collection, measure="cosine", threshold=0.7, seed=3)


class TestQueryIndexCosine:
    def test_query_with_existing_row_finds_itself(self, sparse_text_collection, cosine_index):
        row = 5
        query = sparse_text_collection.matrix[row].toarray().ravel()
        hits = cosine_index.query(query, threshold=0.9)
        assert row in {pair.j for pair in hits}
        by_row = {pair.j: pair.similarity for pair in hits}
        assert by_row[row] > 0.9

    def test_query_results_are_truly_similar(self, sparse_text_collection, cosine_index):
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        query_row = 10
        query = sparse_text_collection.matrix[query_row].toarray().ravel()
        for pair in cosine_index.query(query, threshold=0.7):
            if pair.j == query_row:
                continue
            exact = measure.exact(prepared, query_row, pair.j)
            assert exact > 0.5  # estimates can wobble, but hits must be genuinely similar

    def test_exact_verification_mode(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection, measure="cosine", threshold=0.7, verification="exact", seed=3
        )
        query = sparse_text_collection.matrix[7].toarray().ravel()
        hits = index.query(query)
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        for pair in hits:
            if pair.j != 7:
                assert pair.similarity == pytest.approx(measure.exact(prepared, 7, pair.j), abs=1e-9)

    def test_top_k_ordering_and_size(self, sparse_text_collection, cosine_index):
        query = sparse_text_collection.matrix[3].toarray().ravel()
        top = cosine_index.top_k(query, k=5)
        assert len(top) <= 5
        similarities = [pair.similarity for pair in top]
        assert similarities == sorted(similarities, reverse=True)
        assert top[0].j == 3  # the row itself is its own nearest neighbour

    def test_empty_query_returns_nothing(self, sparse_text_collection, cosine_index):
        assert cosine_index.query(np.zeros(sparse_text_collection.n_features)) == []

    def test_feature_mismatch_rejected(self, cosine_index):
        with pytest.raises(ValueError, match="features"):
            cosine_index.query(np.ones(3))

    def test_invalid_parameters(self, sparse_text_collection):
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection, threshold=1.5)
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection, verification="magic")
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection).query(np.ones(1), threshold=0.0)
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection).top_k(np.ones(1), k=0)

    def test_index_properties(self, sparse_text_collection, cosine_index):
        assert cosine_index.n_indexed == sparse_text_collection.n_vectors
        assert cosine_index.n_signatures >= 1


class TestQueryIndexJaccard:
    def test_set_query(self, binary_sets_collection):
        index = QueryIndex(binary_sets_collection, measure="jaccard", threshold=0.5, seed=1)
        row = 4
        query_set = set(binary_sets_collection.row_features(row).tolist())
        hits = index.query(query_set, threshold=0.8)
        assert row in {pair.j for pair in hits}

    def test_dict_query_binary_cosine(self, binary_sets_collection):
        index = QueryIndex(
            binary_sets_collection, measure="binary_cosine", threshold=0.7, verification="exact", seed=1
        )
        row = 9
        query = {int(f): 1.0 for f in binary_sets_collection.row_features(row)}
        hits = index.query(query)
        assert row in {pair.j for pair in hits}
