"""Unit tests for query-centric similarity search (QueryIndex)."""

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.similarity.measures import get_measure


@pytest.fixture(scope="module")
def cosine_index(sparse_text_collection):
    return QueryIndex(sparse_text_collection, measure="cosine", threshold=0.7, seed=3)


class TestQueryIndexCosine:
    def test_query_with_existing_row_finds_itself(self, sparse_text_collection, cosine_index):
        row = 5
        query = sparse_text_collection.matrix[row].toarray().ravel()
        hits = cosine_index.query(query, threshold=0.9)
        assert row in {pair.j for pair in hits}
        by_row = {pair.j: pair.similarity for pair in hits}
        assert by_row[row] > 0.9

    def test_query_results_are_truly_similar(self, sparse_text_collection, cosine_index):
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        query_row = 10
        query = sparse_text_collection.matrix[query_row].toarray().ravel()
        for pair in cosine_index.query(query, threshold=0.7):
            if pair.j == query_row:
                continue
            exact = measure.exact(prepared, query_row, pair.j)
            assert exact > 0.5  # estimates can wobble, but hits must be genuinely similar

    def test_exact_verification_mode(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection, measure="cosine", threshold=0.7, verification="exact", seed=3
        )
        query = sparse_text_collection.matrix[7].toarray().ravel()
        hits = index.query(query)
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        for pair in hits:
            if pair.j != 7:
                assert pair.similarity == pytest.approx(measure.exact(prepared, 7, pair.j), abs=1e-9)

    def test_top_k_ordering_and_size(self, sparse_text_collection, cosine_index):
        query = sparse_text_collection.matrix[3].toarray().ravel()
        top = cosine_index.top_k(query, k=5)
        assert len(top) <= 5
        similarities = [pair.similarity for pair in top]
        assert similarities == sorted(similarities, reverse=True)
        assert top[0].j == 3  # the row itself is its own nearest neighbour

    def test_empty_query_returns_nothing(self, sparse_text_collection, cosine_index):
        assert cosine_index.query(np.zeros(sparse_text_collection.n_features)) == []

    def test_feature_mismatch_rejected(self, cosine_index):
        with pytest.raises(ValueError, match="features"):
            cosine_index.query(np.ones(3))

    def test_invalid_parameters(self, sparse_text_collection):
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection, threshold=1.5)
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection, verification="magic")
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection).query(np.ones(1), threshold=0.0)
        with pytest.raises(ValueError):
            QueryIndex(sparse_text_collection).top_k(np.ones(1), k=0)

    def test_index_properties(self, sparse_text_collection, cosine_index):
        assert cosine_index.n_indexed == sparse_text_collection.n_vectors
        assert cosine_index.n_signatures >= 1


class TestQueryIndexServing:
    def test_query_many_accepts_matrix_and_row_lists(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection, measure="cosine", threshold=0.7, verification="exact", seed=3
        )
        dense = sparse_text_collection.matrix[:4].toarray()
        from_matrix = index.query_many(dense, threshold=0.8)
        from_sparse = index.query_many(sparse_text_collection.matrix[:4], threshold=0.8)
        assert from_matrix == from_sparse
        assert len(from_matrix) == 4
        for row, hits in enumerate(from_matrix):
            assert row in {pair.j for pair in hits}

    def test_insert_then_query_finds_new_rows(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection, measure="cosine", threshold=0.7, verification="exact", seed=3
        )
        fresh = sparse_text_collection.matrix[:3].toarray() * 1.5  # same directions
        rows = index.insert(fresh)
        assert rows.tolist() == [150, 151, 152]
        assert index.n_indexed == 153
        assert index.n_alive == 153
        hits = index.query(fresh[0], threshold=0.95)
        assert {0, 150} <= {pair.j for pair in hits}

    def test_insert_validates_shapes_and_ids(self, sparse_text_collection):
        index = QueryIndex(sparse_text_collection, measure="cosine", seed=3)
        with pytest.raises(ValueError, match="features"):
            index.insert(np.ones((2, 3)))
        with pytest.raises(ValueError, match="ids"):
            index.insert(
                sparse_text_collection.matrix[:2].toarray(), ids=["only-one"]
            )
        assert index.insert([]).size == 0

    def test_delete_tombstones_and_staleness_accounting(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection,
            measure="cosine",
            threshold=0.7,
            verification="exact",
            seed=3,
            staleness_budget=1.0,  # never rebuild during this test
        )
        query = sparse_text_collection.matrix[5].toarray().ravel()
        assert 5 in {pair.j for pair in index.query(query, threshold=0.9)}
        assert index.delete([5]) == 1
        assert index.n_deleted == 1
        assert index.n_alive == index.n_indexed - 1
        assert index.n_stale_postings == 1
        assert 5 not in {pair.j for pair in index.query(query, threshold=0.9)}
        # Idempotent, and bounds are validated.
        assert index.delete([5]) == 0
        with pytest.raises(IndexError):
            index.delete([index.n_indexed])

    def test_zero_staleness_budget_rebuilds_on_next_query(self, sparse_text_collection):
        index = QueryIndex(
            sparse_text_collection,
            measure="cosine",
            threshold=0.7,
            verification="exact",
            seed=3,
            staleness_budget=0.0,
        )
        index.delete([1, 2])
        assert index.n_stale_postings == 2
        index.query(sparse_text_collection.matrix[7].toarray().ravel())
        assert index.n_stale_postings == 0
        assert index.n_deleted == 2  # tombstones survive the rebuild

    def test_invalid_staleness_budget_rejected(self, sparse_text_collection):
        with pytest.raises(ValueError, match="staleness_budget"):
            QueryIndex(sparse_text_collection, staleness_budget=1.5)


class TestQueryIndexJaccard:
    def test_set_query(self, binary_sets_collection):
        index = QueryIndex(binary_sets_collection, measure="jaccard", threshold=0.5, seed=1)
        row = 4
        query_set = set(binary_sets_collection.row_features(row).tolist())
        hits = index.query(query_set, threshold=0.8)
        assert row in {pair.j for pair in hits}

    def test_dict_query_binary_cosine(self, binary_sets_collection):
        index = QueryIndex(
            binary_sets_collection, measure="binary_cosine", threshold=0.7, verification="exact", seed=1
        )
        row = 9
        query = {int(f): 1.0 for f in binary_sets_collection.row_features(row)}
        hits = index.query(query)
        assert row in {pair.j for pair in hits}
