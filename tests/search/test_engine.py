"""Unit tests for the search engine and the one-call entry point."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.candidates.lsh_index import LSHGenerator
from repro.search.engine import SearchEngine, all_pairs_similarity, as_collection
from repro.similarity.vectors import VectorCollection
from repro.verification.exact import ExactVerifier


class TestAsCollection:
    def test_dataset_passthrough(self, sparse_text_dataset):
        assert as_collection(sparse_text_dataset) is sparse_text_dataset.collection

    def test_collection_passthrough(self, tiny_collection):
        assert as_collection(tiny_collection) is tiny_collection

    def test_dense_array(self):
        collection = as_collection(np.ones((3, 4)))
        assert isinstance(collection, VectorCollection)
        assert collection.n_vectors == 3

    def test_sparse_matrix(self):
        matrix = sp.eye(5, format="csr")
        assert as_collection(matrix).n_vectors == 5

    def test_list_of_sets(self):
        collection = as_collection([{0, 1}, {2}])
        assert collection.is_binary
        assert collection.n_vectors == 2

    def test_list_of_dicts(self):
        collection = as_collection([{0: 1.5}, {1: 2.0}])
        assert collection.n_vectors == 2
        assert not collection.is_binary


class TestSearchEngine:
    def test_run_produces_timed_result(self, sparse_text_dataset):
        generator = LSHGenerator("cosine", 0.7, seed=1)
        verifier = ExactVerifier(sparse_text_dataset.collection, "cosine", 0.7)
        engine = SearchEngine(generator, verifier)
        result = engine.run(sparse_text_dataset)
        assert result.method == "lsh+exact"
        assert result.n_candidates > 0
        assert set(result.timings) == {"generation", "verification", "total"}
        assert result.timings["total"] >= result.timings["generation"]
        assert all(value > 0.7 for value in result.similarities)

    def test_measure_mismatch_rejected(self, sparse_text_dataset):
        generator = LSHGenerator("cosine", 0.7)
        verifier = ExactVerifier(sparse_text_dataset.collection, "jaccard", 0.7)
        with pytest.raises(ValueError, match="measure"):
            SearchEngine(generator, verifier)

    def test_threshold_mismatch_rejected(self, sparse_text_dataset):
        generator = LSHGenerator("cosine", 0.7)
        verifier = ExactVerifier(sparse_text_dataset.collection, "cosine", 0.8)
        with pytest.raises(ValueError, match="threshold"):
            SearchEngine(generator, verifier)

    def test_custom_name(self, sparse_text_dataset):
        generator = LSHGenerator("cosine", 0.7)
        verifier = ExactVerifier(sparse_text_dataset.collection, "cosine", 0.7)
        engine = SearchEngine(generator, verifier, name="my-pipeline")
        assert engine.name == "my-pipeline"

    def test_metadata_carries_prune_trace(self, sparse_text_dataset):
        result = all_pairs_similarity(
            sparse_text_dataset, 0.7, "cosine", method="lsh_bayeslsh", seed=1
        )
        assert "prune_trace" in result.metadata
        assert result.metadata["hash_comparisons"] > 0


class TestAllPairsSimilarity:
    def test_default_method_for_cosine(self, sparse_text_dataset):
        result = all_pairs_similarity(sparse_text_dataset, 0.8, "cosine", seed=1)
        assert result.method == "ap_bayeslsh"
        assert result.measure == "cosine"

    def test_default_method_for_jaccard(self, binary_sets_collection):
        result = all_pairs_similarity(binary_sets_collection, 0.5, "jaccard", seed=1)
        assert result.method == "lsh_bayeslsh"

    def test_accepts_raw_dense_data(self):
        rng = np.random.default_rng(0)
        base = np.abs(rng.random((1, 20)))
        data = np.vstack([base, base * 3.0, np.abs(rng.random((30, 20)))])
        result = all_pairs_similarity(data, 0.95, "cosine", method="allpairs")
        assert (0, 1) in result.pair_set()

    def test_pipeline_kwargs_forwarded(self, sparse_text_dataset):
        result = all_pairs_similarity(
            sparse_text_dataset, 0.7, "cosine", method="lsh_bayeslsh", seed=1, epsilon=0.01
        )
        assert len(result) >= 0  # smoke: kwargs accepted

    def test_dataset_wrapper_and_collection_agree(self, sparse_text_dataset):
        from_dataset = all_pairs_similarity(
            sparse_text_dataset, 0.8, "cosine", method="allpairs"
        )
        from_collection = all_pairs_similarity(
            sparse_text_dataset.collection, 0.8, "cosine", method="allpairs"
        )
        assert from_dataset.pair_set() == from_collection.pair_set()
