"""Unit tests for the pipeline factory."""

import pytest

from repro.search.pipelines import PIPELINES, make_pipeline, pipelines_for_measure


class TestPipelinesForMeasure:
    def test_cosine_excludes_ppjoin(self):
        names = pipelines_for_measure("cosine")
        assert "ppjoin" not in names
        assert "allpairs" in names and "lsh_bayeslsh" in names

    def test_jaccard_excludes_allpairs(self):
        names = pipelines_for_measure("jaccard")
        assert "allpairs" not in names
        assert "ppjoin" in names

    def test_binary_cosine_includes_everything(self):
        names = pipelines_for_measure("binary_cosine")
        assert set(names) == set(PIPELINES)


class TestMakePipeline:
    @pytest.mark.parametrize("name", sorted(PIPELINES))
    def test_every_pipeline_builds_and_runs(self, name, sparse_text_dataset, binary_sets_collection):
        if name == "ppjoin":
            data, measure = binary_sets_collection, "jaccard"
        else:
            data, measure = sparse_text_dataset, "cosine"
        engine = make_pipeline(name, data, measure=measure, threshold=0.7, seed=1)
        result = engine.run(data)
        assert result.method == name
        assert result.n_candidates >= result.n_pruned

    def test_unknown_pipeline(self, sparse_text_dataset):
        with pytest.raises(ValueError, match="unknown pipeline"):
            make_pipeline("magic", sparse_text_dataset)

    @pytest.mark.parametrize(
        "name, generator_name, verifier_name",
        [
            ("allpairs", "allpairs", "exact"),
            ("ap_bayeslsh", "allpairs", "bayeslsh"),
            ("ap_bayeslsh_lite", "allpairs", "bayeslsh_lite"),
            ("lsh", "lsh", "exact"),
            ("lsh_approx", "lsh", "lsh_approx"),
            ("lsh_bayeslsh", "lsh", "bayeslsh"),
            ("lsh_bayeslsh_lite", "lsh", "bayeslsh_lite"),
            ("ppjoin", "ppjoin", "exact"),
        ],
    )
    def test_name_dispatch_selects_components(
        self, name, generator_name, verifier_name, sparse_text_dataset, binary_sets_collection
    ):
        """Every pipeline name maps to exactly the documented component pair."""
        if name == "ppjoin":
            data, measure = binary_sets_collection, "jaccard"
        else:
            data, measure = sparse_text_dataset, "cosine"
        engine = make_pipeline(name, data, measure=measure, threshold=0.6, seed=0)
        assert engine.name == name
        assert engine.generator.name == generator_name
        assert engine.verifier.name == verifier_name

    def test_measure_incompatibility(self, binary_sets_collection):
        with pytest.raises(ValueError, match="does not support"):
            make_pipeline("allpairs", binary_sets_collection, measure="jaccard", threshold=0.5)
        with pytest.raises(ValueError, match="does not support"):
            make_pipeline("ppjoin", binary_sets_collection, measure="cosine", threshold=0.5)

    def test_unknown_kwargs_rejected(self, sparse_text_dataset):
        with pytest.raises(TypeError, match="unknown pipeline arguments"):
            make_pipeline(
                "lsh_bayeslsh", sparse_text_dataset, measure="cosine", threshold=0.7, bogus=1
            )

    def test_lsh_pipelines_share_hash_family(self, sparse_text_dataset):
        engine = make_pipeline(
            "lsh_bayeslsh", sparse_text_dataset, measure="cosine", threshold=0.7, seed=2
        )
        engine.run(sparse_text_dataset)
        assert engine.generator.family is engine.verifier.family

    def test_bayes_parameters_forwarded(self, sparse_text_dataset):
        engine = make_pipeline(
            "ap_bayeslsh",
            sparse_text_dataset,
            measure="cosine",
            threshold=0.7,
            epsilon=0.01,
            delta=0.02,
            gamma=0.04,
        )
        params = engine.verifier.params
        assert (params.epsilon, params.delta, params.gamma) == (0.01, 0.02, 0.04)

    def test_lite_h_forwarded(self, sparse_text_dataset):
        engine = make_pipeline(
            "ap_bayeslsh_lite", sparse_text_dataset, measure="cosine", threshold=0.7, h=64
        )
        assert engine.verifier.params.h == 64

    def test_lsh_approx_num_hashes_forwarded(self, sparse_text_dataset):
        engine = make_pipeline(
            "lsh_approx", sparse_text_dataset, measure="cosine", threshold=0.7, num_hashes=256
        )
        assert engine.verifier.num_hashes == 256
