"""Unit tests for the streamed executor's building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import VerificationOutput
from repro.search.executor import (
    DEFAULT_BLOCK_SIZE,
    PairBlockSource,
    StreamExecutor,
    _PairKeyAccumulator,
)


class TestPairKeyAccumulator:
    def test_matches_candidate_set_dedup(self):
        rng = np.random.default_rng(3)
        n_vectors = 50
        accumulator = _PairKeyAccumulator(n_vectors)
        all_left, all_right = [], []
        for _ in range(20):
            left = rng.integers(0, n_vectors, size=40)
            right = rng.integers(0, n_vectors, size=40)
            accumulator.add(left, right)
            all_left.append(left)
            all_right.append(right)
        keys = accumulator.finalize()
        reference = CandidateSet.from_arrays(
            np.concatenate(all_left), np.concatenate(all_right)
        )
        np.testing.assert_array_equal(keys // n_vectors, reference.left)
        np.testing.assert_array_equal(keys % n_vectors, reference.right)

    def test_drops_self_pairs_and_canonicalises(self):
        accumulator = _PairKeyAccumulator(10)
        accumulator.add(np.array([3, 5, 7]), np.array([3, 2, 7]))
        keys = accumulator.finalize()
        assert keys.tolist() == [2 * 10 + 5]

    def test_cross_block_duplicates_removed(self):
        accumulator = _PairKeyAccumulator(10)
        accumulator.add(np.array([1]), np.array([2]))
        accumulator.add(np.array([2]), np.array([1]))
        assert len(accumulator.finalize()) == 1

    def test_rejects_huge_collections(self):
        with pytest.raises(NotImplementedError):
            _PairKeyAccumulator(1 << 31)


class TestPairBlockSource:
    def _source(self, block_size=3):
        keys = np.array([0 * 7 + 1, 0 * 7 + 4, 2 * 7 + 3, 2 * 7 + 6, 5 * 7 + 6])
        return PairBlockSource(keys, n_vectors=7, block_size=block_size)

    def test_len_and_getitem(self):
        source = self._source()
        assert len(source) == 5
        assert source[0] == (0, 1)
        assert source[4] == (5, 6)

    def test_blocks_cover_all_pairs_in_order(self):
        source = self._source(block_size=2)
        pairs = []
        for left, right in source.blocks():
            assert len(left) <= 2
            pairs.extend(zip(left.tolist(), right.tolist()))
        assert pairs == [(0, 1), (0, 4), (2, 3), (2, 6), (5, 6)]

    def test_all_pairs(self):
        left, right = self._source().all_pairs()
        assert left.tolist() == [0, 0, 2, 2, 5]
        assert right.tolist() == [1, 4, 3, 6, 6]


class TestVerificationOutputMerge:
    def _output(self, n, pruned, trace, **kwargs):
        return VerificationOutput(
            left=np.arange(n - pruned, dtype=np.int64),
            right=np.arange(n - pruned, dtype=np.int64) + 1,
            estimates=np.full(n - pruned, 0.5),
            n_candidates=n,
            n_pruned=pruned,
            trace=trace,
            **kwargs,
        )

    def test_counters_sum(self):
        merged = VerificationOutput.merge(
            [
                self._output(5, 2, [], hash_comparisons=10, exact_computations=3),
                self._output(4, 1, [], hash_comparisons=6, exact_computations=2),
            ]
        )
        assert merged.n_candidates == 9
        assert merged.n_pruned == 3
        assert merged.hash_comparisons == 16
        assert merged.exact_computations == 5
        assert merged.n_output == 6

    def test_trace_merges_round_by_round(self):
        # block A runs three rounds, block B finishes after one: B contributes
        # its final not-pruned count to A's later rounds.
        a = self._output(10, 4, [(32, 9), (64, 7), (96, 6)])
        b = self._output(6, 2, [(32, 4)])
        merged = VerificationOutput.merge([a, b])
        assert merged.trace == [(32, 13), (64, 11), (96, 10)]

    def test_mismatched_round_boundaries_rejected(self):
        a = self._output(4, 0, [(32, 4)])
        b = self._output(4, 0, [(16, 4)])
        with pytest.raises(ValueError, match="mismatched round boundaries"):
            VerificationOutput.merge([a, b])

    def test_empty_merge(self):
        merged = VerificationOutput.merge([])
        assert merged.n_candidates == 0
        assert merged.n_output == 0
        assert merged.trace == []


class TestStreamExecutor:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="block_size"):
            StreamExecutor(block_size=0)
        with pytest.raises(ValueError, match="n_workers"):
            StreamExecutor(n_workers=0)

    def test_defaults(self):
        executor = StreamExecutor()
        assert executor.block_size == DEFAULT_BLOCK_SIZE
        assert executor.n_workers == 1
