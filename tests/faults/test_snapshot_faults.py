"""Crash safety of the snapshot writer and corruption safety of the loader.

The durability contract under test: ``save_query_index`` either publishes a
complete, checksummed archive or leaves the destination untouched; and
``load_query_index`` never returns wrong data silently — every torn,
truncated, bit-flipped or member-stripped archive raises
``SnapshotCorruptError`` naming the offending path.  ``SnapshotStore`` adds
rollback: one bad file (or a crash between data write and pointer update)
never takes the whole store down.
"""

from __future__ import annotations

import zipfile

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import SnapshotCorruptError, SnapshotStore
from repro.testing import faults
from repro.testing.faults import InjectedCrash

from .conftest import planted_collection


@pytest.fixture(scope="module")
def index() -> QueryIndex:
    corpus = planted_collection(61, n=30)
    built = QueryIndex(corpus[:20], measure="cosine", threshold=0.6, seed=3)
    built.insert(corpus[20:])
    built.delete([1, 25])
    return built


@pytest.fixture(scope="module")
def probe_queries() -> np.ndarray:
    return planted_collection(62, n=4)


def _answers(loaded: QueryIndex, queries) -> list:
    return loaded.query_many(queries, threshold=0.5)


# --------------------------------------------------------------------- #
# atomic write
# --------------------------------------------------------------------- #
def test_crash_before_replace_preserves_previous(tmp_path, index, probe_queries):
    """A crash in the temp-write → rename window never touches the old file."""
    path = tmp_path / "index.npz"
    index.save(path)
    reference = _answers(QueryIndex.load(path), probe_queries)
    with faults.inject() as plan:
        plan.crash_before_replace()
        with pytest.raises(InjectedCrash):
            index.save(path)
    assert any(fired[0] == "snapshot_crash" for fired in plan.fired)
    # The aborted save leaves its temp file behind, like a real crash would;
    # the published snapshot is byte-for-byte the previous one.
    assert list(tmp_path.glob(".index.npz.tmp.*"))
    assert _answers(QueryIndex.load(path), probe_queries) == reference


def test_crash_on_first_save_leaves_no_destination(tmp_path, index):
    path = tmp_path / "fresh.npz"
    with faults.inject() as plan:
        plan.crash_before_replace()
        with pytest.raises(InjectedCrash):
            index.save(path)
    assert not path.exists()


def test_failed_save_cleans_its_temp_file(tmp_path, probe_queries):
    with pytest.raises(TypeError):
        from repro.serving.snapshot import save_query_index

        save_query_index("not an index", tmp_path / "bad.npz")
    assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------- #
# corruption detection
# --------------------------------------------------------------------- #
def test_truncated_snapshot_raises_typed_error(tmp_path, index):
    path = tmp_path / "torn.npz"
    with faults.inject() as plan:
        plan.truncate_snapshot(keep_fraction=0.5)
        index.save(path)
    assert any(fired[0] == "snapshot_truncate" for fired in plan.fired)
    with pytest.raises(SnapshotCorruptError) as excinfo:
        QueryIndex.load(path)
    assert excinfo.value.path == path
    assert str(path) in str(excinfo.value)


@pytest.mark.parametrize("offset", [None, 100])
def test_bitflipped_snapshot_raises_typed_error(tmp_path, index, offset):
    path = tmp_path / "flipped.npz"
    with faults.inject() as plan:
        plan.corrupt_snapshot(offset=offset)
        index.save(path)
    assert any(fired[0] == "snapshot_corrupt" for fired in plan.fired)
    with pytest.raises(SnapshotCorruptError) as excinfo:
        QueryIndex.load(path)
    assert excinfo.value.path == path


def test_truncation_fuzz_loads_identically_or_raises(tmp_path, index, probe_queries):
    """Every possible truncation point is either rejected or bit-identical.

    Cuts the published archive at sampled byte counts (plus the edges) and
    asserts the loader's only two behaviours: ``SnapshotCorruptError``, or a
    load whose answers match the intact snapshot's.  No other exception type
    and no silently different answers.
    """
    path = tmp_path / "full.npz"
    index.save(path)
    reference = _answers(QueryIndex.load(path), probe_queries)
    data = path.read_bytes()
    size = len(data)
    rng = np.random.default_rng(5)
    cuts = sorted({0, 1, size - 1, size, *rng.integers(2, size - 1, size=12).tolist()})
    target = tmp_path / "cut.npz"
    for cut in cuts:
        target.write_bytes(data[:cut])
        try:
            loaded = QueryIndex.load(target)
        except SnapshotCorruptError as exc:
            assert exc.path == target
            continue
        assert _answers(loaded, probe_queries) == reference


def test_missing_magic_raises_with_path(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, foo=np.zeros(3))
    with pytest.raises(SnapshotCorruptError, match="not a QueryIndex snapshot") as excinfo:
        QueryIndex.load(path)
    assert str(path) in str(excinfo.value)


def test_non_zip_file_raises_typed_error(tmp_path):
    path = tmp_path / "noise.npz"
    path.write_bytes(b"this is not an archive at all")
    with pytest.raises(SnapshotCorruptError, match="unreadable archive"):
        QueryIndex.load(path)


def test_stripped_member_raises_typed_error(tmp_path, index):
    """A structurally valid zip missing one array is caught by the manifest."""
    path = tmp_path / "full.npz"
    index.save(path)
    stripped = tmp_path / "stripped.npz"
    with zipfile.ZipFile(path) as src, zipfile.ZipFile(stripped, "w") as dst:
        for item in src.infolist():
            if item.filename != "deleted.npy":
                dst.writestr(item, src.read(item.filename))
    with pytest.raises(SnapshotCorruptError, match="'deleted'"):
        QueryIndex.load(stripped)


def test_checksum_manifest_catches_wrong_data_in_valid_zip(tmp_path, index):
    """Zip-level CRCs pass (the archive was rewritten cleanly) but the
    per-array manifest still catches the altered contents."""
    path = tmp_path / "full.npz"
    index.save(path)
    with np.load(path, allow_pickle=False) as archive:
        members = {name: np.asarray(archive[name]) for name in archive.files}
    members["deleted"] = ~members["deleted"]
    evil = tmp_path / "evil.npz"
    np.savez_compressed(evil, **members)
    with pytest.raises(SnapshotCorruptError, match="checksum mismatch"):
        QueryIndex.load(evil)


def test_unsupported_version_stays_plain_value_error(tmp_path, index):
    """An intact archive of an unknown version is not *corrupt* — the error
    must say so distinctly (and keep the historical ValueError contract)."""
    path = tmp_path / "full.npz"
    index.save(path)
    with np.load(path, allow_pickle=False) as archive:
        members = {name: np.asarray(archive[name]) for name in archive.files}
    members["version"] = np.array(99, dtype=np.int64)
    future = tmp_path / "future.npz"
    np.savez_compressed(future, **members)
    with pytest.raises(ValueError, match="version 99") as excinfo:
        QueryIndex.load(future)
    assert not isinstance(excinfo.value, SnapshotCorruptError)


# --------------------------------------------------------------------- #
# rolling snapshot store
# --------------------------------------------------------------------- #
def test_store_load_rolls_back_past_corrupt_latest(tmp_path, index, probe_queries):
    store = SnapshotStore(tmp_path / "snaps", keep=3)
    store.save(index, layout="npz")  # byte-level corruption below is .npz-specific
    latest = store.save(index, layout="npz")
    reference = _answers(QueryIndex.load(store.snapshots()[0]), probe_queries)
    data = bytearray(latest.read_bytes())
    data[len(data) // 2] ^= 0xFF
    latest.write_bytes(bytes(data))
    assert _answers(store.load(), probe_queries) == reference


def test_store_crash_between_data_and_pointer_keeps_previous(
    tmp_path, index, probe_queries
):
    store = SnapshotStore(tmp_path / "snaps", keep=3)
    first = store.save(index, layout="npz")
    reference = _answers(QueryIndex.load(first), probe_queries)
    with faults.inject() as plan:
        plan.crash_before_replace()
        with pytest.raises(InjectedCrash):
            store.save(index, layout="npz")
    assert any(fired[0] == "snapshot_crash" for fired in plan.fired)
    assert store.pointer_path.read_text().strip() == first.name
    assert _answers(store.load(), probe_queries) == reference


def test_store_prunes_to_keep_and_points_at_newest(tmp_path, index):
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    store.save(index)
    store.save(index)
    newest = store.save(index)
    names = [path.name for path in store.snapshots()]
    assert len(names) == 2
    assert store.pointer_path.read_text().strip() == newest.name == names[-1]


def test_store_raises_aggregate_error_when_everything_is_corrupt(tmp_path, index):
    store = SnapshotStore(tmp_path / "snaps", keep=3)
    store.save(index, layout="npz")  # write_bytes below needs file snapshots
    store.save(index, layout="npz")
    for path in store.snapshots():
        path.write_bytes(b"garbage")
    with pytest.raises(SnapshotCorruptError, match="every snapshot failed"):
        store.load()


def test_empty_store_raises_file_not_found(tmp_path):
    store = SnapshotStore(tmp_path / "nothing")
    with pytest.raises(FileNotFoundError):
        store.load()
