"""Crash torture for the write-ahead log: no acknowledged mutation is lost.

Three escalating layers:

* **byte-level** — the active segment truncated at every byte boundary of
  its final record recovers exactly the intact prefix (and physically
  repairs the file); every single-byte XOR anywhere in the record stream
  raises the typed ``SnapshotCorruptError`` instead of replaying wrong
  data.
* **process-level** — a sacrificial fork child is SIGKILLed at every
  occurrence of the ``wal_append`` and ``wal_fsync`` seams while running a
  scripted mutation plan; the parent replays the log and must land on a
  state bit-identical to an uncrashed twin that applied exactly the logged
  prefix, with every *acknowledged* mutation present (``fsync="always"``:
  acked ⊆ logged, RPO = 0).
* **end-to-end** — a forked serving daemon is SIGKILLed under live client
  ingest; recovery answers identically to a twin built from the
  acknowledged batches, and the ``health`` endpoint degrades while a
  replay is in flight.

The kill is an in-process SIGKILL, so the OS page cache survives — these
tests prove process-crash durability for every policy and leave power-loss
durability to ``fsync="always"``'s per-record fsync (same write path,
fsync verified by the policy counters in ``tests/serving/test_wal.py``).
"""

from __future__ import annotations

import os
import shutil
import signal
import threading

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import SnapshotCorruptError
from repro.serving.wal import WriteAheadLog
from repro.testing import faults
from repro.testing.faults import InjectedCrash

from .conftest import planted_collection


@pytest.fixture()
def corpus() -> np.ndarray:
    return planted_collection(81, n=60)


@pytest.fixture()
def probes() -> np.ndarray:
    probe = planted_collection(82, n=5)
    probe[:2] = planted_collection(81, n=60)[:2]
    return probe


def _fresh_index(corpus) -> QueryIndex:
    return QueryIndex(corpus[:40], measure="cosine", threshold=0.6, seed=19)


#: the scripted mutation plan the crash matrices replay prefixes of
def _mutations(corpus) -> list:
    return [
        ("insert", {"data": corpus[40:46], "ids": None}),
        ("delete", {"rows": [1, 41]}),
        ("insert", {"data": corpus[46:50], "ids": [500, 501, 502, 503]}),
    ]


def _apply(index: QueryIndex, mutation) -> None:
    kind, spec = mutation
    if kind == "insert":
        index.insert(spec["data"], ids=spec["ids"])
    else:
        index.delete(spec["rows"])


def _assert_twin(recovered: QueryIndex, twin: QueryIndex, probes) -> None:
    assert recovered.n_indexed == twin.n_indexed
    assert np.array_equal(recovered.ids, twin.ids)
    assert np.array_equal(recovered._deleted, twin._deleted)
    assert recovered._next_default_id == twin._next_default_id
    state = recovered._family.state_dict()
    for key, value in twin._family.state_dict().items():
        assert np.array_equal(state[key], value), key
    assert recovered.query_many(probes, threshold=0.5) == twin.query_many(
        probes, threshold=0.5
    )


# --------------------------------------------------------------------- #
# byte-level torture
# --------------------------------------------------------------------- #
def _two_record_wal(tmp_path) -> tuple:
    """A single-segment WAL holding one insert and one small final delete."""
    from repro.similarity.vectors import VectorCollection

    wal_dir = tmp_path / "wal"
    with WriteAheadLog(wal_dir) as wal:
        collection = VectorCollection.from_dense(planted_collection(83, n=6)[:4])
        wal.append_insert(collection, np.arange(4))
        wal.append_delete([0, 2])
    segment = wal_dir / "wal-00000001.log"
    data = segment.read_bytes()
    # offset where the final (delete) record begins: re-read record 1's
    # framing — 20-byte file header, 29-byte record header, payload length
    import struct

    payload_len = struct.unpack_from("<Q", data, 20 + 13)[0]
    first_end = 20 + 29 + payload_len
    return wal_dir, data, first_end


def test_truncation_at_every_byte_recovers_the_prefix(tmp_path):
    """Cutting the final record anywhere yields the intact prefix + repair."""
    wal_dir, data, first_end = _two_record_wal(tmp_path)
    target = tmp_path / "torn"
    for cut in range(first_end, len(data)):
        shutil.rmtree(target, ignore_errors=True)
        target.mkdir()
        (target / "wal-00000001.log").write_bytes(data[:cut])
        with WriteAheadLog(target) as wal:
            seqs = [seq for seq, _, _ in wal.records()]
        expected = [1] if cut < len(data) else [1, 2]
        assert seqs == expected, f"cut at byte {cut}"
        # the repair is physical: the file is now exactly the intact prefix
        assert (target / "wal-00000001.log").stat().st_size == (
            first_end if cut < len(data) else len(data)
        )


def test_truncated_wal_accepts_new_appends_after_repair(tmp_path):
    wal_dir, data, first_end = _two_record_wal(tmp_path)
    torn = tmp_path / "torn"
    torn.mkdir()
    (torn / "wal-00000001.log").write_bytes(data[: len(data) - 3])
    with WriteAheadLog(torn) as wal:
        assert wal.stats()["repaired_tails"] == 1
        wal.append_delete([1])  # sequence resumes after the truncated record
        seqs = [seq for seq, _, _ in wal.records()]
    assert seqs == [1, 2]


def test_single_byte_xor_sweep_raises_typed_errors(tmp_path):
    """Every one-byte flip in the record stream is caught, never replayed."""
    wal_dir, data, first_end = _two_record_wal(tmp_path)
    target = tmp_path / "flipped"
    failures = []
    for offset in range(20, len(data)):  # skip the segment file header
        shutil.rmtree(target, ignore_errors=True)
        target.mkdir()
        flipped = bytearray(data)
        flipped[offset] ^= 0x5A
        (target / "wal-00000001.log").write_bytes(bytes(flipped))
        try:
            with WriteAheadLog(target) as wal:
                list(wal.records())
        except SnapshotCorruptError:
            continue
        failures.append(offset)
    assert not failures, f"flips accepted at offsets {failures}"


def test_flipped_file_header_is_rejected(tmp_path):
    wal_dir, data, _ = _two_record_wal(tmp_path)
    target = tmp_path / "badmagic"
    target.mkdir()
    flipped = bytearray(data)
    flipped[0] ^= 0xFF
    (target / "wal-00000001.log").write_bytes(bytes(flipped))
    with pytest.raises(SnapshotCorruptError, match="magic"):
        WriteAheadLog(target)


def test_torn_record_in_sealed_segment_is_corruption(tmp_path, corpus):
    """Only the *final* segment may legally end mid-record."""
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    index.insert(corpus[40:45])
    index.wal.roll()  # seals segment 1, opens segment 2
    index.insert(corpus[45:48])
    index.wal.close()
    sealed = tmp_path / "wal" / "wal-00000001.log"
    sealed.write_bytes(sealed.read_bytes()[:-4])
    with pytest.raises(SnapshotCorruptError, match="sealed segment"):
        list(WriteAheadLog(tmp_path / "wal").records())


def test_crash_during_tail_repair_leaves_the_torn_file_repairable(tmp_path):
    """The repair itself is atomic: a crash in its write→rename window
    leaves the original torn file, and the next open repairs it cleanly."""
    wal_dir, data, first_end = _two_record_wal(tmp_path)
    torn = tmp_path / "torn"
    torn.mkdir()
    torn_bytes = data[: len(data) - 5]
    (torn / "wal-00000001.log").write_bytes(torn_bytes)
    with faults.inject() as plan:
        plan.crash_before_replace(event="wal_replace")
        with pytest.raises(InjectedCrash):
            WriteAheadLog(torn)
    assert any(fired[0] == "snapshot_crash" for fired in plan.fired)
    # the aborted repair left its temp file and the torn original untouched
    assert list(torn.glob(".wal-00000001.log.tmp.*"))
    assert (torn / "wal-00000001.log").read_bytes() == torn_bytes
    with WriteAheadLog(torn) as wal:
        assert [seq for seq, _, _ in wal.records()] == [1]


# --------------------------------------------------------------------- #
# SIGKILL matrix: fork, crash at a seam, recover, compare to the twin
# --------------------------------------------------------------------- #
def _run_crash_round(index, corpus, probes, tmp_path, layout, seam, occurrence):
    """Fork a child that mutates until SIGKILLed at the armed seam."""
    round_dir = tmp_path / f"{seam}-{occurrence}"
    round_dir.mkdir()
    wal_dir = round_dir / "wal"
    ack_path = round_dir / "ack"
    index._wal = None  # re-arm the parent template onto a fresh log
    index.attach_wal(WriteAheadLog(wal_dir, fsync="always"))
    snapshot = index.save(round_dir / "checkpoint", layout=layout)
    plan_mutations = _mutations(corpus)

    pid = os.fork()
    if pid == 0:  # sacrificial child
        try:
            with faults.inject() as plan:
                plan.kill_process(seam, after=occurrence)
                with open(ack_path, "ab", buffering=0) as ack:
                    for mutation in plan_mutations:
                        _apply(index, mutation)
                        ack.write(b"+")  # written only after the ack
            os._exit(0)
        except BaseException:
            os._exit(1)
    _, status = os.waitpid(pid, 0)
    index.wal.close()
    index._wal = None
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

    n_acked = ack_path.stat().st_size if ack_path.exists() else 0
    recovered = QueryIndex.load(snapshot, wal=WriteAheadLog(wal_dir))
    n_logged = recovered.replay_stats()["replayed_records"]
    recovered.wal.close()
    # RPO = 0: every acknowledged mutation is in the log; at most the one
    # in-flight unacknowledged mutation may additionally have landed.
    assert n_acked <= n_logged <= n_acked + 1
    twin = QueryIndex.load(snapshot)
    for mutation in plan_mutations[:n_logged]:
        _apply(twin, mutation)
    _assert_twin(recovered, twin, probes)
    return n_acked, n_logged


@pytest.mark.parametrize("layout", ["npz", "flat"])
@pytest.mark.parametrize("seam", ["wal_append", "wal_fsync"])
def test_sigkill_at_every_seam_occurrence_loses_nothing(
    tmp_path, corpus, probes, layout, seam
):
    index = _fresh_index(corpus)
    observed = []
    for occurrence in range(len(_mutations(corpus))):
        observed.append(
            _run_crash_round(
                index, corpus, probes, tmp_path, layout, seam, occurrence
            )
        )
    # sanity on the matrix itself: each round crashed one mutation later
    assert [logged for _, logged in observed] == [1, 2, 3]
    if seam == "wal_append":
        # killed between write and ack: logged-but-unacked, at-least-once
        assert [acked for acked, _ in observed] == [0, 1, 2]


# --------------------------------------------------------------------- #
# daemon end-to-end: SIGKILL under live ingest, recover, same answers
# --------------------------------------------------------------------- #
def test_daemon_sigkill_recovers_every_acknowledged_batch(
    tmp_path, corpus, probes
):
    from repro.serving.client import DaemonClient, RetriesExhausted

    index = _fresh_index(corpus)
    index.attach_wal(WriteAheadLog(tmp_path / "wal", fsync="always"))
    snapshot = index.save(tmp_path / "checkpoint")
    socket_path = str(tmp_path / "daemon.sock")

    pid = os.fork()
    if pid == 0:  # sacrificial daemon process
        try:
            from repro.serving.daemon import ServingDaemon

            daemon = ServingDaemon(index, socket_path)
            daemon.start()
            signal.pause()  # serve until SIGKILLed
            os._exit(0)
        except BaseException:
            os._exit(1)
    index.wal.close()
    index._wal = None
    try:
        client = DaemonClient(socket_path, retries=8, backoff_ms=20)
        acked = []
        for start in (40, 44, 48):
            batch = [
                {"dense": [float(v) for v in row]}
                for row in corpus[start : start + 4]
            ]
            acked.append(client.insert(batch))
        assert client.delete([1, 41]) >= 1
    finally:
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)
    # the daemon is gone: the retry budget drains into the typed error
    with pytest.raises(RetriesExhausted):
        DaemonClient(socket_path, retries=1, backoff_ms=1).query(corpus[0])
    client.close()

    recovered = QueryIndex.load(snapshot, wal=WriteAheadLog(tmp_path / "wal"))
    assert recovered.replay_stats()["replayed_records"] == 4
    recovered.wal.close()
    twin = QueryIndex.load(snapshot)
    for start in (40, 44, 48):
        twin.insert(corpus[start : start + 4])
    twin.delete([1, 41])
    assert np.array_equal(recovered.ids, twin.ids)
    _assert_twin(recovered, twin, probes)


def test_daemon_health_degrades_while_replay_runs(tmp_path, corpus):
    """``health``/``ready`` report not-serving until the replay finishes."""
    from repro.serving.client import DaemonClient
    from repro.serving.daemon import ServingDaemon

    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    snapshot = index.save(tmp_path / "checkpoint")
    index.insert(corpus[40:50])
    index.insert(corpus[50:55])
    index.wal.close()

    loaded = QueryIndex.load(snapshot)
    socket_path = str(tmp_path / "daemon.sock")
    gate = threading.Event()
    entered = threading.Event()

    def stall(info):
        entered.set()
        assert gate.wait(timeout=30)

    with ServingDaemon(loaded, socket_path) as daemon:
        with DaemonClient(socket_path) as client:
            with faults.inject() as plan:
                plan.on_event("wal_replay", stall)
                replayer = threading.Thread(
                    target=loaded.recover, args=(WriteAheadLog(tmp_path / "wal"),)
                )
                replayer.start()
                try:
                    assert entered.wait(timeout=30)
                    health = client.health()
                    assert health["replaying"] and not health["serving"]
                    assert not client.ready()["ready"]
                finally:
                    gate.set()
                    replayer.join(timeout=30)
            assert not replayer.is_alive()
            health = client.health()
            assert health["serving"] and not health["replaying"]
            assert client.ready()["ready"]
            stats = client.stats()
            assert stats["durability"]["replay"]["replayed_records"] == 2
            assert stats["durability"]["wal"]["records"] == 2
            client.drain()
    loaded.wal.close()
