"""Daemon-under-fault suite: kill/hang/overload with waiting clients.

The resident acceptance property: whatever is injected — a worker SIGKILLed
mid-coalesced-batch, a respawn storm across consecutive batches, a hung
worker recovered through the pool's ``round_timeout``, an epoch refresh
racing live traffic — every request the daemon *accepts and serves* returns
answers bit-identical to the serial oracle, failures surface as *typed*
errors, and the pool heals (respawn, not refork: ``refreshes`` stays 0).
"""

from __future__ import annotations

import threading
import time

from repro.serving import DaemonClient, ServingDaemon
from repro.testing import faults

from tests.daemon.conftest import as_pairs
from tests.daemon.conftest import batch, index, socket_path  # noqa: F401  (fixtures)


def test_kill_mid_batch_with_waiting_clients_is_bit_identical(
    index, batch, socket_path
):
    """SIGKILL a pool worker as a coalesced batch dispatches: every waiting
    client still gets the serial answer, and the slot respawns for the
    next batch instead of reforking the pool."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    index.start_pool(2, respawn_backoff=0.01)
    try:
        n = len(batch)
        answers: list = [None] * n

        def drive(i: int) -> None:
            with DaemonClient(socket_path) as client:
                answers[i] = client.query(batch[i], threshold=0.55)

        with ServingDaemon(index, socket_path, batch_window_ms=25, max_batch=16):
            with faults.inject() as plan:
                plan.kill_worker(0, event="daemon_batch")
                threads = [
                    threading.Thread(target=drive, args=(i,)) for i in range(n)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert ("kill", 0) in plan.fired
            for i in range(n):
                assert answers[i] == as_pairs(oracle[i])
            # The next batch heals the slot: respawn, not refork.
            time.sleep(0.05)
            with DaemonClient(socket_path) as client:
                assert client.query(batch[0], threshold=0.55) == as_pairs(oracle[0])
                pool = client.stats()["pool"]
            assert pool["respawns"] == 1
            assert pool["live_workers"] == 2
            assert pool["refreshes"] == 0
    finally:
        index.close()


def test_respawn_storm_across_consecutive_batches(index, batch, socket_path):
    """Killing a worker on three consecutive batches (below the quarantine
    limit each time, since survival resets the count) respawns three times
    and never corrupts an answer."""
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    index.start_pool(2, max_worker_failures=3, respawn_backoff=0.01)
    try:
        with ServingDaemon(index, socket_path, batch_window_ms=1):
            with faults.inject() as plan:
                # Every other batch: the seam fires before the batch's heal
                # step, so a kill armed for the batch right after a kill
                # would only hit the still-dead slot.
                for round_index in (0, 2, 4):
                    plan.kill_worker(0, event="daemon_batch", round_index=round_index)
                with DaemonClient(socket_path) as client:
                    for _ in range(5):
                        assert client.query(batch[0], threshold=0.55) == oracle
                        time.sleep(0.05)  # past the respawn backoff
                    # A calm batch after the storm serves from a healed pool.
                    assert client.query(batch[0], threshold=0.55) == oracle
                    pool = client.stats()["pool"]
            assert plan.fired.count(("kill", 0)) == 3
            assert pool["respawns"] == 3
            assert pool["quarantined"] == []
            assert pool["live_workers"] == 2
            assert pool["refreshes"] == 0
    finally:
        index.close()


def test_hung_worker_mid_batch_recovers_via_pool_round_timeout(
    index, batch, socket_path
):
    """A SIGSTOPped worker during a daemon batch is declared hung by the
    resident pool's own ``round_timeout`` and the answer stays correct."""
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    index.start_pool(2, round_timeout=2.0, respawn_backoff=0.01)
    try:
        with ServingDaemon(index, socket_path, batch_window_ms=1):
            with faults.inject() as plan:
                plan.hang_worker(1, event="daemon_batch")
                with DaemonClient(socket_path, timeout=60.0) as client:
                    assert client.query(batch[0], threshold=0.55) == oracle
            assert ("hang", 1) in plan.fired
    finally:
        index.close()


def test_epoch_refresh_races_live_traffic(index, batch, socket_path):
    """Inserting segments while clients hammer the daemon: traffic during
    the insert never errors, and traffic after it matches the post-insert
    oracle (the pool refreshed rather than serving stale segments)."""
    from tests.faults.conftest import planted_collection

    index.start_pool(2)
    try:
        stop = threading.Event()
        errors: list = []

        def hammer() -> None:
            try:
                with DaemonClient(socket_path, timeout=60.0) as client:
                    while not stop.is_set():
                        client.query(batch[0], threshold=0.55)
            except Exception as exc:
                errors.append(exc)

        with ServingDaemon(index, socket_path, batch_window_ms=1):
            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            grown = planted_collection(41, n=10)
            new_rows = index.insert(grown)
            time.sleep(0.2)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors, errors
            oracle = index.query_many(batch, threshold=0.55, n_workers=1)
            with DaemonClient(socket_path) as client:
                for i in range(len(batch)):
                    assert client.query(batch[i], threshold=0.55) == as_pairs(
                        oracle[i]
                    )
                probe = client.query(grown[0], threshold=0.55)
                pool = client.stats()["pool"]
        assert any(j == int(new_rows[0]) for j, _ in probe)
        assert pool["refreshes"] >= 1
        assert pool["epoch"] == index._epoch
    finally:
        index.close()


def test_kill_on_serial_daemon_is_a_no_op(index, batch, socket_path):
    """The daemon-batch seam fires with ``pool=None`` when serving serially;
    an armed kill must not crash the dispatcher."""
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    with ServingDaemon(index, socket_path, batch_window_ms=1):
        with faults.inject() as plan:
            plan.kill_worker(0, event="daemon_batch")
            with DaemonClient(socket_path) as client:
                assert client.query(batch[0], threshold=0.55) == oracle
        assert ("kill", 0) not in plan.fired
