"""Worker-loss recovery in the serving pool: bit-identity at every seam.

The acceptance property from the robustness issue: SIGKILLing any one worker
at every stage of ``query_many``/``top_k_many`` (probe hand-off, verify
hand-off, each verification round, the estimates gather, exact ranking) must
complete via the serial fallback with answers bit-identical to the
all-serial run — and leave no ``/dev/shm`` segment behind (enforced suite-
wide by the autouse ``shm_leak_audit`` fixture).  Hung and silenced workers
recover through ``round_timeout``; merely slow workers must survive.
"""

from __future__ import annotations

import logging

import pytest

from repro.search.executor import WorkerFailure
from repro.testing import faults

EVENTS = ["serving_probe", "serving_verify", "serving_round", "serving_estimates"]


def _kill_plan(plan, event: str, victim: int) -> None:
    round_index = 0 if event == "serving_round" else None
    plan.kill_worker(victim, event=event, round_index=round_index)


@pytest.mark.parametrize("event", EVENTS)
@pytest.mark.parametrize("n_workers", [2, 4])
@pytest.mark.parametrize("victim", ["first", "last"])
def test_kill_one_worker_query_many_bit_identical(
    serving_index, query_batch, serial_answers, event, n_workers, victim
):
    worker = 0 if victim == "first" else n_workers - 1
    with faults.inject() as plan:
        _kill_plan(plan, event, worker)
        answers = serving_index.query_many(
            query_batch, threshold=0.55, n_workers=n_workers
        )
    assert ("kill", worker) in plan.fired
    assert answers == serial_answers["query"]


@pytest.mark.parametrize("event", EVENTS)
@pytest.mark.parametrize("n_workers", [2, 4])
def test_kill_one_worker_top_k_estimate_bit_identical(
    serving_index, query_batch, serial_answers, event, n_workers
):
    with faults.inject() as plan:
        _kill_plan(plan, event, 0)
        ranked = serving_index.top_k_many(
            query_batch, k=5, floor_threshold=0.2, rank_by="estimate", n_workers=n_workers
        )
    assert ("kill", 0) in plan.fired
    assert ranked == serial_answers["topk_estimate"]


@pytest.mark.parametrize("event", ["serving_probe", "serving_exact"])
def test_kill_one_worker_top_k_exact_bit_identical(
    serving_index, query_batch, serial_answers, event
):
    with faults.inject() as plan:
        plan.kill_worker(1, event=event)
        ranked = serving_index.top_k_many(
            query_batch, k=5, floor_threshold=0.2, n_workers=4
        )
    assert ("kill", 1) in plan.fired
    assert ranked == serial_answers["topk_exact"]


def test_kill_at_a_later_round_bit_identical(serving_index, query_batch, serial_answers):
    """A mid-protocol loss (round 1, after state built up) still recovers."""
    with faults.inject() as plan:
        plan.kill_worker(0, event="serving_round", round_index=1)
        answers = serving_index.query_many(query_batch, threshold=0.55, n_workers=2)
    assert answers == serial_answers["query"]
    # With this corpus several pairs survive round 0, so round 1 happens and
    # the fault really fired; guard against the test silently weakening.
    assert ("kill", 0) in plan.fired


def test_kill_every_worker_falls_back_fully_serial(
    serving_index, query_batch, serial_answers
):
    """Losing the whole pool degrades to the plain serial path, bit-identically."""
    with faults.inject() as plan:
        plan.kill_worker(0, event="serving_verify")
        plan.kill_worker(1, event="serving_verify")
        answers = serving_index.query_many(query_batch, threshold=0.55, n_workers=2)
    assert ("kill", 0) in plan.fired and ("kill", 1) in plan.fired
    assert answers == serial_answers["query"]


def test_hung_worker_recovers_via_round_timeout(
    serving_index, query_batch, serial_answers
):
    """A SIGSTOPped worker (alive, silent) is declared hung and recovered."""
    with faults.inject() as plan:
        plan.hang_worker(1, event="serving_round", round_index=0)
        answers = serving_index.query_many(
            query_batch, threshold=0.55, n_workers=2, round_timeout=3.0
        )
    assert ("hang", 1) in plan.fired
    assert answers == serial_answers["query"]


def test_dropped_round_message_recovers_via_round_timeout(
    serving_index, query_batch, serial_answers
):
    """A swallowed parent→worker message looks like a hang; the deadline recovers it."""
    with faults.inject() as plan:
        plan.drop_messages(1, tag="round")
        answers = serving_index.query_many(
            query_batch, threshold=0.55, n_workers=2, round_timeout=3.0
        )
    assert ("drop", "round") in plan.fired
    assert answers == serial_answers["query"]


def test_slow_worker_is_not_killed(serving_index, query_batch, serial_answers, caplog):
    """A worker sleeping well under the deadline must not be retired."""
    with caplog.at_level(logging.WARNING, logger="repro.search.executor"):
        with faults.inject() as plan:
            plan.delay_worker(1, 0.3, event="serving_round", round_index=0)
            answers = serving_index.query_many(
                query_batch, threshold=0.55, n_workers=2, round_timeout=30.0
            )
    assert any(fired[0] == "delay" for fired in plan.fired)
    assert answers == serial_answers["query"]
    assert not caplog.records, "a merely slow worker was treated as failed"


def test_recovery_is_logged_with_worker_tag_and_fallback(
    serving_index, query_batch, caplog
):
    """Worker loss surfaces as a warning naming the worker and the recovery."""
    with caplog.at_level(logging.WARNING, logger="repro.search.executor"):
        with faults.inject() as plan:
            plan.kill_worker(1, event="serving_round", round_index=0)
            serving_index.query_many(query_batch, threshold=0.55, n_workers=2)
    assert ("kill", 1) in plan.fired
    messages = [record.getMessage() for record in caplog.records]
    assert any("worker 1" in message and "serially" in message for message in messages)


def test_worker_failure_message_names_worker_tag_and_round():
    """The typed error carries worker ids, the task tag and the round."""
    failure = WorkerFailure(
        {1: "died without replying (exit code -9)"}, {0: "reply"}, "round", 2
    )
    message = str(failure)
    assert "worker(s) [1]" in message
    assert "'round'" in message
    assert "round 2" in message
    assert "exit code -9" in message
    assert failure.failed == {1: "died without replying (exit code -9)"}
    assert failure.replies == {0: "reply"}
