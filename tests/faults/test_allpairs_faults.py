"""Worker-loss recovery in the all-pairs round protocol.

``run_round_protocol`` recovers at *block* granularity: when a block loses
a worker (death, hang, in-task error) the whole block re-executes serially
in the parent, discarding the survivors' partial work, so the output —
pairs, estimates, the per-round prune trace and the ``hash_comparisons``
counter — stays bit-identical to the all-serial run.  The fixed-budget
(``map_count``) and exact (``map_exact``) verifiers recover at shard
granularity instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.engine import all_pairs_similarity
from repro.testing import faults

from .conftest import planted_collection

THRESHOLD = 0.5
BLOCK_SIZE = 64  # small enough that this corpus spans several blocks


@pytest.fixture(scope="module")
def corpus() -> np.ndarray:
    return planted_collection(47, n=70)


def _run(corpus, method: str, n_workers: int | None = None, **kwargs):
    return all_pairs_similarity(
        corpus,
        THRESHOLD,
        method=method,
        seed=7,
        block_size=BLOCK_SIZE,
        n_workers=n_workers,
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_bayes(corpus):
    return _run(corpus, "ap_bayeslsh")


def _assert_identical(result, reference) -> None:
    assert np.array_equal(result.left, reference.left)
    assert np.array_equal(result.right, reference.right)
    assert np.array_equal(result.similarities, reference.similarities)
    assert result.n_candidates == reference.n_candidates
    assert result.n_pruned == reference.n_pruned
    assert result.metadata["prune_trace"] == reference.metadata["prune_trace"]
    assert result.metadata["hash_comparisons"] == reference.metadata["hash_comparisons"]


@pytest.mark.parametrize(
    "event,round_index",
    [("allpairs_begin", None), ("allpairs_round", 0), ("allpairs_round", 1)],
)
@pytest.mark.parametrize("n_workers", [2, 4])
def test_kill_one_worker_allpairs_bit_identical(
    corpus, serial_bayes, event, round_index, n_workers
):
    with faults.inject() as plan:
        plan.kill_worker(n_workers - 1, event=event, round_index=round_index)
        result = _run(corpus, "ap_bayeslsh", n_workers=n_workers)
    assert ("kill", n_workers - 1) in plan.fired
    _assert_identical(result, serial_bayes)


def test_kill_every_worker_allpairs_bit_identical(corpus, serial_bayes):
    """With no survivors every remaining block runs serially in the parent."""
    with faults.inject() as plan:
        plan.kill_worker(0, event="allpairs_begin")
        plan.kill_worker(1, event="allpairs_begin")
        result = _run(corpus, "ap_bayeslsh", n_workers=2)
    assert ("kill", 0) in plan.fired and ("kill", 1) in plan.fired
    _assert_identical(result, serial_bayes)


def test_hung_worker_allpairs_recovers_via_round_timeout(corpus, serial_bayes):
    with faults.inject() as plan:
        plan.hang_worker(0, event="allpairs_round", round_index=0)
        result = _run(corpus, "ap_bayeslsh", n_workers=2, round_timeout=3.0)
    assert ("hang", 0) in plan.fired
    _assert_identical(result, serial_bayes)


def test_kill_one_worker_lite_bit_identical(corpus):
    """BayesLSH-Lite's fallback exact-verifies survivors through the verifier."""
    reference = _run(corpus, "ap_bayeslsh_lite")
    with faults.inject() as plan:
        plan.kill_worker(0, event="allpairs_round", round_index=0)
        result = _run(corpus, "ap_bayeslsh_lite", n_workers=2)
    assert ("kill", 0) in plan.fired
    _assert_identical(result, reference)


def test_dropped_count_message_recovers_via_round_timeout(corpus):
    """The fixed-budget verifier's shard fallback (map_count) recovers a hang."""
    reference = _run(corpus, "lsh_approx")
    with faults.inject() as plan:
        plan.drop_messages(1, tag="count")
        result = _run(corpus, "lsh_approx", n_workers=2, round_timeout=3.0)
    assert ("drop", "count") in plan.fired
    assert np.array_equal(result.left, reference.left)
    assert np.array_equal(result.right, reference.right)
    assert np.array_equal(result.similarities, reference.similarities)


def test_dropped_exact_message_recovers_via_round_timeout(corpus):
    """The exact verifier's shard fallback (map_exact) recovers a hang."""
    reference = _run(corpus, "lsh")
    with faults.inject() as plan:
        plan.drop_messages(0, tag="exact")
        result = _run(corpus, "lsh", n_workers=2, round_timeout=3.0)
    assert ("drop", "exact") in plan.fired
    assert np.array_equal(result.left, reference.left)
    assert np.array_equal(result.right, reference.right)
    assert np.array_equal(result.similarities, reference.similarities)
