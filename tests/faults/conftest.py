"""Shared builders for the fault-injection suite.

The indices and corpora here mirror the parallel-serving property tests:
multi-segment layouts with tombstones, planted near-duplicates so thresholded
queries have true positives, and enough candidate pairs that BayesLSH
verification runs several rounds (the kill/hang matrix needs rounds to
exist before it can kill workers inside them).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.query import QueryIndex


def planted_collection(seed: int, n: int = 50, features: int = 80) -> np.ndarray:
    """A sparse dense-matrix corpus with planted near-duplicate pairs."""
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.2)
    half = n // 2
    planted = min(8, n - half)
    dense[:planted] = dense[half : half + planted]
    mask = rng.random((planted, features)) < 0.1
    dense[:planted][mask] = 0.0
    return dense


@pytest.fixture(scope="module")
def serving_index() -> QueryIndex:
    """A grown, tombstoned bayes index (three segments)."""
    corpus = planted_collection(29, n=70)
    index = QueryIndex(corpus[:30], measure="cosine", threshold=0.6, seed=13)
    index.insert(corpus[30:55])
    index.insert(corpus[55:])
    index.delete([2, 40, 60])
    return index


@pytest.fixture(scope="module")
def query_batch() -> np.ndarray:
    queries = planted_collection(31, n=9)[:, :80]
    queries[:3] = planted_collection(29, n=70)[:3]  # indexed rows in the batch
    return queries


@pytest.fixture(scope="module")
def serial_answers(serving_index, query_batch) -> dict:
    """Reference answers from all-serial execution."""
    return {
        "query": serving_index.query_many(query_batch, threshold=0.55),
        "topk_estimate": serving_index.top_k_many(
            query_batch, k=5, floor_threshold=0.2, rank_by="estimate"
        ),
        "topk_exact": serving_index.top_k_many(query_batch, k=5, floor_threshold=0.2),
    }
