"""Crash and worker-loss safety of the flat layout and its mmap backend.

Two durability properties from the storage issue:

* the flat layout's only commit point is the ``MANIFEST.json`` replace
  (the ``flat_replace`` seam) — a crash, truncation or bit flip anywhere
  in that window leaves the *previous* generation fully loadable or the
  published manifest typed-rejected, never silently wrong data;
* an index served out-of-core (``storage="mmap"``) inherits the whole
  worker-loss contract: SIGKILLing a worker mid-protocol — including the
  estimates gather — recovers through the serial fallback with answers
  bit-identical to the all-serial run over the in-RAM original.
"""

from __future__ import annotations

import json

import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import SnapshotCorruptError
from repro.serving.storage import MANIFEST_NAME
from repro.testing import faults
from repro.testing.faults import InjectedCrash


@pytest.fixture(scope="module")
def flat_path(serving_index, tmp_path_factory):
    """The serving index committed once as a flat-layout snapshot."""
    root = tmp_path_factory.mktemp("flat-faults")
    return serving_index.save(root / "index", layout="flat")


def _generation(path) -> int:
    return json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[2])[
        "generation"
    ]


# --------------------------------------------------------------------- #
# the manifest commit point
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("storage", ["ram", "mmap"])
def test_crash_before_manifest_replace_preserves_previous_generation(
    tmp_path, serving_index, query_batch, serial_answers, storage
):
    """A crash in the manifest write→rename window never loses the old data.

    The new generation's data files are already on disk when the seam
    fires — unreferenced orphans a real crash would also leave — and the
    previous manifest must keep loading bit-identically around them, on
    both backends.
    """
    path = serving_index.save(tmp_path / "index", layout="flat")
    before = _generation(path)
    with faults.inject() as plan:
        plan.crash_before_replace(event="flat_replace")
        with pytest.raises(InjectedCrash):
            serving_index.save(path, layout="flat")
    assert any(fired[0] == "snapshot_crash" for fired in plan.fired)

    assert _generation(path) == before  # the commit never happened
    # The aborted writer's new-generation files survive as orphans ...
    orphans = [entry for entry in path.iterdir() if f".g{before + 1}." in entry.name]
    assert orphans
    # ... and do not disturb a load of the committed generation.
    loaded = QueryIndex.load(path, storage=storage)
    assert loaded.query_many(query_batch, threshold=0.55) == serial_answers["query"]

    # The next successful commit supersedes the orphans and collects them.
    loaded.save(path, layout="flat")
    assert _generation(path) == before + 2
    assert not any(f".g{before + 1}." in entry.name for entry in path.iterdir())


def test_crash_on_first_flat_save_is_never_silently_loadable(tmp_path, serving_index):
    """An uncommitted first save has no manifest; loading it is typed-rejected."""
    path = tmp_path / "fresh.flat"
    with faults.inject() as plan:
        plan.crash_before_replace(event="flat_replace")
        with pytest.raises(InjectedCrash):
            serving_index.save(path, layout="flat")
    assert any(fired[0] == "snapshot_crash" for fired in plan.fired)
    with pytest.raises(SnapshotCorruptError, match="missing MANIFEST.json"):
        QueryIndex.load(path)


def test_truncated_manifest_via_seam_raises_typed_error(tmp_path, serving_index):
    """A manifest torn inside the commit window is rejected on load."""
    path = tmp_path / "torn.flat"
    with faults.inject() as plan:
        plan.truncate_snapshot(keep_fraction=0.5, event="flat_replace")
        serving_index.save(path, layout="flat")
    assert any(fired[0] == "snapshot_truncate" for fired in plan.fired)
    with pytest.raises(SnapshotCorruptError) as excinfo:
        QueryIndex.load(path)
    assert excinfo.value.path == path


@pytest.mark.parametrize("offset", [None, 10])
def test_bitflipped_manifest_via_seam_raises_typed_error(
    tmp_path, serving_index, offset
):
    """The manifest's self-CRC (or header parse) catches commit-window flips."""
    path = tmp_path / "flipped.flat"
    with faults.inject() as plan:
        plan.corrupt_snapshot(offset=offset, event="flat_replace")
        serving_index.save(path, layout="flat")
    assert any(fired[0] == "snapshot_corrupt" for fired in plan.fired)
    with pytest.raises(SnapshotCorruptError) as excinfo:
        QueryIndex.load(path)
    assert excinfo.value.path == path


def test_npz_seam_does_not_fire_for_flat_saves(tmp_path, serving_index):
    """Seam routing: a flat save must only pass the flat_replace window."""
    path = tmp_path / "routed.flat"
    with faults.inject() as plan:
        plan.crash_before_replace(event="snapshot_replace")
        serving_index.save(path, layout="flat")  # completes: wrong seam armed
    assert not any(fired[0] == "snapshot_crash" for fired in plan.fired)
    QueryIndex.load(path)


# --------------------------------------------------------------------- #
# worker loss while serving out-of-core
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def mmap_index(flat_path) -> QueryIndex:
    """The serving index re-loaded onto read-only memory maps."""
    return QueryIndex.load(flat_path, storage="mmap")


@pytest.mark.parametrize(
    "event", ["serving_probe", "serving_round", "serving_estimates"]
)
def test_kill_worker_over_mmap_segments_bit_identical(
    mmap_index, query_batch, serial_answers, event
):
    """SIGKILL mid-protocol over mmap segments recovers bit-identically.

    Workers inherit the memory-mapped chunk arrays through the forked
    chunk maps; losing one mid-gather must fall back serially to the same
    answers the in-RAM original produced.
    """
    round_index = 0 if event == "serving_round" else None
    with faults.inject() as plan:
        plan.kill_worker(0, event=event, round_index=round_index)
        answers = mmap_index.query_many(query_batch, threshold=0.55, n_workers=2)
    assert ("kill", 0) in plan.fired
    assert answers == serial_answers["query"]


def test_kill_worker_top_k_over_mmap_segments_bit_identical(
    mmap_index, query_batch, serial_answers
):
    with faults.inject() as plan:
        plan.kill_worker(1, event="serving_estimates")
        ranked = mmap_index.top_k_many(
            query_batch, k=5, floor_threshold=0.2, rank_by="estimate", n_workers=2
        )
    assert ("kill", 1) in plan.fired
    assert ranked == serial_answers["topk_estimate"]


def test_store_rolls_back_past_corrupt_flat_latest(
    tmp_path, serving_index, query_batch, serial_answers
):
    """SnapshotStore rollback covers flat-layout snapshots too.

    The newest snapshot's manifest is bit-flipped on disk; ``load`` must
    skip it (typed rejection, logged) and serve the previous snapshot
    bit-identically — same contract the store gives torn ``.npz`` files.
    """
    from repro.serving.snapshot import SnapshotStore

    store = SnapshotStore(tmp_path / "snaps", keep=3)
    store.save(serving_index, layout="flat")
    latest = store.save(serving_index, layout="flat")
    manifest = latest / MANIFEST_NAME
    blob = bytearray(manifest.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    manifest.write_bytes(bytes(blob))
    loaded = store.load()
    assert loaded.query_many(query_batch, threshold=0.55) == serial_answers["query"]


def test_kill_every_worker_over_mmap_segments_falls_back_serial(
    mmap_index, query_batch, serial_answers
):
    with faults.inject() as plan:
        plan.kill_worker(0, event="serving_verify")
        plan.kill_worker(1, event="serving_verify")
        answers = mmap_index.query_many(query_batch, threshold=0.55, n_workers=2)
    assert ("kill", 0) in plan.fired and ("kill", 1) in plan.fired
    assert answers == serial_answers["query"]
