"""Unit tests for the posterior models (Equations 3, 4 and 6)."""

import numpy as np
import pytest

from repro.core.posteriors import (
    BetaPosterior,
    GridCollisionPosterior,
    TruncatedCollisionPosterior,
    make_posterior,
)
from repro.core.priors import BetaPrior, UniformCollisionPrior


class TestBetaPosterior:
    def test_posterior_parameters_are_conjugate(self):
        posterior = BetaPosterior(BetaPrior(2.0, 3.0))
        # Pr[S >= t | M(m, n)] computed from Beta(m + 2, n - m + 3)
        from scipy.special import betainc

        assert posterior.prob_above_threshold(7, 10, 0.5) == pytest.approx(
            1.0 - betainc(9.0, 6.0, 0.5)
        )

    def test_prob_above_threshold_monotone_in_matches(self):
        posterior = BetaPosterior()
        values = [posterior.prob_above_threshold(m, 32, 0.7) for m in range(33)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_prob_above_zero_threshold(self):
        posterior = BetaPosterior()
        assert posterior.prob_above_threshold(5, 20, 0.0) == pytest.approx(1.0)

    def test_map_estimate_uniform_prior_is_mle(self):
        posterior = BetaPosterior(BetaPrior(1.0, 1.0))
        assert posterior.map_estimate(8, 10) == pytest.approx(0.8)
        assert posterior.map_estimate(0, 10) == 0.0
        assert posterior.map_estimate(10, 10) == 1.0

    def test_map_estimate_with_informative_prior(self):
        posterior = BetaPosterior(BetaPrior(5.0, 5.0))
        # mode of Beta(8 + 5, 2 + 5) = 12 / 18
        assert posterior.map_estimate(8, 10) == pytest.approx(12.0 / 18.0)

    def test_map_estimate_no_data_uses_prior(self):
        posterior = BetaPosterior(BetaPrior(3.0, 2.0))
        assert posterior.map_estimate(0, 0) == pytest.approx(2.0 / 3.0)

    def test_concentration_increases_with_hashes(self):
        posterior = BetaPosterior()
        low = posterior.concentration_probability(8, 16, 0.05)
        high = posterior.concentration_probability(256, 512, 0.05)
        assert high > low

    def test_concentration_bounds(self):
        posterior = BetaPosterior()
        value = posterior.concentration_probability(30, 40, 0.05)
        assert 0.0 <= value <= 1.0
        assert posterior.concentration_probability(30, 40, 0.0) == 0.0
        assert posterior.concentration_probability(30, 40, 1.0) == pytest.approx(1.0)

    def test_is_concentrated_threshold(self):
        posterior = BetaPosterior()
        assert posterior.is_concentrated(900, 1000, delta=0.05, gamma=0.05)
        assert not posterior.is_concentrated(5, 10, delta=0.01, gamma=0.01)

    def test_posterior_density_integrates_to_one(self):
        posterior = BetaPosterior(BetaPrior(2.0, 2.0))
        grid = np.linspace(0, 1, 10001)
        density = posterior.posterior_density(grid, 12, 20)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=1e-3)

    def test_invalid_counts(self):
        posterior = BetaPosterior()
        with pytest.raises(ValueError):
            posterior.prob_above_threshold(5, 3, 0.5)
        with pytest.raises(ValueError):
            posterior.map_estimate(-1, 3)


class TestTruncatedCollisionPosterior:
    def test_prob_above_threshold_monotone_in_matches(self):
        posterior = TruncatedCollisionPosterior()
        values = [posterior.prob_above_threshold(m, 64, 0.7) for m in range(65)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_map_estimate_is_r2c_of_clipped_mle(self):
        posterior = TruncatedCollisionPosterior()
        # m/n = 0.75 -> cosine = cos(pi/4)
        assert posterior.map_estimate(48, 64) == pytest.approx(np.cos(np.pi * 0.25))
        # m/n below the support is clipped to 0.5 -> cosine 0
        assert posterior.map_estimate(10, 64) == pytest.approx(0.0, abs=1e-12)
        # all matches -> cosine 1
        assert posterior.map_estimate(64, 64) == pytest.approx(1.0)

    def test_map_estimate_no_data(self):
        posterior = TruncatedCollisionPosterior()
        assert posterior.map_estimate(0, 0) == pytest.approx(np.cos(np.pi * 0.25))

    def test_high_match_count_implies_high_probability(self):
        posterior = TruncatedCollisionPosterior()
        assert posterior.prob_above_threshold(250, 256, 0.7) > 0.999
        assert posterior.prob_above_threshold(128, 256, 0.7) < 0.001

    def test_concentration_increases_with_hashes(self):
        posterior = TruncatedCollisionPosterior()
        low = posterior.concentration_probability(24, 32, 0.05)
        high = posterior.concentration_probability(1536, 2048, 0.05)
        assert high > low
        assert 0.0 <= low <= 1.0 and 0.0 <= high <= 1.0

    def test_concentration_zero_delta(self):
        posterior = TruncatedCollisionPosterior()
        assert posterior.concentration_probability(24, 32, 0.0) == 0.0

    def test_posterior_density_integrates_to_one(self):
        posterior = TruncatedCollisionPosterior()
        grid = np.linspace(0.5, 1.0, 20001)
        density = posterior.posterior_density_r(grid, 24, 32)
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=1e-3)

    def test_against_numerical_grid_posterior(self):
        """The closed-form expressions agree with direct numerical integration."""
        closed = TruncatedCollisionPosterior()
        numerical = GridCollisionPosterior(lambda r: np.ones_like(r), grid_size=8193)
        for m, n in [(20, 32), (50, 64), (120, 128), (30, 160)]:
            for threshold in (0.5, 0.7, 0.9):
                assert closed.prob_above_threshold(m, n, threshold) == pytest.approx(
                    numerical.prob_above_threshold(m, n, threshold), abs=5e-3
                )
            assert closed.map_estimate(m, n) == pytest.approx(
                numerical.map_estimate(m, n), abs=5e-3
            )
            assert closed.concentration_probability(m, n, 0.05) == pytest.approx(
                numerical.concentration_probability(m, n, 0.05), abs=5e-3
            )

    def test_custom_support(self):
        # With the full [0, 1] support, cosine 0 corresponds to r = 0.5, so a
        # pair agreeing on half its hashes is above it with probability ~0.5.
        posterior = TruncatedCollisionPosterior(UniformCollisionPrior(0.0, 1.0))
        assert posterior.prob_above_threshold(5, 10, 0.0) == pytest.approx(0.5, abs=0.15)
        assert posterior.prob_above_threshold(30, 32, 0.0) > 0.99

    def test_invalid_counts(self):
        posterior = TruncatedCollisionPosterior()
        with pytest.raises(ValueError):
            posterior.map_estimate(10, 5)


class TestGridCollisionPosterior:
    def test_map_tracks_observed_fraction(self):
        posterior = GridCollisionPosterior(lambda r: np.ones_like(r))
        estimate = posterior.map_estimate(96, 128)
        expected = np.cos(np.pi * (1 - 0.75))
        assert estimate == pytest.approx(expected, abs=0.01)

    def test_extreme_priors_converge(self):
        negative = GridCollisionPosterior(lambda r: r**-3.0)
        positive = GridCollisionPosterior(lambda r: r**3.0)
        few = abs(negative.map_estimate(24, 32) - positive.map_estimate(24, 32))
        many = abs(negative.map_estimate(384, 512) - positive.map_estimate(384, 512))
        assert many < few

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            GridCollisionPosterior(lambda r: -np.ones_like(r))
        with pytest.raises(ValueError):
            GridCollisionPosterior(lambda r: np.zeros_like(r))
        with pytest.raises(ValueError):
            GridCollisionPosterior(lambda r: np.ones_like(r), low=0.9, high=0.4)
        with pytest.raises(ValueError):
            GridCollisionPosterior(lambda r: np.ones_like(r), grid_size=2)


class TestMakePosterior:
    def test_jaccard(self):
        assert isinstance(make_posterior("jaccard"), BetaPosterior)

    def test_cosine(self):
        assert isinstance(make_posterior("cosine"), TruncatedCollisionPosterior)
        assert isinstance(make_posterior("binary_cosine"), TruncatedCollisionPosterior)

    def test_prior_type_checking(self):
        with pytest.raises(TypeError):
            make_posterior("jaccard", UniformCollisionPrior())
        with pytest.raises(TypeError):
            make_posterior("cosine", BetaPrior())

    def test_unknown_measure(self):
        with pytest.raises(ValueError):
            make_posterior("hamming")

    def test_passes_prior_through(self):
        prior = BetaPrior(4.0, 2.0)
        posterior = make_posterior("jaccard", prior)
        assert posterior.prior is prior


class TestPosteriorCalibration:
    """Monte-Carlo sanity check: the posterior threshold probability is calibrated."""

    def test_beta_posterior_matches_simulation(self):
        rng = np.random.default_rng(42)
        posterior = BetaPosterior()  # uniform prior
        n, threshold = 32, 0.6
        # Simulate: similarity ~ Uniform(0,1), observe Binomial(n, s) matches.
        similarities = rng.uniform(0, 1, size=60_000)
        matches = rng.binomial(n, similarities)
        for m in (10, 16, 22, 28):
            mask = matches == m
            if mask.sum() < 500:
                continue
            empirical = float(np.mean(similarities[mask] >= threshold))
            predicted = posterior.prob_above_threshold(m, n, threshold)
            assert predicted == pytest.approx(empirical, abs=0.05)
