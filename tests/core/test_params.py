"""Unit tests for the BayesLSH parameter objects."""

import pytest

from repro.core.params import BayesLSHLiteParams, BayesLSHParams


class TestBayesLSHParams:
    def test_defaults_match_paper(self):
        params = BayesLSHParams(threshold=0.7)
        assert params.epsilon == 0.03
        assert params.delta == 0.05
        assert params.gamma == 0.03
        assert params.k == 32
        assert params.max_hashes == 2048

    def test_n_rounds(self):
        assert BayesLSHParams(threshold=0.5, k=32, max_hashes=256).n_rounds == 8

    def test_with_threshold_copies(self):
        params = BayesLSHParams(threshold=0.5, epsilon=0.01)
        changed = params.with_threshold(0.8)
        assert changed.threshold == 0.8
        assert changed.epsilon == 0.01
        assert params.threshold == 0.5  # original unchanged

    def test_frozen(self):
        params = BayesLSHParams(threshold=0.5)
        with pytest.raises(AttributeError):
            params.threshold = 0.9

    @pytest.mark.parametrize("field, value", [
        ("threshold", 0.0), ("threshold", 1.0), ("threshold", -0.2),
        ("epsilon", 0.0), ("epsilon", 1.5),
        ("delta", 0.0), ("delta", 1.0),
        ("gamma", 0.0), ("gamma", 2.0),
    ])
    def test_invalid_unit_interval_parameters(self, field, value):
        kwargs = {"threshold": 0.5, field: value}
        with pytest.raises(ValueError):
            BayesLSHParams(**kwargs)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            BayesLSHParams(threshold=0.5, k=0)

    def test_max_hashes_below_k(self):
        with pytest.raises(ValueError, match="max_hashes"):
            BayesLSHParams(threshold=0.5, k=64, max_hashes=32)


class TestBayesLSHLiteParams:
    def test_defaults_match_paper(self):
        params = BayesLSHLiteParams(threshold=0.7)
        assert params.epsilon == 0.03
        assert params.h == 128
        assert params.k == 32

    def test_n_rounds(self):
        assert BayesLSHLiteParams(threshold=0.5, h=64, k=32).n_rounds == 2

    def test_with_threshold(self):
        params = BayesLSHLiteParams(threshold=0.3, h=64)
        assert params.with_threshold(0.6).h == 64

    def test_h_below_k_rejected(self):
        with pytest.raises(ValueError, match="h"):
            BayesLSHLiteParams(threshold=0.5, h=16, k=32)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            BayesLSHLiteParams(threshold=1.2)
