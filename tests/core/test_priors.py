"""Unit tests for the prior distributions and method-of-moments fitting."""

import numpy as np
import pytest

from repro.core.priors import (
    BetaPrior,
    UniformCollisionPrior,
    fit_beta_prior,
    sample_pair_similarities,
)


class TestBetaPrior:
    def test_uniform_default(self):
        prior = BetaPrior()
        assert prior.alpha == 1.0
        assert prior.beta == 1.0
        assert prior.mean == 0.5

    def test_mean_and_variance(self):
        prior = BetaPrior(2.0, 6.0)
        assert prior.mean == pytest.approx(0.25)
        assert prior.variance == pytest.approx(2 * 6 / (8**2 * 9))

    def test_density_integrates_to_one(self):
        prior = BetaPrior(2.5, 4.0)
        grid = np.linspace(0, 1, 20001)
        assert np.trapezoid(prior.density(grid), grid) == pytest.approx(1.0, abs=1e-3)

    def test_density_zero_outside_support(self):
        prior = BetaPrior(2.0, 2.0)
        assert prior.density(np.array([-0.1, 1.1])).tolist() == [0.0, 0.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BetaPrior(0.0, 1.0)
        with pytest.raises(ValueError):
            BetaPrior(1.0, -2.0)


class TestUniformCollisionPrior:
    def test_default_support(self):
        prior = UniformCollisionPrior()
        assert prior.low == 0.5
        assert prior.high == 1.0

    def test_density(self):
        prior = UniformCollisionPrior()
        assert prior.density(0.75) == pytest.approx(2.0)
        assert prior.density(0.3) == 0.0
        assert prior.density(1.0) == pytest.approx(2.0)

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            UniformCollisionPrior(low=0.9, high=0.5)
        with pytest.raises(ValueError):
            UniformCollisionPrior(low=-0.1, high=1.0)


class TestFitBetaPrior:
    def test_recovers_moments(self):
        rng = np.random.default_rng(0)
        samples = rng.beta(3.0, 7.0, size=50_000)
        prior = fit_beta_prior(samples)
        assert prior.alpha == pytest.approx(3.0, rel=0.1)
        assert prior.beta == pytest.approx(7.0, rel=0.1)

    def test_matches_paper_formulas(self):
        samples = np.array([0.1, 0.2, 0.3, 0.4, 0.8])
        mean = samples.mean()
        variance = samples.var()
        scale = mean * (1 - mean) / variance - 1
        prior = fit_beta_prior(samples)
        assert prior.alpha == pytest.approx(mean * scale)
        assert prior.beta == pytest.approx((1 - mean) * scale)

    def test_fallback_on_tiny_sample(self):
        assert fit_beta_prior([0.5]).alpha == 1.0

    def test_fallback_on_zero_variance(self):
        prior = fit_beta_prior([0.4, 0.4, 0.4])
        assert (prior.alpha, prior.beta) == (1.0, 1.0)

    def test_fallback_on_excess_variance(self):
        # Bernoulli-like sample: variance too large for any Beta with that mean
        prior = fit_beta_prior([0.0, 1.0, 0.0, 1.0])
        assert (prior.alpha, prior.beta) == (1.0, 1.0)

    def test_custom_fallback(self):
        fallback = BetaPrior(2.0, 2.0)
        assert fit_beta_prior([0.5], fallback=fallback) is fallback

    def test_rejects_out_of_range_samples(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            fit_beta_prior([0.2, 1.4])


class TestSamplePairSimilarities:
    def test_returns_all_when_sample_large_enough(self):
        pairs = [(0, 1), (1, 2), (2, 3)]
        values = sample_pair_similarities(pairs, lambda i, j: i + j, sample_size=10)
        assert sorted(values.tolist()) == [1, 3, 5]

    def test_subsamples_without_replacement(self):
        pairs = [(i, i + 1) for i in range(100)]
        values = sample_pair_similarities(pairs, lambda i, j: float(i), sample_size=20, seed=3)
        assert len(values) == 20
        assert len(set(values.tolist())) == 20

    def test_empty_pairs(self):
        assert len(sample_pair_similarities([], lambda i, j: 0.0)) == 0

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            sample_pair_similarities([(0, 1)], lambda i, j: 0.0, sample_size=0)

    def test_deterministic_given_seed(self):
        pairs = [(i, i + 1) for i in range(50)]
        a = sample_pair_similarities(pairs, lambda i, j: float(i), sample_size=10, seed=5)
        b = sample_pair_similarities(pairs, lambda i, j: float(i), sample_size=10, seed=5)
        assert a.tolist() == b.tolist()
