"""Unit tests for BayesLSH-Lite (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.lite import BayesLSHLite
from repro.core.params import BayesLSHLiteParams
from repro.core.posteriors import TruncatedCollisionPosterior
from repro.hashing.simhash import SimHashFamily
from repro.similarity.measures import cosine_similarity


def _all_pairs(n):
    left, right = np.triu_indices(n, k=1)
    return left, right


@pytest.fixture(scope="module")
def lite_setup(sparse_text_collection):
    prepared = sparse_text_collection.normalized()
    family = SimHashFamily(prepared, seed=5)

    def exact(i, j):
        return cosine_similarity(prepared, i, j)

    return prepared, family, exact


class TestBayesLSHLite:
    def test_output_similarities_are_exact(self, lite_setup):
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.6, h=128)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(80)
        output = algorithm.verify(left, right)
        for i, j, value in zip(output.left, output.right, output.estimates):
            assert value == pytest.approx(exact(int(i), int(j)))
            assert value > params.threshold

    def test_no_false_positives_in_output(self, lite_setup):
        """Unlike BayesLSH, Lite verifies exactly, so precision is 1.0."""
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.7, h=128)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(120)
        output = algorithm.verify(left, right)
        for i, j in zip(output.left, output.right):
            assert exact(int(i), int(j)) > 0.7

    def test_recall_close_to_one(self, lite_setup):
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.7, h=128, epsilon=0.03)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(150)
        true_pairs = {
            (int(i), int(j))
            for i, j in zip(left, right)
            if exact(int(i), int(j)) > 0.7
        }
        output = algorithm.verify(left, right)
        found = {(int(i), int(j)) for i, j in zip(output.left, output.right)}
        if true_pairs:
            assert len(true_pairs & found) / len(true_pairs) >= 0.9

    def test_hash_budget_respected(self, lite_setup):
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.7, h=64, k=32)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(40)
        output = algorithm.verify(left, right)
        assert len(output.trace) <= params.n_rounds
        assert output.trace[-1][0] <= params.h

    def test_exact_computations_counted(self, lite_setup):
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.7, h=64)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(40)
        output = algorithm.verify(left, right)
        assert output.exact_computations == output.n_candidates - output.n_pruned
        assert output.exact_computations >= output.n_output

    def test_pruning_reduces_exact_computations(self, lite_setup):
        """The whole point of Lite: far fewer exact computations than candidates."""
        prepared, family, exact = lite_setup
        params = BayesLSHLiteParams(threshold=0.8, h=128)
        algorithm = BayesLSHLite(family, TruncatedCollisionPosterior(), params, exact)
        left, right = _all_pairs(150)
        output = algorithm.verify(left, right)
        assert output.exact_computations < 0.5 * output.n_candidates

    def test_empty_input(self, lite_setup):
        prepared, family, exact = lite_setup
        algorithm = BayesLSHLite(
            family, TruncatedCollisionPosterior(), BayesLSHLiteParams(threshold=0.5), exact
        )
        output = algorithm.verify([], [])
        assert output.n_candidates == 0
        assert output.n_output == 0

    def test_mismatched_arrays_rejected(self, lite_setup):
        prepared, family, exact = lite_setup
        algorithm = BayesLSHLite(
            family, TruncatedCollisionPosterior(), BayesLSHLiteParams(threshold=0.5), exact
        )
        with pytest.raises(ValueError):
            algorithm.verify([0], [1, 2])
