"""Unit tests for the concentration cache (Section 4.3)."""

import numpy as np
import pytest

from repro.core.concentration_cache import ConcentrationCache
from repro.core.posteriors import BetaPosterior, TruncatedCollisionPosterior


class TestConcentrationCache:
    def test_matches_direct_inference(self):
        posterior = BetaPosterior()
        cache = ConcentrationCache(posterior, delta=0.05, gamma=0.05)
        for n in (32, 128, 512):
            for m in (0, n // 4, n // 2, n):
                direct = posterior.concentration_probability(m, n, 0.05) >= 0.95
                assert cache.is_concentrated(m, n) == direct

    def test_cache_hit_counting(self):
        cache = ConcentrationCache(BetaPosterior(), delta=0.05, gamma=0.05)
        cache.is_concentrated(10, 32)
        cache.is_concentrated(10, 32)
        cache.is_concentrated(11, 32)
        assert cache.misses == 2
        assert cache.hits == 1
        assert len(cache) == 2

    def test_vectorised_matches_scalar(self):
        posterior = TruncatedCollisionPosterior()
        cache = ConcentrationCache(posterior, delta=0.05, gamma=0.03)
        matches = np.array([10, 20, 30, 32])
        batch = cache.is_concentrated_many(matches, 32)
        singles = [cache.is_concentrated(int(m), 32) for m in matches]
        assert batch.tolist() == singles

    def test_more_hashes_eventually_concentrated(self):
        cache = ConcentrationCache(TruncatedCollisionPosterior(), delta=0.05, gamma=0.03)
        # 75% agreement: not concentrated after 32 hashes, concentrated after 2048
        assert not cache.is_concentrated(24, 32)
        assert cache.is_concentrated(1536, 2048)

    def test_tighter_delta_requires_more_hashes(self):
        loose = ConcentrationCache(TruncatedCollisionPosterior(), delta=0.10, gamma=0.05)
        tight = ConcentrationCache(TruncatedCollisionPosterior(), delta=0.01, gamma=0.05)
        # the loose requirement is satisfied earlier than the tight one
        m, n = 192, 256
        assert loose.is_concentrated(m, n) or not tight.is_concentrated(m, n)
        assert loose.is_concentrated(480, 640)
        assert not tight.is_concentrated(480, 640)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConcentrationCache(BetaPosterior(), delta=0.0, gamma=0.05)
        with pytest.raises(ValueError):
            ConcentrationCache(BetaPosterior(), delta=0.05, gamma=1.0)

    def test_properties(self):
        cache = ConcentrationCache(BetaPosterior(), delta=0.04, gamma=0.02)
        assert cache.delta == 0.04
        assert cache.gamma == 0.02
