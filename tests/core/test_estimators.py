"""Unit tests for the frequentist estimator analysis (Section 3)."""

import numpy as np
import pytest

from repro.core.estimators import (
    estimate_variance,
    minimum_hashes_for_accuracy,
    mle_estimate,
    probability_within_delta,
    required_hashes_curve,
)


class TestMLE:
    def test_basic(self):
        assert mle_estimate(8, 10) == pytest.approx(0.8)
        assert mle_estimate(0, 0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            mle_estimate(5, 3)
        with pytest.raises(ValueError):
            mle_estimate(-1, 3)

    def test_variance(self):
        assert estimate_variance(0.5, 100) == pytest.approx(0.0025)
        assert estimate_variance(1.0, 100) == 0.0

    def test_variance_invalid(self):
        with pytest.raises(ValueError):
            estimate_variance(1.5, 10)
        with pytest.raises(ValueError):
            estimate_variance(0.5, 0)


class TestProbabilityWithinDelta:
    def test_matches_direct_binomial_sum(self):
        from scipy.stats import binom

        s, n, delta = 0.7, 50, 0.05
        direct = sum(
            binom.pmf(m, n, s) for m in range(n + 1) if abs(m / n - s) < delta
        )
        assert probability_within_delta(s, n, delta) == pytest.approx(direct)

    def test_increases_with_n_on_average(self):
        values = [probability_within_delta(0.6, n, 0.05) for n in (50, 200, 800)]
        assert values[0] < values[1] < values[2]

    def test_edge_cases(self):
        assert probability_within_delta(0.5, 0, 0.05) == 0.0
        assert probability_within_delta(0.5, 100, 0.0) == 0.0
        assert probability_within_delta(0.5, 100, 1.0) == pytest.approx(1.0)

    def test_extreme_similarity(self):
        # at s = 1 every hash matches, the estimate is exactly 1
        assert probability_within_delta(1.0, 10, 0.05) == pytest.approx(1.0)

    def test_boundary_modes(self):
        strict = probability_within_delta(0.95, 16, 0.05, boundary="strict")
        lenient = probability_within_delta(0.95, 16, 0.05, boundary="lenient")
        assert lenient >= strict

    def test_invalid_boundary(self):
        with pytest.raises(ValueError):
            probability_within_delta(0.5, 10, 0.05, boundary="weird")

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            probability_within_delta(1.2, 10, 0.05)


class TestMinimumHashes:
    def test_monotone_guarantee_met(self):
        n = minimum_hashes_for_accuracy(0.5, delta=0.05, gamma=0.05)
        assert probability_within_delta(0.5, n, 0.05) >= 0.95

    def test_peak_near_half_matches_paper(self):
        """The paper quotes ~350 hashes at s = 0.5 for delta = gamma = 0.05."""
        assert 300 <= minimum_hashes_for_accuracy(0.5) <= 420

    def test_similarity_dependence(self):
        """More hashes are needed near 0.5 than near the extremes (Figure 1)."""
        middle = minimum_hashes_for_accuracy(0.5)
        high = minimum_hashes_for_accuracy(0.95)
        low = minimum_hashes_for_accuracy(0.05)
        assert high < middle
        assert low < middle

    def test_stricter_accuracy_needs_more_hashes(self):
        loose = minimum_hashes_for_accuracy(0.7, delta=0.05, gamma=0.05, max_hashes=20_000)
        tight = minimum_hashes_for_accuracy(0.7, delta=0.02, gamma=0.05, max_hashes=20_000)
        assert tight > loose

    def test_budget_exhaustion_returns_budget(self):
        assert minimum_hashes_for_accuracy(0.5, delta=0.001, gamma=0.001, max_hashes=100) == 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            minimum_hashes_for_accuracy(0.5, delta=0.0)
        with pytest.raises(ValueError):
            minimum_hashes_for_accuracy(0.5, gamma=1.0)
        with pytest.raises(ValueError):
            minimum_hashes_for_accuracy(0.5, step=0)

    def test_curve_shape(self):
        similarities = np.array([0.1, 0.3, 0.5, 0.7, 0.9])
        curve = required_hashes_curve(similarities, max_hashes=2000)
        assert curve.argmax() == 2  # peak at 0.5
        assert curve[0] < curve[2] and curve[4] < curve[2]
