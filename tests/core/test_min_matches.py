"""Unit tests for the pre-computed minMatches pruning table (Section 4.3)."""

import numpy as np
import pytest

from repro.core.min_matches import MinMatchesTable
from repro.core.posteriors import BetaPosterior, TruncatedCollisionPosterior
from repro.core.priors import BetaPrior


@pytest.fixture(params=["jaccard", "cosine"])
def posterior(request):
    if request.param == "jaccard":
        return BetaPosterior(BetaPrior(1.0, 1.0))
    return TruncatedCollisionPosterior()


class TestMinMatchesTable:
    def test_equivalence_with_direct_inference(self, posterior):
        """m >= minMatches(n) exactly reproduces Pr[S >= t | M(m,n)] >= epsilon."""
        table = MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=32, max_hashes=128)
        for n in (32, 64, 96, 128):
            for m in range(0, n + 1, 4):
                direct = posterior.prob_above_threshold(m, n, 0.7) >= 0.03
                assert table.passes(m, n) == direct, (m, n)

    def test_min_matches_increases_with_n(self, posterior):
        table = MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=32, max_hashes=256)
        values = [table.min_matches(n) for n in (32, 64, 128, 256)]
        assert values == sorted(values)

    def test_min_matches_increases_with_threshold(self, posterior):
        low = MinMatchesTable(posterior, threshold=0.5, epsilon=0.03, k=32, max_hashes=64)
        high = MinMatchesTable(posterior, threshold=0.9, epsilon=0.03, k=32, max_hashes=64)
        assert high.min_matches(64) >= low.min_matches(64)

    def test_smaller_epsilon_prunes_less(self, posterior):
        strict = MinMatchesTable(posterior, threshold=0.7, epsilon=0.0001, k=32, max_hashes=64)
        loose = MinMatchesTable(posterior, threshold=0.7, epsilon=0.3, k=32, max_hashes=64)
        assert strict.min_matches(64) <= loose.min_matches(64)

    def test_checkpoints_are_multiples_of_k(self, posterior):
        table = MinMatchesTable(posterior, threshold=0.6, epsilon=0.05, k=32, max_hashes=160)
        assert table.checkpoints.tolist() == [32, 64, 96, 128, 160]

    def test_on_demand_value_outside_table(self, posterior):
        table = MinMatchesTable(posterior, threshold=0.6, epsilon=0.05, k=32, max_hashes=64)
        direct = table.min_matches(80)
        assert table.passes(direct, 80)
        if direct > 0:
            assert not table.passes(direct - 1, 80)

    def test_passes_many_vectorised(self, posterior):
        table = MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=32, max_hashes=64)
        matches = np.arange(0, 65)
        batch = table.passes_many(matches, 64)
        singles = [table.passes(int(m), 64) for m in matches]
        assert batch.tolist() == singles

    def test_as_array(self, posterior):
        table = MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=32, max_hashes=96)
        array = table.as_array()
        assert array.shape == (3, 2)
        assert array[:, 0].tolist() == [32, 64, 96]

    def test_impossible_threshold_marks_all_pruned(self):
        # With an extreme epsilon even m = n may fail; every pair is then pruned.
        posterior = BetaPosterior()
        table = MinMatchesTable(posterior, threshold=0.999, epsilon=0.99999, k=8, max_hashes=8)
        assert not table.passes(8, 8)

    def test_invalid_parameters(self, posterior):
        with pytest.raises(ValueError):
            MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=0, max_hashes=32)
        with pytest.raises(ValueError):
            MinMatchesTable(posterior, threshold=0.7, epsilon=0.03, k=64, max_hashes=32)
