"""Unit tests for the core BayesLSH algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.bayeslsh import BayesLSH
from repro.core.params import BayesLSHParams
from repro.core.posteriors import TruncatedCollisionPosterior, BetaPosterior
from repro.hashing.minhash import MinHashFamily
from repro.hashing.simhash import SimHashFamily
from repro.similarity.measures import cosine_similarity, jaccard_similarity


def _all_pairs(n):
    left, right = np.triu_indices(n, k=1)
    return left, right


@pytest.fixture(scope="module")
def cosine_setup(sparse_text_collection):
    prepared = sparse_text_collection.normalized()
    family = SimHashFamily(prepared, seed=2)
    return prepared, family


class TestBayesLSHCosine:
    def test_output_structure(self, cosine_setup):
        prepared, family = cosine_setup
        params = BayesLSHParams(threshold=0.7, max_hashes=256)
        algorithm = BayesLSH(family, TruncatedCollisionPosterior(), params)
        left, right = _all_pairs(60)
        output = algorithm.verify(left, right)
        assert output.n_candidates == len(left)
        assert output.n_output + output.n_pruned == output.n_candidates
        assert len(output.estimates) == output.n_output
        assert output.hash_comparisons > 0
        assert all(0.0 <= s <= 1.0 for s in output.estimates)

    def test_trace_is_monotone_decreasing(self, cosine_setup):
        prepared, family = cosine_setup
        params = BayesLSHParams(threshold=0.7, max_hashes=256)
        algorithm = BayesLSH(family, TruncatedCollisionPosterior(), params)
        left, right = _all_pairs(80)
        output = algorithm.verify(left, right)
        alive_counts = [alive for _, alive in output.trace]
        assert alive_counts == sorted(alive_counts, reverse=True)
        assert output.trace[0][0] == params.k
        assert alive_counts[-1] == output.n_output

    def test_high_similarity_pairs_survive(self, cosine_setup):
        """Guarantee 1: true positives should essentially never be pruned."""
        prepared, family = cosine_setup
        params = BayesLSHParams(threshold=0.7, epsilon=0.03)
        algorithm = BayesLSH(family, TruncatedCollisionPosterior(), params)
        left, right = _all_pairs(150)
        exact = np.array(
            [cosine_similarity(prepared, int(i), int(j)) for i, j in zip(left, right)]
        )
        output = algorithm.verify(left, right)
        output_pairs = {(int(i), int(j)) for i, j in zip(output.left, output.right)}
        true_pairs = [
            (int(i), int(j)) for i, j, s in zip(left, right, exact) if s > 0.7
        ]
        if true_pairs:
            found = sum(pair in output_pairs for pair in true_pairs)
            assert found / len(true_pairs) >= 0.9

    def test_low_similarity_pairs_pruned(self, cosine_setup):
        prepared, family = cosine_setup
        params = BayesLSHParams(threshold=0.8, epsilon=0.03)
        algorithm = BayesLSH(family, TruncatedCollisionPosterior(), params)
        left, right = _all_pairs(150)
        exact = np.array(
            [cosine_similarity(prepared, int(i), int(j)) for i, j in zip(left, right)]
        )
        output = algorithm.verify(left, right)
        low_pairs = np.sum(exact < 0.3)
        if low_pairs:
            # at least 95% of clearly-dissimilar pairs must be pruned
            surviving_low = sum(
                1
                for i, j in zip(output.left, output.right)
                if cosine_similarity(prepared, int(i), int(j)) < 0.3
            )
            assert surviving_low / low_pairs < 0.05

    def test_estimates_are_accurate(self, cosine_setup):
        """Guarantee 2: estimate errors above delta occur with probability < gamma."""
        prepared, family = cosine_setup
        params = BayesLSHParams(threshold=0.5, delta=0.05, gamma=0.03, max_hashes=4096)
        algorithm = BayesLSH(family, TruncatedCollisionPosterior(), params)
        left, right = _all_pairs(120)
        output = algorithm.verify(left, right)
        errors = []
        for i, j, estimate in zip(output.left, output.right, output.estimates):
            errors.append(abs(estimate - cosine_similarity(prepared, int(i), int(j))))
        errors = np.asarray(errors)
        assert len(errors) > 10
        assert np.mean(errors > params.delta) < 0.10  # generous slack over gamma = 0.03

    def test_empty_candidate_list(self, cosine_setup):
        prepared, family = cosine_setup
        algorithm = BayesLSH(
            family, TruncatedCollisionPosterior(), BayesLSHParams(threshold=0.7)
        )
        output = algorithm.verify(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert output.n_candidates == 0
        assert output.n_output == 0
        assert output.trace == []

    def test_mismatched_arrays_rejected(self, cosine_setup):
        prepared, family = cosine_setup
        algorithm = BayesLSH(
            family, TruncatedCollisionPosterior(), BayesLSHParams(threshold=0.7)
        )
        with pytest.raises(ValueError):
            algorithm.verify(np.array([0, 1]), np.array([2]))

    def test_pairs_helper(self, cosine_setup):
        prepared, family = cosine_setup
        algorithm = BayesLSH(
            family, TruncatedCollisionPosterior(), BayesLSHParams(threshold=0.7, max_hashes=128)
        )
        output = algorithm.verify(np.array([0, 1]), np.array([1, 2]))
        pairs = output.pairs()
        assert all(len(entry) == 3 for entry in pairs)


class TestBayesLSHJaccard:
    def test_jaccard_pruning_and_estimation(self, binary_sets_collection):
        family = MinHashFamily(binary_sets_collection, seed=3)
        params = BayesLSHParams(threshold=0.5, epsilon=0.03, max_hashes=512)
        algorithm = BayesLSH(family, BetaPosterior(), params)
        left, right = _all_pairs(100)
        output = algorithm.verify(left, right)
        assert output.n_pruned > 0
        # estimates of surviving pairs should be close to the exact Jaccard values
        errors = [
            abs(est - jaccard_similarity(binary_sets_collection, int(i), int(j)))
            for i, j, est in zip(output.left, output.right, output.estimates)
        ]
        if errors:
            assert np.mean(np.array(errors) > 0.1) < 0.2

    def test_identical_rows_survive_with_estimate_one(self):
        from repro.similarity.vectors import VectorCollection

        collection = VectorCollection.from_sets([{1, 2, 3, 4}, {1, 2, 3, 4}], n_features=10)
        family = MinHashFamily(collection, seed=0)
        algorithm = BayesLSH(
            family, BetaPosterior(), BayesLSHParams(threshold=0.8, max_hashes=256)
        )
        output = algorithm.verify(np.array([0]), np.array([1]))
        assert output.n_output == 1
        assert output.estimates[0] > 0.9
