"""Tests for the experiment command-line runner."""

import pytest

from repro.experiments.runner import main, run_experiment


class TestRunExperiment:
    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("figure9")

    def test_figure1_dispatch(self):
        result = run_experiment("figure1")
        assert result.experiment_id == "figure1"


class TestMain:
    def test_writes_output_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(["figure1", "--output", str(output)])
        assert exit_code == 0
        text = output.read_text()
        assert "figure1" in text
        assert "hashes_required" in text
        captured = capsys.readouterr()
        assert "figure1" in captured.out

    def test_rejects_unknown_id(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_quick_flag_runs_table1(self, capsys, tmp_path):
        exit_code = main(["table1", "--quick", "--scale", "0.1", "--output", str(tmp_path / "t.txt")])
        assert exit_code == 0
