"""Tests for the experiment modules (reduced scale, shape assertions only)."""

import pytest

from repro.experiments import EXPERIMENT_IDS, figure1, figure4, figure5, table1, table5
from repro.experiments import figure3, table2, table3, table4
from repro.experiments.common import ExperimentResult, load_experiment_dataset

_SCALE = 0.15


class TestFigure1:
    def test_curve_shape(self):
        result = figure1.run(similarities=[0.1, 0.3, 0.5, 0.7, 0.9], max_hashes=2000)
        rows = result.tables["required_hashes"].rows
        values = {row[0]: row[1] for row in rows}
        assert values[0.5] > values[0.9]
        assert values[0.5] > values[0.1]
        assert isinstance(result, ExperimentResult)
        assert result.render()


class TestFigure5:
    def test_posterior_convergence(self):
        result = figure5.run(grid_size=1025)
        rows = result.tables["posteriors"].rows
        # total-variation distance to the uniform-prior posterior shrinks with n
        tv = {(row[0], row[1]): row[4] for row in rows}
        assert tv[("96/128", "x^-3")] < tv[("24/32", "x^-3")]
        assert tv[("96/128", "x^3")] < tv[("24/32", "x^3")]
        # uniform prior is its own reference
        assert tv[("24/32", "uniform")] == 0


class TestTable1:
    def test_all_datasets_reported(self):
        result = table1.run(scale=_SCALE)
        rows = result.tables["datasets"].rows
        assert len(rows) == 6
        names = [row[0] for row in rows]
        assert "rcv1" in names and "twitter" in names
        for row in rows:
            assert row[2] > 0  # ours: vectors
            assert row[8] > 0  # ours: nnz


class TestFigure4:
    def test_pruning_trace_shrinks(self):
        result = figure4.run(
            scale=_SCALE,
            threshold=0.7,
            max_hashes=128,
            panels=(("wikiwords100k_cosine", "wikiwords100k", False, "cosine"),),
        )
        rows = result.tables["wikiwords100k_cosine"].rows
        allpairs_counts = [row[2] for row in rows if row[0] == "allpairs" and row[1] != "output"]
        assert allpairs_counts == sorted(allpairs_counts, reverse=True)
        assert allpairs_counts[-1] < allpairs_counts[0]


class TestSweepExperiments:
    @pytest.fixture(scope="class")
    def figure3_result(self):
        return figure3.run(
            scale=_SCALE,
            groups=["weighted_cosine"],
            datasets=["rcv1"],
            thresholds=[0.7],
            pipelines=["allpairs", "ap_bayeslsh", "lsh", "lsh_bayeslsh"],
            repeats=1,
            timeout=None,
        )

    def test_figure3_records(self, figure3_result):
        records = figure3_result.records
        assert len(records) == 4
        assert all(record.mean_time > 0 for record in records)
        exact = [record for record in records if record.pipeline in ("allpairs", "lsh")]
        assert all(record.recall == pytest.approx(1.0) for record in exact)

    def test_table2_aggregation(self, figure3_result):
        result = table2.run(figure3_result=figure3_result)
        rows = result.tables["speedups"].rows
        assert len(rows) == 1
        assert rows[0][1] == "rcv1"
        assert rows[0][2] in ("ap_bayeslsh", "lsh_bayeslsh")

    def test_table3_recall_values(self):
        result = table3.run(scale=_SCALE, datasets=["rcv1"], thresholds=[0.7])
        for table_name in ("ap_bayeslsh", "ap_bayeslsh_lite"):
            rows = result.tables[table_name].rows
            assert len(rows) == 1
            recall_value = rows[0][1]
            assert 80.0 <= recall_value <= 100.0

    def test_table4_error_profile(self):
        result = table4.run(scale=_SCALE, datasets=["rcv1"], thresholds=[0.7])
        for table_name in ("lsh_approx", "lsh_bayeslsh"):
            rows = result.tables[table_name].rows
            assert 0.0 <= rows[0][1] <= 100.0

    def test_table5_quality_columns(self):
        result = table5.run(scale=_SCALE, values=(0.03, 0.09))
        rows = result.tables["quality"].rows
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row[1] <= 1.0       # fraction of errors
            assert 0.0 <= row[2] <= 1.0       # mean error
            assert 0.0 <= row[3] <= 100.0     # recall %


class TestExperimentInfrastructure:
    def test_experiment_ids_complete(self):
        assert set(EXPERIMENT_IDS) == {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "table1", "table2", "table3", "table4", "table5",
        }

    def test_dataset_cache_reuses_instances(self):
        a = load_experiment_dataset("rcv1", scale=_SCALE, seed=0)
        b = load_experiment_dataset("rcv1", scale=_SCALE, seed=0)
        assert a is b
        binary = load_experiment_dataset("rcv1", scale=_SCALE, seed=0, binary=True)
        assert binary is not a

    def test_result_rendering(self):
        result = ExperimentResult(experiment_id="x", title="t", parameters={"scale": 1})
        result.add_table("numbers", ["a"], [[1]], caption="cap")
        rendered = result.render()
        assert "cap" in rendered and "parameters" in rendered
