"""Resident pool lifecycle: reuse, self-healing, epoch refresh, bit-identity.

The persistent-pool contract from the robustness issue: a pool attached via
``QueryIndex.start_pool`` outlives calls (workers keep fork-inherited
columns warm; each batch ships only the query-state delta), a worker killed
mid-batch is *respawned* with backoff rather than retired forever, a
crash-looping slot quarantines (pool degrades to fewer workers, then the
serial path, with typed ``PoolDegradedWarning``), and segment churn bumps
the index epoch so the next lease refreshes the pool — with every answer
along the way bit-identical to the all-serial run.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.search.executor import PoolDegradedWarning
from repro.search.query import QueryIndex
from repro.testing import faults

from tests.faults.conftest import planted_collection


@pytest.fixture()
def index() -> QueryIndex:
    """A fresh multi-segment bayes index (function-scoped: pools mutate it)."""
    corpus = planted_collection(29, n=70)
    built = QueryIndex(corpus[:40], measure="cosine", threshold=0.6, seed=13)
    built.insert(corpus[40:])
    built.delete([2, 40])
    return built


@pytest.fixture()
def batch() -> np.ndarray:
    queries = planted_collection(31, n=8)
    queries[:3] = planted_collection(29, n=70)[:3]
    return queries


def _serial(index, batch) -> dict:
    return {
        "query": index.query_many(batch, threshold=0.55, n_workers=1),
        "topk_exact": index.top_k_many(batch, k=5, floor_threshold=0.2, n_workers=1),
        "topk_estimate": index.top_k_many(
            batch, k=5, floor_threshold=0.2, rank_by="estimate", n_workers=1
        ),
    }


def test_pool_reuse_is_bit_identical_and_does_not_refork(index, batch):
    """Repeated batched calls reuse one pool and match the serial oracle."""
    oracle = _serial(index, batch)
    index.start_pool(2)
    try:
        for _ in range(3):
            assert index.query_many(batch, threshold=0.55) == oracle["query"]
        assert (
            index.top_k_many(batch, k=5, floor_threshold=0.2) == oracle["topk_exact"]
        )
        assert (
            index.top_k_many(batch, k=5, floor_threshold=0.2, rank_by="estimate")
            == oracle["topk_estimate"]
        )
        stats = index.pool_stats()
        assert stats["batches_served"] >= 5
        assert stats["refreshes"] == 0, "no segment churn, so no refork"
        assert stats["live_workers"] == 2
    finally:
        index.close()


def test_explicit_n_workers_still_routes_per_call(index, batch):
    """``n_workers=1`` forces serial and ``n_workers=2`` a per-call pool,
    even while a resident pool is attached."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    index.start_pool(2)
    try:
        before = index.pool_stats()["batches_served"]
        assert index.query_many(batch, threshold=0.55, n_workers=1) == oracle
        assert index.query_many(batch, threshold=0.55, n_workers=2) == oracle
        assert index.pool_stats()["batches_served"] == before
    finally:
        index.close()


def test_epoch_refresh_after_insert_is_bit_identical(index, batch):
    """Segment churn bumps the epoch; the next lease refreshes the pool."""
    index.start_pool(2)
    try:
        index.query_many(batch, threshold=0.55)
        grown = planted_collection(37, n=12)
        new_rows = index.insert(grown)
        oracle = index.query_many(batch, threshold=0.55, n_workers=1)
        assert index.query_many(batch, threshold=0.55) == oracle
        stats = index.pool_stats()
        assert stats["refreshes"] == 1
        assert stats["epoch"] == index._epoch
        # The refreshed pool serves rows from the new segment too.
        probe = index.query_many(grown[:1], threshold=0.55)
        assert any(pair.j == int(new_rows[0]) for pair in probe[0])
    finally:
        index.close()


def test_close_is_idempotent_and_context_manager_closes(batch):
    """``close()`` detaches the pool deterministically; ``with`` does too."""
    corpus = planted_collection(29, n=50)
    with QueryIndex(corpus, measure="cosine", threshold=0.6, seed=13) as index:
        oracle = index.query_many(batch, threshold=0.55, n_workers=1)
        index.start_pool(2)
        assert index.query_many(batch, threshold=0.55) == oracle
        index.close()
        assert index.pool_stats() is None
        index.close()  # idempotent
        # Serving continues on the serial path after close.
        assert index.query_many(batch, threshold=0.55) == oracle
    assert index.pool_stats() is None


def test_start_pool_twice_raises(index):
    index.start_pool(2)
    try:
        with pytest.raises(RuntimeError, match="already"):
            index.start_pool(2)
    finally:
        index.close()


def test_killed_worker_respawns_at_next_batch_boundary(index, batch):
    """A worker killed mid-batch is recovered serially, then respawned —
    and the pool is reused (no per-call refork)."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    index.start_pool(3, respawn_backoff=0.01)
    try:
        with faults.inject() as plan:
            plan.kill_worker(0, event="serving_round", round_index=0)
            answers = index.query_many(batch, threshold=0.55)
        assert ("kill", 0) in plan.fired
        assert answers == oracle
        downgraded = index.pool_stats()
        assert downgraded["live_workers"] == 2
        # The next batch boundary heals the slot once the respawn backoff
        # elapsed; outlive it so that boundary is the upcoming batch's.
        time.sleep(0.3)
        assert index.query_many(batch, threshold=0.55) == oracle
        healed = index.pool_stats()
        assert healed["live_workers"] == 3
        assert healed["respawns"] == 1
        assert healed["consecutive_failures"] == [0, 0, 0]
        assert healed["refreshes"] == 0, "healing must not refork the pool"
    finally:
        index.close()


def test_crash_loop_quarantines_with_typed_warning(index, batch):
    """Two consecutive kills of the same slot quarantine it for good."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    index.start_pool(3, max_worker_failures=2, respawn_backoff=0.01)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for attempt in range(2):
                if attempt:
                    # The killed slot respawns at the next batch boundary
                    # only once its backoff elapsed; outlive the backoff
                    # (without an intervening successful batch, which would
                    # reset the slot's consecutive-failure count) so the
                    # second kill hits a live worker, not a corpse.
                    time.sleep(0.3)
                with faults.inject() as plan:
                    plan.kill_worker(0, event="serving_round", round_index=0)
                    assert index.query_many(batch, threshold=0.55) == oracle
                assert ("kill", 0) in plan.fired
        degraded = [w for w in caught if issubclass(w.category, PoolDegradedWarning)]
        assert degraded, "quarantine must emit PoolDegradedWarning"
        assert "quarantined" in str(degraded[0].message)
        stats = index.pool_stats()
        assert stats["quarantined"] == [0]
        assert stats["live_workers"] == 2
        # The quarantined slot never respawns; serving continues degraded.
        assert index.query_many(batch, threshold=0.55) == oracle
        assert index.pool_stats()["quarantined"] == [0]
        assert index.pool_stats()["live_workers"] == 2
    finally:
        index.close()


def test_full_quarantine_degrades_to_serial_but_stays_available(index, batch):
    """Quarantining every slot leaves a pool that serves serially."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    index.start_pool(2, max_worker_failures=1)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with faults.inject() as plan:
                plan.kill_worker(0, event="serving_round", round_index=0)
                plan.kill_worker(1, event="serving_round", round_index=0)
                assert index.query_many(batch, threshold=0.55) == oracle
            # Still answers — now on the degraded serial path.
            assert index.query_many(batch, threshold=0.55) == oracle
        messages = [str(w.message) for w in caught]
        assert any("serial" in m for m in messages), messages
        stats = index.pool_stats()
        assert stats["live_workers"] == 0
        assert stats["quarantined"] == [0, 1]
        assert stats["serial_batches"] >= 1
    finally:
        index.close()


def test_pool_stats_are_json_safe(index):
    """The health dict feeds the daemon's ``/stats``: plain types only."""
    import json

    index.start_pool(2)
    try:
        stats = index.pool_stats()
        json.dumps(stats)
        assert stats["n_workers"] == 2
        assert stats["closed"] is False
        for key in (
            "epoch",
            "live_workers",
            "quarantined",
            "respawns",
            "consecutive_failures",
            "batches_served",
            "serial_batches",
            "refreshes",
        ):
            assert key in stats
    finally:
        index.close()
