"""Adversarial tests for the flat on-disk snapshot layout.

The flat layout (see ``repro/serving/storage.py``) spreads one snapshot
over many files, so "the archive is corrupt" has many more shapes than for
a single ``.npz``: a member file truncated at any boundary, a bit flipped
anywhere in the manifest, a member file missing outright, a data byte
flipped with the size intact, an orphaned generation from a crashed
writer.  Every test here drives one of those shapes into
:func:`~repro.serving.storage.read_flat` and asserts the documented
outcome — an identical load, a typed
:class:`~repro.serving.snapshot.SnapshotCorruptError` naming the snapshot
path, or (for intact-but-foreign versions) a plain ``ValueError``.
"""

import json
import shutil
import zlib

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import SnapshotCorruptError, load_query_index
from repro.serving.storage import (
    FLAT_FORMAT,
    FLAT_VERSION,
    MANIFEST_NAME,
    is_flat_snapshot,
    read_flat,
    write_flat,
)


def _corpus(seed: int, n: int = 40, features: int = 60) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.2)
    dense[: n // 5] = dense[n // 2 : n // 2 + n // 5]
    return dense


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A committed flat snapshot of a small multi-segment index."""
    index = QueryIndex(_corpus(11), measure="cosine", threshold=0.6, seed=5)
    index.insert(_corpus(12, n=6))
    index.delete([1, 4])
    root = tmp_path_factory.mktemp("flat-pristine")
    path = index.save(root / "snapshot", layout="flat")
    queries = _corpus(11)[:5]
    reference = index.query_many(queries, threshold=0.5)
    return path, queries, reference


def _clone(pristine, tmp_path):
    """A private mutable copy of the pristine snapshot directory."""
    path, queries, reference = pristine
    copy = tmp_path / path.name
    shutil.copytree(path, copy)
    return copy, queries, reference


def _member_files(path):
    manifest = json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[2])
    return {name: entry for name, entry in manifest["members"].items()}


def _rewrite_manifest(path, mutate):
    """Apply ``mutate(payload)`` and re-commit with a *valid* header CRC.

    Used to test the semantic validation layers below the checksum: the
    manifest itself verifies, but declares something inconsistent.
    """
    raw = (path / MANIFEST_NAME).read_bytes()
    head, _, body = raw.partition(b"\n")
    header = json.loads(head)
    payload = json.loads(body)
    mutate(payload)
    body = json.dumps(payload).encode("utf-8")
    header["payload_crc"] = int(zlib.crc32(body))
    header["payload_size"] = len(body)
    (path / MANIFEST_NAME).write_bytes(json.dumps(header).encode("utf-8") + b"\n" + body)


# --------------------------------------------------------------------- #
# baseline: the untouched layout loads identically on both backends
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("storage", ["ram", "mmap"])
def test_pristine_layout_loads_identically(pristine, tmp_path, storage):
    path, queries, reference = _clone(pristine, tmp_path)
    assert is_flat_snapshot(path)
    loaded = QueryIndex.load(path, storage=storage)
    assert loaded.query_many(queries, threshold=0.5) == reference


# --------------------------------------------------------------------- #
# member files: truncation at every boundary, growth, removal
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("storage", ["ram", "mmap"])
def test_truncating_any_member_at_any_boundary_is_typed(pristine, tmp_path, storage):
    """Every member × every truncation point → SnapshotCorruptError.

    The size check is structural, so the *mmap* backend must catch torn
    files too — lazily faulting pages is no excuse for loading a file the
    manifest says should be longer.
    """
    base, _, _ = _clone(pristine, tmp_path)
    members = _member_files(base)
    assert len(members) > 10  # the matrix below actually covers the layout
    for name, entry in members.items():
        nbytes = entry["nbytes"]
        if nbytes == 0:
            continue  # an empty member cannot be truncated
        boundaries = sorted({0, 1, nbytes // 2, nbytes - 1})
        for keep in boundaries:
            victim = tmp_path / f"trunc-{name}-{keep}"
            shutil.copytree(base, victim)
            with open(victim / entry["file"], "r+b") as handle:
                handle.truncate(keep)
            with pytest.raises(SnapshotCorruptError, match="truncated or torn") as info:
                read_flat(victim, storage=storage)
            assert str(victim) in str(info.value)
            assert entry["file"] in str(info.value)
            shutil.rmtree(victim)


def test_grown_member_file_is_typed(pristine, tmp_path):
    """A member *longer* than declared is just as torn as a shorter one."""
    path, _, _ = _clone(pristine, tmp_path)
    entry = _member_files(path)["seg0_store"]
    with open(path / entry["file"], "ab") as handle:
        handle.write(b"\x00")
    with pytest.raises(SnapshotCorruptError, match="truncated or torn"):
        read_flat(path, storage="mmap")


@pytest.mark.parametrize("storage", ["ram", "mmap"])
def test_stripped_member_file_is_typed(pristine, tmp_path, storage):
    path, _, _ = _clone(pristine, tmp_path)
    entry = _member_files(path)["seg0_collection_data"]
    (path / entry["file"]).unlink()
    with pytest.raises(SnapshotCorruptError, match="missing member file") as info:
        read_flat(path, storage=storage)
    assert str(path) in str(info.value)
    assert entry["file"] in str(info.value)


def test_flipped_data_byte_fails_ram_audit_but_passes_mmap_structure(
    pristine, tmp_path
):
    """The documented backend asymmetry: same flip, different guarantees.

    ``storage="ram"`` hashes every data byte and must reject the flip;
    ``storage="mmap"`` promises structural verification only (hashing
    would fault the whole corpus in), so the same snapshot maps cleanly.
    """
    path, _, _ = _clone(pristine, tmp_path)
    entry = _member_files(path)["seg0_store"]
    target = path / entry["file"]
    blob = bytearray(target.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    target.write_bytes(blob)

    with pytest.raises(SnapshotCorruptError, match="checksum mismatch") as info:
        read_flat(path, storage="ram")
    assert "seg0_store" in str(info.value)
    version, meta, arrays = read_flat(path, storage="mmap")
    assert arrays["seg0_store"].shape == tuple(entry["shape"])


# --------------------------------------------------------------------- #
# manifest: bit flips anywhere are caught by the self-validating header
# --------------------------------------------------------------------- #
def test_flipping_any_manifest_byte_is_typed(pristine, tmp_path):
    """A sampled sweep of single-byte flips across the whole manifest.

    The manifest is self-validating: a flip in the payload breaks its CRC,
    a flip in the header breaks the JSON, the magic, or the CRC/size
    declaration the payload is checked against.  Every sampled offset —
    plus the first and last byte and the section separator — must raise
    the typed error naming the snapshot path.
    """
    base, _, _ = _clone(pristine, tmp_path)
    raw = (base / MANIFEST_NAME).read_bytes()
    offsets = set(range(0, len(raw), max(1, len(raw) // 64)))
    offsets |= {0, len(raw) - 1, raw.index(b"\n")}
    for offset in sorted(offsets):
        blob = bytearray(raw)
        blob[offset] ^= 0xFF
        (base / MANIFEST_NAME).write_bytes(blob)
        with pytest.raises(SnapshotCorruptError) as info:
            read_flat(base, storage="ram")
        assert str(base) in str(info.value), offset
    (base / MANIFEST_NAME).write_bytes(raw)  # still loadable afterwards
    read_flat(base, storage="ram")


def test_truncating_the_manifest_at_every_boundary_is_typed(pristine, tmp_path):
    base, _, _ = _clone(pristine, tmp_path)
    raw = (base / MANIFEST_NAME).read_bytes()
    newline = raw.index(b"\n")
    for keep in sorted({0, 1, newline, newline + 1, len(raw) // 2, len(raw) - 1}):
        (base / MANIFEST_NAME).write_bytes(raw[:keep])
        with pytest.raises(SnapshotCorruptError):
            read_flat(base, storage="mmap")


def test_missing_manifest_is_typed(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)
    (path / MANIFEST_NAME).unlink()
    with pytest.raises(SnapshotCorruptError, match="missing MANIFEST.json"):
        read_flat(path)


def test_foreign_directory_is_typed(tmp_path):
    foreign = tmp_path / "not-a-snapshot"
    foreign.mkdir()
    (foreign / MANIFEST_NAME).write_bytes(b'{"format": "something-else"}\n{}')
    with pytest.raises(SnapshotCorruptError, match="not a QueryIndex snapshot"):
        read_flat(foreign)


# --------------------------------------------------------------------- #
# versioning: intact-but-unsupported is ValueError, not corruption
# --------------------------------------------------------------------- #
def test_future_flat_version_is_plain_value_error(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)
    raw = (path / MANIFEST_NAME).read_bytes()
    head, _, body = raw.partition(b"\n")
    header = json.loads(head)
    header["flat_version"] = FLAT_VERSION + 1
    (path / MANIFEST_NAME).write_bytes(json.dumps(header).encode() + b"\n" + body)
    with pytest.raises(ValueError, match="flat layout version") as info:
        read_flat(path)
    assert not isinstance(info.value, SnapshotCorruptError)


def test_future_snapshot_version_is_plain_value_error(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)
    _rewrite_manifest(path, lambda payload: payload.update(version=99))
    with pytest.raises(ValueError, match="version 99") as info:
        read_flat(path)
    assert not isinstance(info.value, SnapshotCorruptError)


# --------------------------------------------------------------------- #
# semantic validation below the checksum layer
# --------------------------------------------------------------------- #
def test_member_escaping_the_snapshot_directory_is_typed(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)

    def escape(payload):
        payload["members"]["deleted"]["file"] = "../outside.bin"

    _rewrite_manifest(path, escape)
    with pytest.raises(SnapshotCorruptError, match="outside the snapshot directory"):
        read_flat(path)


def test_member_shape_dtype_size_disagreement_is_typed(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)

    def disagree(payload):
        payload["members"]["seg0_store"]["shape"][0] += 1  # nbytes now wrong

    _rewrite_manifest(path, disagree)
    with pytest.raises(SnapshotCorruptError, match="declares .* bytes but shape"):
        read_flat(path)


def test_checksum_and_member_tables_must_agree(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)
    _rewrite_manifest(path, lambda p: p["members"].pop("deleted"))
    with pytest.raises(SnapshotCorruptError, match="'deleted' is in the checksum"):
        read_flat(path)

    path2, _, _ = _clone(pristine, tmp_path / "second")
    _rewrite_manifest(path2, lambda p: p["meta"]["checksums"].pop("deleted"))
    with pytest.raises(SnapshotCorruptError, match="'deleted' has no entry"):
        read_flat(path2)


# --------------------------------------------------------------------- #
# the higher-level loader surfaces the same typed error
# --------------------------------------------------------------------- #
def test_load_query_index_surfaces_typed_error(pristine, tmp_path):
    path, _, _ = _clone(pristine, tmp_path)
    entry = _member_files(path)["seg0_store"]
    with open(path / entry["file"], "r+b") as handle:
        handle.truncate(3)
    with pytest.raises(SnapshotCorruptError, match="truncated or torn"):
        load_query_index(path)


# --------------------------------------------------------------------- #
# generations: orphans are never reused, stale files are collected
# --------------------------------------------------------------------- #
def test_recommit_bumps_generation_and_collects_stale_files(pristine, tmp_path):
    path, queries, _ = _clone(pristine, tmp_path)
    first = json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[2])
    index = QueryIndex.load(path)
    reference = index.query_many(queries, threshold=0.5)

    index.save(path, layout="flat")
    second = json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[2])
    assert second["generation"] > first["generation"]
    on_disk = {entry.name for entry in path.iterdir()}
    referenced = {entry["file"] for entry in second["members"].values()}
    assert on_disk == referenced | {MANIFEST_NAME}  # stale generations are gone
    assert QueryIndex.load(path).query_many(queries, threshold=0.5) == reference


def test_crashed_writer_orphans_are_superseded_not_reused(pristine, tmp_path):
    """File names decide the next generation, not the manifest.

    An orphaned high-generation file (a crashed writer got further than
    the committed manifest) must never be overwritten by a new commit
    under the same name — the writer skips past it, and the commit's GC
    then removes it along with any leftover temp files.
    """
    path, queries, reference = _clone(pristine, tmp_path)
    orphan = path / "deleted.g7.bin"
    orphan.write_bytes(b"\xde\xad\xbe\xef")
    leftover_temp = path / f"{MANIFEST_NAME}.tmp.1234"
    leftover_temp.write_bytes(b"partial")

    # Orphans do not disturb a load: the manifest alone decides what is read.
    assert QueryIndex.load(path).query_many(queries, threshold=0.5) == reference

    QueryIndex.load(path).save(path, layout="flat")
    manifest = json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[2])
    assert manifest["generation"] == 8  # one past the orphan, never equal
    assert not orphan.exists()
    assert not leftover_temp.exists()
    names = {entry["file"] for entry in manifest["members"].values()}
    assert all(".g8." in name for name in names)


def test_empty_members_round_trip(tmp_path):
    """Zero-length arrays get zero-length files and come back empty-typed."""
    arrays = {
        "empty": np.zeros((0, 4), dtype=np.float64),
        "full": np.arange(6, dtype=np.int32).reshape(2, 3),
    }
    meta = {"checksums": {name: int(zlib.crc32(value.tobytes())) for name, value in arrays.items()}}
    path = write_flat(tmp_path / "tiny.flat", 3, meta, arrays)
    assert (path / MANIFEST_NAME).exists()
    for storage in ("ram", "mmap"):
        version, _, loaded = read_flat(path, storage=storage)
        assert version == 3
        assert loaded["empty"].shape == (0, 4)
        assert loaded["empty"].dtype == np.float64
        assert np.array_equal(loaded["full"], arrays["full"])
    assert json.loads((path / MANIFEST_NAME).read_bytes().partition(b"\n")[0])[
        "format"
    ] == FLAT_FORMAT
