"""Write-ahead log: bit-identical replay, fsync policies, checkpoints.

The contract under test (see ``repro/serving/wal.py``): every mutation a
WAL-attached index acknowledges is recoverable by replaying the log's tail
on top of the newest snapshot, and the recovered index is bit-identical to
the uncrashed one — same answers, same ids, same default-id counter, same
hash-family RNG position (the snapshot bit-identity contract extended to
the live mutation stream).  Crash *residue* (torn tails, interior flips)
is exercised byte-by-byte in ``tests/faults/test_wal_faults.py``; this
module covers the happy paths and the checkpoint lifecycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import SnapshotStore, load_query_index
from repro.serving.wal import WriteAheadLog, _encode_arrays

from tests.faults.conftest import planted_collection


@pytest.fixture()
def corpus() -> np.ndarray:
    return planted_collection(71, n=60)


@pytest.fixture()
def probes() -> np.ndarray:
    probe = planted_collection(72, n=6)
    probe[:2] = planted_collection(71, n=60)[:2]
    return probe


def _fresh_index(corpus) -> QueryIndex:
    return QueryIndex(corpus[:40], measure="cosine", threshold=0.6, seed=17)


def _mutate(index: QueryIndex, corpus) -> None:
    """The reference mutation stream: default ids, explicit ids, deletes."""
    index.insert(corpus[40:50])
    index.insert(corpus[50:55], ids=[900, 901, 902, 903, 904])
    index.delete([1, 41, 44])
    index.insert(corpus[55:])


def _assert_bit_identical(recovered: QueryIndex, original: QueryIndex, probes):
    assert recovered.n_indexed == original.n_indexed
    assert np.array_equal(recovered.ids, original.ids)
    assert np.array_equal(recovered._deleted, original._deleted)
    assert recovered._next_default_id == original._next_default_id
    assert recovered._segments.n_segments == original._segments.n_segments
    assert [seg.n_vectors for seg in recovered._segments.segments] == [
        seg.n_vectors for seg in original._segments.segments
    ]
    state = recovered._family.state_dict()
    reference = original._family.state_dict()
    assert state.keys() == reference.keys()
    for key, value in reference.items():
        assert np.array_equal(state[key], value), key
    assert recovered.query_many(probes, threshold=0.5) == original.query_many(
        probes, threshold=0.5
    )
    assert recovered.top_k_many(probes, k=5) == original.top_k_many(probes, k=5)


# --------------------------------------------------------------------- #
# replay bit-identity
# --------------------------------------------------------------------- #
def test_replay_on_snapshot_is_bit_identical(tmp_path, corpus, probes):
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    path = index.save(tmp_path / "checkpoint")
    _mutate(index, corpus)

    recovered = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal"))
    _assert_bit_identical(recovered, index, probes)
    # recovery re-attaches the log: new mutations keep appending to it
    assert recovered.wal is not None
    recovered.wal.close()
    index.wal.close()


def test_replay_twice_is_idempotent(tmp_path, corpus, probes):
    """Two independent recoveries from the same snapshot+log agree exactly."""
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    path = index.save(tmp_path / "checkpoint")
    _mutate(index, corpus)
    index.wal.close()

    first = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal"))
    first.wal.close()
    second = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal"))
    second.wal.close()
    # compare the two recoveries' family state *before* any probe query
    # draws further hash functions (queries grow the signature matrix)
    state_first = first._family.state_dict()
    state_second = second._family.state_dict()
    for key, value in state_first.items():
        assert np.array_equal(state_second[key], value), key
    _assert_bit_identical(first, index, probes)
    assert second.query_many(probes, threshold=0.5) == first.query_many(
        probes, threshold=0.5
    )


def test_recovered_index_continues_identically(tmp_path, corpus, probes):
    """Mutations after recovery match mutations on the uncrashed original.

    The strongest form of the RNG-authority claim: default ids and hash
    functions drawn *after* replay continue the original's streams.
    """
    import shutil

    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    path = index.save(tmp_path / "checkpoint")
    index.insert(corpus[40:50])
    index.wal.sync()
    # recover from a copy so both twins keep logging independently
    shutil.copytree(tmp_path / "wal", tmp_path / "wal-copy")
    recovered = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal-copy"))

    extra = planted_collection(73, n=5)
    index.insert(extra)
    recovered.insert(extra)
    index.delete([3])
    recovered.delete([3])
    _assert_bit_identical(recovered, index, probes)
    recovered.wal.close()
    index.wal.close()


def test_reopened_wal_resumes_sequence(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(WriteAheadLog(tmp_path / "wal"))
    path = index.save(tmp_path / "checkpoint")
    index.insert(corpus[40:45])
    last = index.wal.last_seq
    index.wal.close()

    recovered = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal"))
    recovered.insert(corpus[45:50])
    assert recovered.wal.last_seq == last + 1
    seqs = [seq for seq, _, _ in WriteAheadLog(tmp_path / "wal").records()]
    assert seqs == list(range(1, last + 2))
    recovered.wal.close()


def test_replay_counters_report_the_tail(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    path = index.save(tmp_path / "checkpoint")
    _mutate(index, corpus)
    index.wal.close()

    recovered = QueryIndex.load(path, wal=WriteAheadLog(tmp_path / "wal"))
    stats = recovered.replay_stats()
    assert stats["replayed_records"] == 4
    assert stats["replayed_inserts"] == 3
    assert stats["replayed_deletes"] == 1
    assert stats["last_replayed_seq"] == 4
    assert not recovered.replaying
    recovered.wal.close()


# --------------------------------------------------------------------- #
# guard rails
# --------------------------------------------------------------------- #
def test_snapshot_without_wal_position_refuses_nonempty_log(tmp_path, corpus):
    """A snapshot that never saw the log cannot anchor a replay offset."""
    index = _fresh_index(corpus)
    path = index.save(tmp_path / "plain")  # saved with no WAL attached
    with WriteAheadLog(tmp_path / "wal") as wal:
        wal.append_delete([0])
        with pytest.raises(ValueError, match="no WAL position"):
            QueryIndex.load(path, wal=wal)
        # an *empty* log is fine: nothing to replay, logging just starts
        empty = WriteAheadLog(tmp_path / "empty")
        loaded = QueryIndex.load(path, wal=empty)
        assert loaded.wal is empty
        empty.close()


def test_compact_save_with_wal_is_refused(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    index.delete([2])
    with pytest.raises(ValueError, match="compact"):
        index.save(tmp_path / "compacted", compact=True)
    index.wal.close()


def test_mutating_before_recover_is_refused(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    path = index.save(tmp_path / "checkpoint")
    index.insert(corpus[40:45])
    index.wal.close()

    loaded = QueryIndex.load(path)
    loaded.insert(corpus[45:50])  # diverges from the log
    with pytest.raises(ValueError, match="mutated"):
        loaded.recover(WriteAheadLog(tmp_path / "wal"))


def test_object_dtype_ids_are_rejected_before_writing():
    with pytest.raises(ValueError, match="dtype object"):
        _encode_arrays("insert", {"ids": np.array([{"not": "fixed-width"}])})


def test_bad_fsync_policy_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        WriteAheadLog(tmp_path / "wal", fsync="sometimes")


# --------------------------------------------------------------------- #
# fsync policies
# --------------------------------------------------------------------- #
def test_fsync_always_syncs_every_append(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(WriteAheadLog(tmp_path / "wal", fsync="always"))
    index.insert(corpus[40:45])
    index.delete([0])
    stats = index.wal.stats()
    assert stats["appends"] == 2
    assert stats["syncs"] == 2
    assert stats["unsynced_records"] == 0
    index.wal.close()


def test_fsync_batch_syncs_on_interval_and_close(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(WriteAheadLog(tmp_path / "wal", fsync="batch", sync_every=3))
    for row in range(40, 44):
        index.insert(corpus[row : row + 1])
    stats = index.wal.stats()
    assert stats["appends"] == 4
    assert stats["syncs"] == 1  # one interval fired at the 3rd record
    assert stats["unsynced_records"] == 1
    index.wal.close()
    assert index.wal.stats()["unsynced_records"] == 0


def test_fsync_off_never_syncs(tmp_path, corpus):
    index = _fresh_index(corpus)
    index.attach_wal(WriteAheadLog(tmp_path / "wal", fsync="off"))
    index.insert(corpus[40:50])
    index.delete([0, 1])
    index.wal.roll()
    index.wal.close()
    assert index.wal.stats()["syncs"] == 0


# --------------------------------------------------------------------- #
# checkpoints and pruning
# --------------------------------------------------------------------- #
def test_checkpoint_stamps_segment_and_splits_the_stream(tmp_path, corpus, probes):
    """Replay starts at the snapshot's stamped segment, not the log's head."""
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    index.insert(corpus[40:45])  # pre-checkpoint records (segment 1)
    path = index.save(tmp_path / "checkpoint")
    index.insert(corpus[45:50])  # post-checkpoint records (segment 2)
    index.wal.close()

    wal = WriteAheadLog(tmp_path / "wal")
    assert wal.active_segment == 2
    recovered = QueryIndex.load(path, wal=wal)
    assert recovered.replay_stats()["replayed_records"] == 1
    _assert_bit_identical(recovered, index, probes)
    recovered.wal.close()


def test_store_checkpoints_keep_wal_bounded(tmp_path, corpus):
    """Repeated store saves prune every segment no retained snapshot needs."""
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    for round_index in range(5):
        start = 40 + round_index * 4
        index.insert(corpus[start : start + 4])
        store.save(index)
    stats = index.wal.stats()
    # keep=2 retains two snapshots; only their replay tails may survive
    assert stats["segments"] <= 3
    assert stats["pruned_segments"] >= 2
    # rollback target: the *oldest retained* snapshot still replays
    oldest = store.snapshots()[0]
    recovered = load_query_index(oldest, wal=WriteAheadLog(tmp_path / "wal"))
    assert recovered.n_indexed == index.n_indexed
    recovered.wal.close()
    index.wal.close()


def test_store_load_replays_latest_tail(tmp_path, corpus, probes):
    index = _fresh_index(corpus)
    index.attach_wal(tmp_path / "wal")
    store = SnapshotStore(tmp_path / "snaps", keep=2)
    store.save(index)
    _mutate(index, corpus)
    index.wal.close()

    recovered = store.load(wal=WriteAheadLog(tmp_path / "wal"))
    _assert_bit_identical(recovered, index, probes)
    recovered.wal.close()


def test_wal_stats_shape(tmp_path, corpus):
    index = _fresh_index(corpus)
    assert index.wal_stats() is None
    index.attach_wal(WriteAheadLog(tmp_path / "wal", fsync="batch", sync_every=8))
    index.insert(corpus[40:44])
    stats = index.wal_stats()
    assert stats["fsync"] == "batch"
    assert stats["sync_every"] == 8
    assert stats["segments"] == 1
    assert stats["active_segment"] == 1
    assert stats["records"] == 1
    assert stats["last_seq"] == 1
    assert stats["bytes"] > 0
    index.wal.close()
