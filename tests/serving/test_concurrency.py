"""Threaded reader-during-ingest stress tests for the serving layer.

The serving contract is *many reader threads, one writer thread* (see
``repro/serving/segments.py``).  The races these tests hunt:

* two readers lazily extending the same segment's signature store (or the
  shared simhash projection matrix / minhash coefficient arrays) at the same
  time — unguarded, both would draw from the RNG stream and corrupt the
  determinism contract, or interleave column appends;
* a reader probing/counting while ``insert`` publishes a new segment —
  readers must only ever observe rows whose segment, tombstone-mask slot and
  postings entries are all live;
* readers racing a staleness-budget postings rebuild triggered by another
  reader after deletes.

Correctness oracle: hash functions are deterministic in ``(seed, index)`` and
every serving kernel is row-local, so whatever subset of inserted rows a
reader observes, the result pairs that reference the *original* corpus must
be exactly the reference answer computed on an identical, never-mutated
index.  Any torn state shows up as an exception, a missing original pair or
a wrong similarity.
"""

import threading

import numpy as np
import pytest

from repro.search.query import QueryIndex

_N_INITIAL = 80
_N_FEATURES = 96
_N_READERS = 4
_N_BATCHES = 8
_BATCH = 20


def _corpus(seed: int, n: int, features: int = _N_FEATURES) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.25)
    half = n // 2
    planted = min(10, n - half)
    dense[:planted] = dense[half : half + planted]
    return dense


def _result_key(results):
    """Result lists as comparable (query, row) -> similarity maps."""
    return [
        {(pair.j): pair.similarity for pair in hits} for hits in results
    ]


def _run_readers(index, queries, reference_by_query, n_initial, errors, n_rounds=12):
    """Reader loop: batched queries whose original-row hits must match exactly."""
    try:
        for _ in range(n_rounds):
            results = index.query_many(queries, threshold=0.5)
            for position, hits in enumerate(results):
                observed = {
                    pair.j: pair.similarity for pair in hits if pair.j < n_initial
                }
                if observed != reference_by_query[position]:
                    raise AssertionError(
                        f"query {position}: original-row hits diverged: "
                        f"{observed} != {reference_by_query[position]}"
                    )
    except Exception as error:  # propagate to the main thread
        errors.append(error)


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_readers_during_insert_see_consistent_answers(measure):
    """Concurrent batched readers while the writer ingests segment batches.

    Uses Bayesian verification so every reader batch drives the round-lazy
    store extension of freshly inserted segments — the main lock target.
    """
    corpus = _corpus(41, _N_INITIAL)
    queries = corpus[:8]
    index = QueryIndex(corpus, measure=measure, threshold=0.55, seed=7)
    reference = QueryIndex(corpus, measure=measure, threshold=0.55, seed=7)
    reference_by_query = _result_key(reference.query_many(queries, threshold=0.5))

    errors: list = []
    readers = [
        threading.Thread(
            target=_run_readers,
            args=(index, queries, reference_by_query, _N_INITIAL, errors),
        )
        for _ in range(_N_READERS)
    ]
    for thread in readers:
        thread.start()
    for batch in range(_N_BATCHES):
        index.insert(_corpus(100 + batch, _BATCH))
    for thread in readers:
        thread.join()

    assert not errors, errors[0]
    assert index.n_indexed == _N_INITIAL + _N_BATCHES * _BATCH
    # The settled index still answers the original-row portion identically.
    settled = _result_key(index.query_many(queries, threshold=0.5))
    for position, observed in enumerate(settled):
        original = {j: s for j, s in observed.items() if j < _N_INITIAL}
        assert original == reference_by_query[position]


def test_pooled_readers_during_insert():
    """Readers using ``n_workers > 1`` while the writer ingests.

    Exercises the pool-creation vs ingest race: `_make_serving_pool` holds
    the update lock across the fork-time snapshot and the worker forks, so
    every worker inherits a mutually consistent segment list / postings /
    tombstone mask no matter when ``insert`` commits.  The oracle is the
    same as the serial stress test: original-row hits must match a
    never-mutated reference index exactly.
    """
    corpus = _corpus(47, _N_INITIAL)
    queries = corpus[:6]
    index = QueryIndex(corpus, measure="cosine", threshold=0.55, seed=11)
    reference = QueryIndex(corpus, measure="cosine", threshold=0.55, seed=11)
    reference_by_query = _result_key(reference.query_many(queries, threshold=0.5))

    errors: list = []

    def pooled_read_loop():
        try:
            for _ in range(5):
                results = index.query_many(queries, threshold=0.5, n_workers=2)
                for position, hits in enumerate(results):
                    observed = {
                        pair.j: pair.similarity for pair in hits if pair.j < _N_INITIAL
                    }
                    if observed != reference_by_query[position]:
                        raise AssertionError(
                            f"query {position}: original-row hits diverged under pool"
                        )
        except Exception as error:
            errors.append(error)

    readers = [threading.Thread(target=pooled_read_loop) for _ in range(2)]
    for thread in readers:
        thread.start()
    for batch in range(5):
        index.insert(_corpus(200 + batch, _BATCH))
    for thread in readers:
        thread.join()

    assert not errors, errors[0]


def test_readers_during_delete_and_posting_rebuild():
    """Readers race deletes that push the postings past the staleness budget.

    The rebuild is triggered lazily *by a reader* and runs under the index's
    update lock; deleted rows must vanish from results immediately and
    surviving original rows must keep their exact similarities throughout.
    """
    corpus = _corpus(43, _N_INITIAL)
    queries = corpus[:8]
    index = QueryIndex(
        corpus,
        measure="cosine",
        threshold=0.55,
        verification="exact",
        seed=9,
        staleness_budget=0.05,
    )
    victims = list(range(60, 80))
    reference = QueryIndex(
        corpus, measure="cosine", threshold=0.55, verification="exact", seed=9
    )
    reference.delete(victims)
    reference_full = _result_key(reference.query_many(queries, threshold=0.5))
    survivors_reference = [
        {j: s for j, s in hits.items() if j < 60} for hits in reference_full
    ]

    errors: list = []

    def read_loop():
        try:
            for _ in range(20):
                for position, hits in enumerate(index.query_many(queries, threshold=0.5)):
                    observed = {pair.j: pair.similarity for pair in hits if pair.j < 60}
                    if observed != survivors_reference[position]:
                        raise AssertionError(
                            f"query {position}: surviving hits diverged"
                        )
        except Exception as error:
            errors.append(error)

    readers = [threading.Thread(target=read_loop) for _ in range(_N_READERS)]
    for thread in readers:
        thread.start()
    for row in victims:
        index.delete([row])
    for thread in readers:
        thread.join()

    assert not errors, errors[0]
    assert index.query_many(queries, threshold=0.5) == reference.query_many(
        queries, threshold=0.5
    )
