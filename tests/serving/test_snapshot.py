"""Snapshot round-trip tests for the serving layer.

The contract under test (see ``repro/serving/snapshot.py``): a loaded index
is indistinguishable from the instance that saved it — same query answers bit
for bit, same counters, and the *same future*: hash functions drawn after the
round trip match hash functions the original would have drawn.
"""

import json

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_query_index,
    save_query_index,
)


def _corpus(seed: int, n: int = 60, features: int = 120):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.15)
    dense[: n // 4] = dense[n // 2 : n // 2 + n // 4]  # planted near-duplicates
    return dense


@pytest.fixture(scope="module")
def corpus():
    return _corpus(101)


@pytest.fixture(scope="module")
def queries(corpus):
    return corpus[:7] + 0.0


@pytest.mark.parametrize(
    "measure,verification",
    [
        ("cosine", "bayes"),
        ("cosine", "exact"),
        ("jaccard", "bayes"),
        ("jaccard", "exact"),
        ("binary_cosine", "bayes"),
    ],
)
def test_round_trip_is_bit_identical(tmp_path, corpus, queries, measure, verification):
    index = QueryIndex(
        corpus, measure=measure, threshold=0.6, verification=verification, seed=9
    )
    before_query = index.query_many(queries, threshold=0.5)
    before_topk = index.top_k_many(queries, k=5)

    path = index.save(tmp_path / f"{measure}-{verification}")
    assert path.suffix == ".npz"
    loaded = QueryIndex.load(path)

    assert loaded.n_indexed == index.n_indexed
    assert loaded.n_signatures == index.n_signatures
    assert loaded.threshold == index.threshold
    assert loaded.verification == verification
    # ScoredPair equality is exact (ints and the float similarity), so these
    # assertions enforce bit-identity of every estimate.
    assert loaded.query_many(queries, threshold=0.5) == before_query
    assert loaded.top_k_many(queries, k=5) == before_topk


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_rng_stream_resumes_after_load(tmp_path, corpus, queries, measure):
    """Hashes drawn *after* the round trip match hashes drawn without it.

    The index is saved before any Bayesian query runs, so the signature store
    holds only the banding hashes; the first query then forces both instances
    to draw ~2000 more hash functions.  Identical answers prove the RNG
    stream position (not just the drawn state) survived serialisation.
    """
    index = QueryIndex(corpus, measure=measure, threshold=0.6, seed=4)
    path = save_query_index(index, tmp_path / "pre-query")
    loaded = load_query_index(path)
    assert loaded.query_many(queries, threshold=0.5) == index.query_many(
        queries, threshold=0.5
    )


def test_round_trip_preserves_updates_and_counters(tmp_path, corpus, queries):
    index = QueryIndex(
        corpus, measure="cosine", threshold=0.6, seed=2, staleness_budget=0.9
    )
    index.insert(_corpus(55, n=12))
    index.delete([0, 3, 5])
    expected = index.query_many(queries, threshold=0.5)

    loaded = QueryIndex.load(index.save(tmp_path / "updated"))
    assert loaded.n_indexed == index.n_indexed
    assert loaded.n_deleted == 3
    assert loaded.n_stale_postings == index.n_stale_postings
    assert loaded.staleness_budget == index.staleness_budget
    assert loaded.query_many(queries, threshold=0.5) == expected
    # The loaded index keeps evolving: further updates behave identically.
    extra = _corpus(56, n=6)
    assert np.array_equal(index.insert(extra), loaded.insert(extra))
    assert loaded.query_many(queries, threshold=0.5) == index.query_many(
        queries, threshold=0.5
    )


def test_round_trip_preserves_external_ids(tmp_path):
    from repro.similarity.vectors import VectorCollection

    collection = VectorCollection.from_dense(
        _corpus(77, n=10), ids=[f"doc-{i}" for i in range(10)]
    )
    index = QueryIndex(collection, measure="cosine", threshold=0.6, seed=1)
    loaded = QueryIndex.load(index.save(tmp_path / "ids"))
    assert list(loaded._collection.ids) == [f"doc-{i}" for i in range(10)]


def test_rejects_foreign_and_future_archives(tmp_path, corpus):
    foreign = tmp_path / "foreign.npz"
    np.savez(foreign, something=np.arange(3))
    with pytest.raises(ValueError, match="not a QueryIndex snapshot"):
        load_query_index(foreign)

    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=0)
    path = index.save(tmp_path / "current")
    with np.load(path, allow_pickle=False) as archive:
        contents = {name: archive[name] for name in archive.files}
    assert str(contents["format"][()]) == SNAPSHOT_FORMAT
    contents["version"] = np.array(SNAPSHOT_VERSION + 1, dtype=np.int64)
    future = tmp_path / "future.npz"
    np.savez(future, **contents)
    with pytest.raises(ValueError, match="version"):
        load_query_index(future)


def test_snapshot_is_pickle_free(tmp_path, corpus):
    """Every payload loads under ``allow_pickle=False`` and meta is plain JSON."""
    index = QueryIndex(corpus, measure="jaccard", threshold=0.55, seed=8)
    path = index.save(tmp_path / "no-pickle")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"][()]))
        for name in archive.files:
            archive[name]  # raises if any array would need pickling
    assert meta["measure"] == "jaccard"
    assert meta["store_kind"] == "ints"
    assert meta["family"] == "minhash"


def test_save_rejects_non_index():
    with pytest.raises(TypeError, match="QueryIndex"):
        save_query_index(object(), "nowhere")
