"""Snapshot round-trip tests for the serving layer.

The contract under test (see ``repro/serving/snapshot.py``): a loaded index
is indistinguishable from the instance that saved it — same query answers bit
for bit, same counters, and the *same future*: hash functions drawn after the
round trip match hash functions the original would have drawn.
"""

import json

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_query_index,
    save_query_index,
)
from repro.serving.storage import default_layout


def _corpus(seed: int, n: int = 60, features: int = 120):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.15)
    dense[: n // 4] = dense[n // 2 : n // 2 + n // 4]  # planted near-duplicates
    return dense


@pytest.fixture(scope="module")
def corpus():
    return _corpus(101)


@pytest.fixture(scope="module")
def queries(corpus):
    return corpus[:7] + 0.0


@pytest.mark.parametrize(
    "measure,verification",
    [
        ("cosine", "bayes"),
        ("cosine", "exact"),
        ("jaccard", "bayes"),
        ("jaccard", "exact"),
        ("binary_cosine", "bayes"),
    ],
)
def test_round_trip_is_bit_identical(tmp_path, corpus, queries, measure, verification):
    index = QueryIndex(
        corpus, measure=measure, threshold=0.6, verification=verification, seed=9
    )
    before_query = index.query_many(queries, threshold=0.5)
    before_topk = index.top_k_many(queries, k=5)

    path = index.save(tmp_path / f"{measure}-{verification}")
    # The default layout follows REPRO_STORAGE, so under the CI storage
    # matrix this round-trips the flat layout instead of the .npz archive.
    assert path.suffix == (".flat" if default_layout() == "flat" else ".npz")
    loaded = QueryIndex.load(path)

    assert loaded.n_indexed == index.n_indexed
    assert loaded.n_signatures == index.n_signatures
    assert loaded.threshold == index.threshold
    assert loaded.verification == verification
    # ScoredPair equality is exact (ints and the float similarity), so these
    # assertions enforce bit-identity of every estimate.
    assert loaded.query_many(queries, threshold=0.5) == before_query
    assert loaded.top_k_many(queries, k=5) == before_topk


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_rng_stream_resumes_after_load(tmp_path, corpus, queries, measure):
    """Hashes drawn *after* the round trip match hashes drawn without it.

    The index is saved before any Bayesian query runs, so the signature store
    holds only the banding hashes; the first query then forces both instances
    to draw ~2000 more hash functions.  Identical answers prove the RNG
    stream position (not just the drawn state) survived serialisation.
    """
    index = QueryIndex(corpus, measure=measure, threshold=0.6, seed=4)
    path = save_query_index(index, tmp_path / "pre-query")
    loaded = load_query_index(path)
    assert loaded.query_many(queries, threshold=0.5) == index.query_many(
        queries, threshold=0.5
    )


def test_round_trip_preserves_updates_and_counters(tmp_path, corpus, queries):
    index = QueryIndex(
        corpus, measure="cosine", threshold=0.6, seed=2, staleness_budget=0.9
    )
    index.insert(_corpus(55, n=12))
    index.delete([0, 3, 5])
    expected = index.query_many(queries, threshold=0.5)

    loaded = QueryIndex.load(index.save(tmp_path / "updated"))
    assert loaded.n_indexed == index.n_indexed
    assert loaded.n_deleted == 3
    assert loaded.n_stale_postings == index.n_stale_postings
    assert loaded.staleness_budget == index.staleness_budget
    assert loaded.query_many(queries, threshold=0.5) == expected
    # The loaded index keeps evolving: further updates behave identically.
    extra = _corpus(56, n=6)
    assert np.array_equal(index.insert(extra), loaded.insert(extra))
    assert loaded.query_many(queries, threshold=0.5) == index.query_many(
        queries, threshold=0.5
    )


def test_round_trip_preserves_external_ids(tmp_path):
    from repro.similarity.vectors import VectorCollection

    collection = VectorCollection.from_dense(
        _corpus(77, n=10), ids=[f"doc-{i}" for i in range(10)]
    )
    index = QueryIndex(collection, measure="cosine", threshold=0.6, seed=1)
    loaded = QueryIndex.load(index.save(tmp_path / "ids"))
    assert list(loaded.ids) == [f"doc-{i}" for i in range(10)]


def test_rejects_foreign_and_future_archives(tmp_path, corpus):
    foreign = tmp_path / "foreign.npz"
    np.savez(foreign, something=np.arange(3))
    with pytest.raises(ValueError, match="not a QueryIndex snapshot"):
        load_query_index(foreign)

    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=0)
    path = index.save(tmp_path / "current.npz")
    with np.load(path, allow_pickle=False) as archive:
        contents = {name: archive[name] for name in archive.files}
    assert str(contents["format"][()]) == SNAPSHOT_FORMAT
    contents["version"] = np.array(SNAPSHOT_VERSION + 1, dtype=np.int64)
    future = tmp_path / "future.npz"
    np.savez(future, **contents)
    with pytest.raises(ValueError, match="version"):
        load_query_index(future)


def test_snapshot_is_pickle_free(tmp_path, corpus):
    """Every payload loads under ``allow_pickle=False`` and meta is plain JSON."""
    index = QueryIndex(corpus, measure="jaccard", threshold=0.55, seed=8)
    path = index.save(tmp_path / "no-pickle.npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"][()]))
        for name in archive.files:
            archive[name]  # raises if any array would need pickling
    assert meta["measure"] == "jaccard"
    assert meta["store_kind"] == "ints"
    assert meta["family"] == "minhash"


def test_save_rejects_non_index():
    with pytest.raises(TypeError, match="QueryIndex"):
        save_query_index(object(), "nowhere")


def test_multi_segment_round_trip_preserves_segmentation(tmp_path, corpus, queries):
    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=6)
    index.insert(_corpus(60, n=9))
    index.insert(_corpus(61, n=5))
    assert index.n_segments == 3
    expected = index.query_many(queries, threshold=0.5)

    loaded = QueryIndex.load(index.save(tmp_path / "multi"))
    assert loaded.n_segments == 3
    assert loaded.query_many(queries, threshold=0.5) == expected
    # Both instances keep evolving identically after the round trip.
    extra = _corpus(62, n=4)
    assert np.array_equal(index.insert(extra), loaded.insert(extra))
    assert loaded.query_many(queries, threshold=0.5) == index.query_many(
        queries, threshold=0.5
    )


@pytest.mark.parametrize("verification", ["bayes", "exact"])
def test_compacted_snapshot_drops_tombstones_and_answers_identically(
    tmp_path, corpus, queries, verification
):
    """The compaction contract (see ``docs/serving.md``).

    A compacted snapshot physically contains no tombstoned rows, loads as a
    single segment with nothing deleted, and answers every query identically
    to the uncompacted index (whose tombstones are filtered at query time) —
    compared by ``(external id, similarity)``, since compaction renumbers
    the surviving rows while preserving ids and relative order.
    """
    index = QueryIndex(
        corpus, measure="cosine", threshold=0.6, verification=verification, seed=12,
        staleness_budget=1.0,
    )
    index.insert(_corpus(63, n=14))
    victims = [0, 2, 7, 61, 65, 70]
    index.delete(victims)
    expected = index.query_many(queries, threshold=0.5)
    expected_topk = index.top_k_many(queries, k=5)

    path = index.save(tmp_path / "compacted.npz", compact=True)
    # The archive holds exactly the alive rows, in one segment, none deleted.
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"][()]))
        assert meta["compacted"] is True
        assert meta["n_segments"] == 1
        assert int(archive["seg0_collection_shape"][0]) == index.n_alive
        assert archive["seg0_store"].shape[0] == index.n_alive
        assert not archive["deleted"].any()

    loaded = QueryIndex.load(path)
    assert loaded.n_segments == 1
    assert loaded.n_indexed == index.n_alive
    assert loaded.n_deleted == 0
    assert loaded.n_stale_postings == 0

    def by_id(instance, results):
        ids = instance.ids
        return [
            [(ids[pair.j], pair.similarity) for pair in hits] for hits in results
        ]

    assert by_id(loaded, loaded.query_many(queries, threshold=0.5)) == by_id(
        index, expected
    )
    assert by_id(loaded, loaded.top_k_many(queries, k=5)) == by_id(
        index, expected_topk
    )
    # The in-memory index was not modified by the compacting save.
    assert index.n_deleted == len(victims)
    assert index.query_many(queries, threshold=0.5) == expected


def test_compacted_snapshot_keeps_evolving(tmp_path, corpus, queries):
    """Insert/delete on a loaded compacted index behaves like a fresh build."""
    index = QueryIndex(corpus, measure="jaccard", threshold=0.5, seed=4)
    index.delete([1, 3])
    loaded = QueryIndex.load(index.save(tmp_path / "compact-evolve", compact=True))

    fresh = QueryIndex(loaded.as_collection(), measure="jaccard", threshold=0.5, seed=4)
    extra = _corpus(64, n=6)
    assert np.array_equal(loaded.insert(extra), fresh.insert(extra))
    assert loaded.query_many(queries, threshold=0.45) == fresh.query_many(
        queries, threshold=0.45
    )


def test_default_insert_ids_stay_unique_after_compacted_load(tmp_path, corpus):
    """Default ids continue past the surviving ids, never colliding with them."""
    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=3)
    index.delete([1, 3])
    loaded = QueryIndex.load(index.save(tmp_path / "renumbered", compact=True))
    assert loaded.n_indexed == len(corpus) - 2

    inserted = loaded.insert(_corpus(70, n=4))
    assert len(inserted) == 4
    ids = loaded.ids
    assert len(np.unique(ids)) == len(ids)
    # The fresh ids continue after the largest surviving id (59), not from
    # the (smaller) row count the compaction left behind.
    assert ids[-4:].tolist() == [60, 61, 62, 63]


def test_compacting_save_does_not_mutate_the_live_index(tmp_path, corpus, queries):
    """save(compact=True) widens only the written copies of segment stores."""
    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=8)
    # Widen the first segment (as long-surviving verification rounds would),
    # then append a narrow fresh segment.
    index._segments.segments[0].ensure_hashes(2048)
    index.insert(_corpus(71, n=10))
    widths_before = [seg.store.n_hashes for seg in index._segments.segments]
    assert widths_before[0] > widths_before[-1]

    index.save(tmp_path / "no-mutate", compact=True)
    widths_after = [seg.store.n_hashes for seg in index._segments.segments]
    assert widths_after == widths_before


def test_legacy_v1_archive_loads_as_single_segment(tmp_path, corpus, queries):
    """The v1 monolithic layout stays readable (loaded as one segment)."""
    index = QueryIndex(corpus, measure="cosine", threshold=0.6, seed=9)
    expected = index.query_many(queries, threshold=0.5)
    path = index.save(tmp_path / "v2.npz")
    with np.load(path, allow_pickle=False) as archive:
        contents = {name: archive[name] for name in archive.files}
    meta = json.loads(str(contents["meta"][()]))

    # Rewrite the v2 single-segment archive in the v1 monolithic layout.
    legacy_meta = dict(meta)
    legacy_meta["store_n_hashes"] = meta["store_n_hashes"][0]
    for key in ("n_features", "n_segments", "compacted"):
        legacy_meta.pop(key)
    legacy = {
        name: value
        for name, value in contents.items()
        if not name.startswith("seg0_") and name not in ("meta", "version")
    }
    for name, value in contents.items():
        if name.startswith("seg0_collection_"):
            legacy[name.replace("seg0_", "")] = value
    legacy["store_matrix"] = contents["seg0_store"]
    legacy["meta"] = np.array(json.dumps(legacy_meta))
    legacy["version"] = np.array(1, dtype=np.int64)
    legacy_path = tmp_path / "v1.npz"
    np.savez(legacy_path, **legacy)

    loaded = load_query_index(legacy_path)
    assert loaded.n_segments == 1
    assert loaded.query_many(queries, threshold=0.5) == expected
