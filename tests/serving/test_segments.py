"""Unit tests for the segmented collection store.

The contract under test (see ``repro/serving/segments.py``): a
:class:`SegmentedCollection` is observationally equivalent to the monolithic
concatenation of its segments — every routed kernel (band keys, cross-store
match counts, exact cross-similarities) returns the same values a single
merged store/collection would, bit for bit, because all of them are
row-local.
"""

import numpy as np
import pytest

from repro.hashing.base import get_hash_family
from repro.serving.segments import SegmentedCollection
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection


def _dense(seed: int, n: int, features: int = 60) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, features)) * (rng.random((n, features)) < 0.25)


def _segmented(measure_name: str, parts, seed: int = 0, n_hashes: int = 64):
    measure = get_measure(measure_name)
    store = SegmentedCollection(measure, parts[0].shape[1], seed=seed)
    for part in parts:
        store.append(VectorCollection.from_dense(part), n_hashes)
    return measure, store


def _monolithic_family(measure, matrix, seed: int = 0):
    prepared = measure.prepare(VectorCollection.from_dense(matrix))
    return prepared, get_hash_family(measure.lsh_family, prepared, seed=seed)


class TestLayout:
    def test_offsets_rows_and_ids(self):
        parts = [_dense(0, 10), _dense(1, 4), _dense(2, 7)]
        _, store = _segmented("cosine", parts)
        assert store.n_segments == 3
        assert store.n_vectors == 21
        assert [seg.offset for seg in store.segments] == [0, 10, 14]
        assert store.segments[1].rows.tolist() == list(range(10, 14))
        # Default ids are each segment's local defaults.
        assert store.segments[2].ids.tolist() == list(range(7))

    def test_segment_of_routes_and_validates(self):
        _, store = _segmented("cosine", [_dense(0, 5), _dense(1, 5)])
        assert store.segment_of([0, 4, 5, 9]).tolist() == [0, 0, 1, 1]
        with pytest.raises(IndexError):
            store.segment_of([10])
        with pytest.raises(IndexError):
            store.segment_of([-1])

    def test_row_nnz_matches_monolithic(self):
        parts = [_dense(3, 8), _dense(4, 9)]
        measure, store = _segmented("jaccard", parts)
        merged = measure.prepare(VectorCollection.from_dense(np.vstack(parts)))
        assert np.array_equal(store.row_nnz, merged.row_nnz)

    def test_feature_mismatch_rejected(self):
        _, store = _segmented("cosine", [_dense(0, 5)])
        with pytest.raises(ValueError, match="features"):
            store.append(VectorCollection.from_dense(_dense(1, 3, features=9)), 64)

    def test_ids_length_validated(self):
        _, store = _segmented("cosine", [_dense(0, 5)])
        with pytest.raises(ValueError, match="ids"):
            store.append(VectorCollection.from_dense(_dense(1, 3)), 64, ids=[1, 2])

    def test_to_collection_round_trip(self):
        parts = [_dense(5, 6), _dense(6, 3)]
        _, store = _segmented("cosine", parts)
        merged = store.to_collection()
        assert merged.n_vectors == 9
        assert np.allclose(merged.matrix.toarray(), np.vstack(parts))


@pytest.mark.parametrize("measure_name", ["cosine", "jaccard"])
class TestKernelEquivalence:
    """Segment-routed kernels equal the monolithic kernels bit for bit."""

    def _setup(self, measure_name):
        parts = [_dense(10, 12), _dense(11, 5), _dense(12, 9)]
        merged = np.vstack(parts)
        measure, segmented = _segmented(measure_name, parts, seed=7, n_hashes=128)
        prepared, family = _monolithic_family(measure, merged, seed=7)
        mono_store = family.signatures(128)
        return measure, segmented, prepared, mono_store

    def test_band_keys_match(self, measure_name):
        _, segmented, _, mono_store = self._setup(measure_name)
        rows = np.array([0, 3, 12, 13, 16, 17, 25, 7], dtype=np.int64)
        for band in range(4):
            expected = mono_store.band_keys_many(rows, band, 32)
            actual = segmented.band_keys_many(rows, band, 32)
            assert actual.dtype == expected.dtype
            assert np.array_equal(actual, expected)

    def test_cross_match_counts_match(self, measure_name):
        measure, segmented, _, mono_store = self._setup(measure_name)
        queries = _dense(13, 6)
        query_prepared = measure.prepare(VectorCollection.from_dense(queries))
        query_family = segmented.family.clone_for(query_prepared)
        query_store = query_family.signatures(128)
        rows = np.array([1, 5, 13, 15, 20, 25, 24, 2], dtype=np.int64)
        query_rows = np.array([0, 1, 2, 3, 4, 5, 0, 1], dtype=np.int64)
        for start, end in [(0, 32), (32, 96), (0, 128)]:
            expected = query_store.count_matches_cross(
                query_rows, mono_store, rows, start, end
            )
            actual = segmented.count_matches_cross(
                query_store, query_rows, rows, start, end
            )
            assert np.array_equal(actual, expected)

    def test_cross_similarities_match(self, measure_name):
        from repro.verification.base import cross_similarities_for_pairs

        measure, segmented, prepared, _ = self._setup(measure_name)
        queries = _dense(14, 5)
        query_prepared = measure.prepare(VectorCollection.from_dense(queries))
        rows = np.array([0, 11, 12, 17, 25, 3], dtype=np.int64)
        query_rows = np.array([0, 1, 2, 3, 4, 0], dtype=np.int64)
        expected = cross_similarities_for_pairs(
            query_prepared, prepared, measure, query_rows, rows
        )
        actual = segmented.cross_similarities(query_prepared, query_rows, rows)
        assert np.array_equal(actual, expected)


class TestLazyExtension:
    def test_segments_extend_independently(self):
        _, store = _segmented("cosine", [_dense(20, 6), _dense(21, 6)], n_hashes=64)
        widths = [seg.store.n_hashes for seg in store.segments]
        # Extend only the second segment through a routed count.
        query = _dense(22, 1)
        measure = get_measure("cosine")
        query_prepared = measure.prepare(VectorCollection.from_dense(query))
        query_family = store.family.clone_for(query_prepared)
        query_store = query_family.signatures(512)
        store.count_matches_cross(
            query_store, np.array([0]), np.array([8]), 0, 512
        )
        assert store.segments[1].store.n_hashes >= 512
        assert store.segments[0].store.n_hashes == widths[0]
        # ensure_hashes catches every segment up.
        store.ensure_hashes(512)
        assert store.segments[0].store.n_hashes >= 512
        assert store.max_store_hashes == max(
            seg.store.n_hashes for seg in store.segments
        )

    def test_late_extension_matches_eager_hashing(self):
        """Hashes drawn long after sealing equal an eagerly hashed store's."""
        parts = [_dense(30, 7), _dense(31, 8)]
        measure, lazy = _segmented("jaccard", parts, seed=3, n_hashes=32)
        _, eager = _segmented("jaccard", parts, seed=3, n_hashes=256)
        lazy.ensure_hashes(256)
        for seg_lazy, seg_eager in zip(lazy.segments, eager.segments):
            assert np.array_equal(
                seg_lazy.store.values[:, :256], seg_eager.store.values[:, :256]
            )
