"""Unit tests for repro.similarity.vectors.VectorCollection."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection


class TestConstruction:
    def test_from_dense(self):
        collection = VectorCollection.from_dense([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
        assert collection.n_vectors == 2
        assert collection.n_features == 3
        assert collection.nnz == 3

    def test_from_sparse_matrix(self):
        matrix = sp.random(20, 30, density=0.1, random_state=0, format="csr")
        matrix.data = np.abs(matrix.data)
        collection = VectorCollection(matrix)
        assert collection.n_vectors == 20
        assert collection.n_features == 30

    def test_from_sets(self):
        collection = VectorCollection.from_sets([{0, 2}, {1}, set()], n_features=4)
        assert collection.n_vectors == 3
        assert collection.n_features == 4
        assert collection.row_set(0) == frozenset({0, 2})
        assert collection.row_set(2) == frozenset()
        assert collection.is_binary

    def test_from_sets_infers_feature_count(self):
        collection = VectorCollection.from_sets([{0, 5}, {3}])
        assert collection.n_features == 6

    def test_from_sets_rejects_out_of_range_token(self):
        with pytest.raises(ValueError, match="out of range"):
            VectorCollection.from_sets([{0, 9}], n_features=5)

    def test_from_sets_rejects_negative_token(self):
        with pytest.raises(ValueError, match="non-negative"):
            VectorCollection.from_sets([{-1, 2}])

    def test_from_dicts(self):
        collection = VectorCollection.from_dicts([{0: 1.5, 3: 2.0}, {1: 0.5}], n_features=5)
        assert collection.n_vectors == 2
        assert collection.row_values(0).tolist() == [1.5, 2.0]
        assert not collection.is_binary

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            VectorCollection.from_dense([[1.0, -0.5]])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            VectorCollection.from_dense([1.0, 2.0, 3.0])

    def test_ids_default_and_custom(self):
        collection = VectorCollection.from_dense(np.ones((3, 2)))
        assert collection.ids.tolist() == [0, 1, 2]
        named = VectorCollection.from_dense(np.ones((2, 2)), ids=["a", "b"])
        assert list(named.ids) == ["a", "b"]

    def test_ids_length_mismatch(self):
        with pytest.raises(ValueError, match="ids has length"):
            VectorCollection.from_dense(np.ones((3, 2)), ids=["only-one"])

    def test_explicit_zeros_are_dropped(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        collection = VectorCollection(matrix)
        assert collection.nnz == 1
        assert collection.row_nnz.tolist() == [1, 0]


class TestStatistics:
    def test_norms(self, tiny_collection):
        assert tiny_collection.norms[0] == pytest.approx(np.sqrt(3.0))
        assert tiny_collection.norms[2] == pytest.approx(np.sqrt(5.0))
        assert tiny_collection.norms[5] == 0.0

    def test_row_nnz(self, tiny_collection):
        assert tiny_collection.row_nnz.tolist() == [3, 4, 2, 3, 1, 0]

    def test_max_weights(self, tiny_collection):
        assert tiny_collection.max_weights[2] == 2.0
        assert tiny_collection.max_weights[5] == 0.0

    def test_average_length(self, tiny_collection):
        assert tiny_collection.average_length == pytest.approx((3 + 4 + 2 + 3 + 1 + 0) / 6)

    def test_average_length_empty_collection(self):
        collection = VectorCollection.from_dense(np.zeros((0, 4)))
        assert collection.average_length == 0.0

    def test_len_and_repr(self, tiny_collection):
        assert len(tiny_collection) == 6
        assert "n_vectors=6" in repr(tiny_collection)


class TestRowAccess:
    def test_row_features_sorted(self, tiny_collection):
        features = tiny_collection.row_features(1)
        assert features.tolist() == sorted(features.tolist())

    def test_row_returns_sparse_row(self, tiny_collection):
        row = tiny_collection.row(0)
        assert row.shape == (1, 8)
        assert row.nnz == 3

    def test_subset_preserves_rows(self, tiny_collection):
        subset = tiny_collection.subset([1, 3])
        assert subset.n_vectors == 2
        assert subset.row_set(0) == tiny_collection.row_set(1)
        assert subset.row_set(1) == tiny_collection.row_set(3)
        assert subset.ids.tolist() == [1, 3]


class TestDerivedViews:
    def test_binarized_sets_all_weights_to_one(self, tiny_collection):
        binary = tiny_collection.binarized()
        assert binary.is_binary
        assert binary.row_nnz.tolist() == tiny_collection.row_nnz.tolist()
        # weighted collection untouched
        assert tiny_collection.max_weights[2] == 2.0

    def test_binarized_is_cached_and_idempotent(self, tiny_collection):
        first = tiny_collection.binarized()
        assert tiny_collection.binarized() is first
        assert first.binarized() is first

    def test_normalized_rows_have_unit_norm(self, tiny_collection):
        normalized = tiny_collection.normalized()
        norms = normalized.norms
        nonzero = tiny_collection.row_nnz > 0
        np.testing.assert_allclose(norms[nonzero], 1.0, rtol=1e-12)
        assert norms[~nonzero].tolist() == [0.0]

    def test_normalized_is_cached(self, tiny_collection):
        assert tiny_collection.normalized() is tiny_collection.normalized()
