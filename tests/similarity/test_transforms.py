"""Unit tests for the dataset pre-processing transforms."""

import numpy as np
import pytest

from repro.similarity.transforms import (
    binarize,
    document_frequencies,
    l2_normalize,
    tfidf_weighting,
)
from repro.similarity.vectors import VectorCollection


@pytest.fixture()
def count_collection():
    return VectorCollection.from_dicts(
        [
            {0: 2.0, 1: 1.0},
            {0: 1.0, 2: 3.0},
            {0: 4.0},
        ],
        n_features=4,
    )


class TestDocumentFrequencies:
    def test_counts_presence_not_weight(self, count_collection):
        assert document_frequencies(count_collection).tolist() == [3, 1, 1, 0]


class TestTfidf:
    def test_shape_and_nonnegativity(self, count_collection):
        weighted = tfidf_weighting(count_collection)
        assert weighted.n_vectors == count_collection.n_vectors
        assert weighted.n_features == count_collection.n_features
        assert weighted.matrix.data.min() > 0

    def test_support_is_preserved(self, count_collection):
        weighted = tfidf_weighting(count_collection)
        for row in range(count_collection.n_vectors):
            assert set(weighted.row_features(row)) == set(count_collection.row_features(row))

    def test_rare_terms_weighted_up(self, count_collection):
        weighted = tfidf_weighting(count_collection)
        # Feature 0 occurs in all rows, feature 2 in one: for row 1 (tf 1 vs 3),
        # the rare feature should dominate even more after weighting.
        row = dict(zip(weighted.row_features(1), weighted.row_values(1)))
        assert row[2] > row[0]

    def test_smooth_vs_unsmooth(self, count_collection):
        smooth = tfidf_weighting(count_collection, smooth=True)
        rough = tfidf_weighting(count_collection, smooth=False)
        assert smooth.nnz == rough.nnz
        assert not np.allclose(smooth.matrix.data, rough.matrix.data)

    def test_sublinear_tf_reduces_large_counts(self, count_collection):
        plain = tfidf_weighting(count_collection, sublinear_tf=False)
        sublinear = tfidf_weighting(count_collection, sublinear_tf=True)
        # row 2 has tf=4 on feature 0; sublinear weighting shrinks it
        plain_value = plain.row_values(2)[0]
        sub_value = sublinear.row_values(2)[0]
        assert sub_value < plain_value

    def test_does_not_mutate_input(self, count_collection):
        before = count_collection.matrix.copy()
        tfidf_weighting(count_collection)
        assert np.array_equal(before.toarray(), count_collection.matrix.toarray())


class TestSimpleTransforms:
    def test_binarize(self, count_collection):
        assert binarize(count_collection).is_binary

    def test_l2_normalize(self, count_collection):
        normalized = l2_normalize(count_collection)
        np.testing.assert_allclose(normalized.norms, 1.0)

    def test_l2_normalize_keeps_empty_rows(self):
        collection = VectorCollection.from_dicts([{0: 1.0}, {}], n_features=2)
        normalized = l2_normalize(collection)
        assert normalized.row_nnz.tolist() == [1, 0]
