"""Unit tests for the similarity measures."""

import numpy as np
import pytest

from repro.similarity.measures import (
    BinaryCosineSimilarity,
    CosineSimilarity,
    JaccardSimilarity,
    binary_cosine_similarity,
    cosine_similarity,
    get_measure,
    jaccard_similarity,
)
from repro.similarity.vectors import VectorCollection


class TestCosine:
    def test_identical_vectors(self, tiny_collection):
        assert cosine_similarity(tiny_collection, 0, 0) == pytest.approx(1.0)

    def test_known_value(self, tiny_collection):
        # rows 0 and 1: dot = 3, norms sqrt(3) and 2 -> 3 / (2 sqrt(3)) = sqrt(3)/2
        assert cosine_similarity(tiny_collection, 0, 1) == pytest.approx(np.sqrt(3) / 2)

    def test_disjoint_vectors(self, tiny_collection):
        assert cosine_similarity(tiny_collection, 0, 2) == 0.0

    def test_empty_vector(self, tiny_collection):
        assert cosine_similarity(tiny_collection, 0, 5) == 0.0

    def test_symmetry(self, tiny_collection):
        assert cosine_similarity(tiny_collection, 1, 3) == cosine_similarity(tiny_collection, 3, 1)

    def test_scale_invariance(self):
        base = VectorCollection.from_dicts([{0: 1.0, 1: 2.0}, {0: 3.0, 1: 6.0}], n_features=2)
        assert cosine_similarity(base, 0, 1) == pytest.approx(1.0)


class TestJaccard:
    def test_known_value(self, tiny_collection):
        # supports {0,1,2} and {0,1,2,3}: intersection 3, union 4
        assert jaccard_similarity(tiny_collection, 0, 1) == pytest.approx(0.75)

    def test_identical_supports(self, tiny_collection):
        assert jaccard_similarity(tiny_collection, 0, 0) == 1.0

    def test_disjoint_supports(self, tiny_collection):
        assert jaccard_similarity(tiny_collection, 0, 2) == 0.0

    def test_empty_vs_empty(self, tiny_collection):
        assert jaccard_similarity(tiny_collection, 5, 5) == 0.0

    def test_ignores_weights(self):
        weighted = VectorCollection.from_dicts([{0: 5.0, 1: 0.1}, {0: 1.0, 2: 9.0}], n_features=3)
        assert jaccard_similarity(weighted, 0, 1) == pytest.approx(1.0 / 3.0)


class TestBinaryCosine:
    def test_known_value(self, tiny_collection):
        # supports sizes 3 and 4, intersection 3 -> 3 / sqrt(12)
        expected = 3 / np.sqrt(12)
        assert binary_cosine_similarity(tiny_collection, 0, 1) == pytest.approx(expected)

    def test_empty_vector(self, tiny_collection):
        assert binary_cosine_similarity(tiny_collection, 0, 5) == 0.0

    def test_matches_cosine_on_binary_data(self, binary_sets_collection):
        prepared = binary_sets_collection
        for i, j in [(0, 1), (3, 10), (5, 50)]:
            assert binary_cosine_similarity(prepared, i, j) == pytest.approx(
                cosine_similarity(prepared, i, j)
            )


class TestMeasureObjects:
    @pytest.mark.parametrize(
        "name, cls",
        [("cosine", CosineSimilarity), ("jaccard", JaccardSimilarity), ("binary_cosine", BinaryCosineSimilarity)],
    )
    def test_get_measure_by_name(self, name, cls):
        assert isinstance(get_measure(name), cls)

    def test_get_measure_passthrough(self):
        measure = CosineSimilarity()
        assert get_measure(measure) is measure

    def test_get_measure_unknown(self):
        with pytest.raises(ValueError, match="unknown similarity measure"):
            get_measure("euclidean")

    def test_lsh_family_assignment(self):
        assert get_measure("cosine").lsh_family == "simhash"
        assert get_measure("binary_cosine").lsh_family == "simhash"
        assert get_measure("jaccard").lsh_family == "minhash"

    def test_prepare_cosine_normalises(self, tiny_collection):
        prepared = CosineSimilarity().prepare(tiny_collection)
        nonzero = prepared.row_nnz > 0
        np.testing.assert_allclose(prepared.norms[nonzero], 1.0)

    def test_prepare_jaccard_binarises(self, tiny_collection):
        prepared = JaccardSimilarity().prepare(tiny_collection)
        assert prepared.is_binary

    def test_pairwise_matrix_symmetric_and_bounded(self, tiny_collection):
        matrix = CosineSimilarity().pairwise_matrix(tiny_collection)
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0 + 1e-12

    def test_pairwise_matrix_diagonal(self, tiny_collection):
        matrix = JaccardSimilarity().pairwise_matrix(tiny_collection)
        # empty row 5 has 0 on the diagonal, others 1
        assert matrix[5, 5] == 0.0
        assert matrix[0, 0] == 1.0

    def test_exact_matches_scalar_functions(self, sparse_text_collection):
        cosine = CosineSimilarity()
        prepared = cosine.prepare(sparse_text_collection)
        assert cosine.exact(prepared, 0, 1) == pytest.approx(
            cosine_similarity(prepared, 0, 1)
        )
