"""Unit tests for the exact ground-truth computation."""

import numpy as np
import pytest

from repro.evaluation.ground_truth import exact_all_pairs
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection


class TestExactAllPairs:
    def test_matches_pairwise_matrix(self, tiny_collection):
        for measure_name in ("cosine", "jaccard", "binary_cosine"):
            measure = get_measure(measure_name)
            matrix = measure.pairwise_matrix(tiny_collection)
            threshold = 0.5
            expected = {
                (i, j)
                for i in range(len(tiny_collection))
                for j in range(i + 1, len(tiny_collection))
                if matrix[i, j] > threshold
            }
            truth = exact_all_pairs(tiny_collection, threshold, measure_name)
            assert truth.pair_set() == expected

    def test_similarities_are_exact(self, sparse_text_collection):
        truth = exact_all_pairs(sparse_text_collection, 0.6, "cosine")
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        for (i, j), value in list(truth.similarity_map().items())[:50]:
            assert value == pytest.approx(measure.exact(prepared, i, j), abs=1e-9)
            assert value > 0.6

    def test_block_size_invariance(self, sparse_text_collection):
        small_blocks = exact_all_pairs(sparse_text_collection, 0.7, "cosine", block_size=17)
        large_blocks = exact_all_pairs(sparse_text_collection, 0.7, "cosine", block_size=4096)
        assert small_blocks.pair_set() == large_blocks.pair_set()

    def test_higher_threshold_gives_subset(self, sparse_text_collection):
        low = exact_all_pairs(sparse_text_collection, 0.5, "cosine")
        high = exact_all_pairs(sparse_text_collection, 0.8, "cosine")
        assert high.pair_set() <= low.pair_set()

    def test_accepts_dataset_and_raw_data(self, sparse_text_dataset):
        from_dataset = exact_all_pairs(sparse_text_dataset, 0.7, "cosine")
        from_collection = exact_all_pairs(sparse_text_dataset.collection, 0.7, "cosine")
        assert from_dataset.pair_set() == from_collection.pair_set()

    def test_empty_collection(self):
        collection = VectorCollection.from_dense(np.zeros((0, 4)))
        truth = exact_all_pairs(collection, 0.5, "cosine")
        assert len(truth) == 0

    def test_invalid_threshold(self, tiny_collection):
        with pytest.raises(ValueError):
            exact_all_pairs(tiny_collection, 0.0, "cosine")
