"""Unit tests for recall / precision / error statistics."""

import numpy as np
import pytest

from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import (
    ErrorStatistics,
    error_statistics,
    false_negative_rate,
    precision,
    recall,
)
from repro.search.results import SearchResult


def _truth(pairs_with_sims):
    left = np.array([pair[0] for pair in pairs_with_sims], dtype=np.int64)
    right = np.array([pair[1] for pair in pairs_with_sims], dtype=np.int64)
    sims = np.array([pair[2] for pair in pairs_with_sims], dtype=np.float64)
    return GroundTruth(left=left, right=right, similarities=sims, threshold=0.5, measure="cosine")


def _result(pairs_with_sims, method="test"):
    left = np.array([pair[0] for pair in pairs_with_sims], dtype=np.int64)
    right = np.array([pair[1] for pair in pairs_with_sims], dtype=np.int64)
    sims = np.array([pair[2] for pair in pairs_with_sims], dtype=np.float64)
    return SearchResult(
        left=left, right=right, similarities=sims, method=method, threshold=0.5, measure="cosine"
    )


class TestRecallPrecision:
    def test_perfect_recall(self):
        truth = _truth([(0, 1, 0.9), (2, 3, 0.8)])
        result = _result([(0, 1, 0.88), (2, 3, 0.81), (4, 5, 0.7)])
        assert recall(result, truth) == 1.0
        assert false_negative_rate(result, truth) == 0.0
        assert precision(result, truth) == pytest.approx(2 / 3)

    def test_partial_recall(self):
        truth = _truth([(0, 1, 0.9), (2, 3, 0.8), (4, 5, 0.7)])
        result = _result([(0, 1, 0.9)])
        assert recall(result, truth) == pytest.approx(1 / 3)
        assert false_negative_rate(result, truth) == pytest.approx(2 / 3)
        assert precision(result, truth) == 1.0

    def test_empty_truth_counts_as_full_recall(self):
        truth = _truth([])
        result = _result([(0, 1, 0.9)])
        assert recall(result, truth) == 1.0

    def test_empty_result_full_precision(self):
        truth = _truth([(0, 1, 0.9)])
        result = _result([])
        assert precision(result, truth) == 1.0
        assert recall(result, truth) == 0.0


class TestErrorStatistics:
    def test_against_ground_truth_map(self):
        truth = _truth([(0, 1, 0.90), (2, 3, 0.80), (4, 5, 0.60)])
        result = _result([(0, 1, 0.92), (2, 3, 0.70), (4, 5, 0.61)])
        stats = error_statistics(result, truth)
        assert stats.n_pairs == 3
        assert stats.mean_error == pytest.approx((0.02 + 0.10 + 0.01) / 3)
        assert stats.max_error == pytest.approx(0.10)
        assert stats.fraction_above == pytest.approx(1 / 3)
        assert stats.percent_above == pytest.approx(100 / 3)

    def test_pairs_missing_from_truth_are_skipped(self):
        truth = _truth([(0, 1, 0.9)])
        result = _result([(0, 1, 0.91), (7, 9, 0.8)])
        stats = error_statistics(result, truth)
        assert stats.n_pairs == 1

    def test_explicit_exact_map(self):
        result = _result([(0, 1, 0.5), (1, 2, 0.4)])
        stats = error_statistics(
            result, exact_similarities={(0, 1): 0.5, (1, 2): 0.5}, error_bound=0.05
        )
        assert stats.fraction_above == pytest.approx(0.5)

    def test_requires_some_reference(self):
        with pytest.raises(ValueError):
            error_statistics(_result([(0, 1, 0.5)]))

    def test_empty_result(self):
        stats = error_statistics(_result([]), _truth([(0, 1, 0.9)]))
        assert stats == ErrorStatistics(0, 0.0, 0.0, 0.0, 0.05)

    def test_custom_error_bound(self):
        truth = _truth([(0, 1, 0.9)])
        result = _result([(0, 1, 0.87)])
        loose = error_statistics(result, truth, error_bound=0.05)
        tight = error_statistics(result, truth, error_bound=0.01)
        assert loose.fraction_above == 0.0
        assert tight.fraction_above == 1.0
