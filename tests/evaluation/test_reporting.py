"""Unit tests for the plain-text reporting helpers."""

from repro.evaluation.reporting import format_series, format_table, format_value


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(0.0) == "0"
        assert format_value(float("inf")) == "timeout"
        assert format_value(float("nan")) == "-"
        assert "e" in format_value(123456.789)

    def test_strings_and_ints(self):
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 2.5]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert lines[1].startswith("=")
        assert "name" in lines[2]
        # all data lines are present
        assert any("long-name" in line for line in lines)

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_ragged_rows_tolerated(self):
        text = format_table(["a"], [["x", "extra"]])
        assert "extra" in text


class TestFormatSeries:
    def test_one_column_per_series(self):
        text = format_series(
            "threshold",
            [0.5, 0.7],
            {"lsh": [1.0, 2.0], "allpairs": [3.0, 4.0]},
            title="Timing",
        )
        assert "threshold" in text
        assert "lsh" in text and "allpairs" in text
        assert "0.7" in text

    def test_short_series_padded_with_dash(self):
        text = format_series("x", [1, 2, 3], {"y": [10]})
        assert text.count("-") > 0
