"""Unit tests for the timing harness."""

import pytest

from repro.evaluation.timing import TimedRun, time_pipeline


class TestTimedRun:
    def test_mean_time(self):
        run = TimedRun(pipeline="x", times=[1.0, 2.0, 3.0])
        assert run.mean_time == 2.0
        assert run.completed

    def test_empty_is_censored(self):
        run = TimedRun(pipeline="x")
        assert run.mean_time == float("inf")
        assert not run.completed


class TestTimePipeline:
    def test_single_run(self, sparse_text_dataset):
        run = time_pipeline(
            "lsh", sparse_text_dataset, measure="cosine", threshold=0.7, repeats=1, seed=3
        )
        assert run.pipeline == "lsh"
        assert len(run.times) == 1
        assert run.times[0] > 0
        assert run.result is not None
        assert not run.timed_out

    def test_repeats_use_different_seeds(self, sparse_text_dataset):
        run = time_pipeline(
            "lsh_bayeslsh", sparse_text_dataset, measure="cosine", threshold=0.7, repeats=2, seed=3
        )
        assert len(run.times) == 2

    def test_timeout_censors(self, sparse_text_dataset):
        run = time_pipeline(
            "lsh",
            sparse_text_dataset,
            measure="cosine",
            threshold=0.7,
            repeats=5,
            timeout=1e-9,
            seed=3,
        )
        assert run.timed_out

    def test_invalid_repeats(self, sparse_text_dataset):
        with pytest.raises(ValueError):
            time_pipeline("lsh", sparse_text_dataset, measure="cosine", threshold=0.7, repeats=0)

    def test_pipeline_kwargs_forwarded(self, sparse_text_dataset):
        run = time_pipeline(
            "lsh_bayeslsh",
            sparse_text_dataset,
            measure="cosine",
            threshold=0.7,
            repeats=1,
            seed=3,
            epsilon=0.01,
        )
        assert run.result is not None
