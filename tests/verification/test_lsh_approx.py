"""Unit tests for the fixed-budget LSH Approx verifier (Section 3 baseline)."""

import numpy as np
import pytest

from repro.candidates.base import CandidateSet
from repro.hashing.base import get_hash_family
from repro.verification.lsh_approx import DEFAULT_NUM_HASHES, LSHApproxVerifier


def _candidates(n):
    left, right = np.triu_indices(n, k=1)
    return CandidateSet(left=left.astype(np.int64), right=right.astype(np.int64))


class TestLSHApproxVerifier:
    def test_default_budget_matches_paper(self, sparse_text_collection):
        cosine = LSHApproxVerifier(sparse_text_collection, "cosine", 0.7)
        assert cosine.num_hashes == DEFAULT_NUM_HASHES["cosine"] == 2048
        jaccard = LSHApproxVerifier(sparse_text_collection, "jaccard", 0.5)
        assert jaccard.num_hashes == DEFAULT_NUM_HASHES["jaccard"] == 360

    def test_estimates_close_to_exact(self, sparse_text_collection):
        verifier = LSHApproxVerifier(sparse_text_collection, "cosine", 0.5, seed=7)
        output = verifier.verify(_candidates(60))
        for i, j, estimate in zip(output.left, output.right, output.estimates):
            exact = verifier.exact_similarity(int(i), int(j))
            assert abs(estimate - exact) < 0.08

    def test_output_pairs_have_estimate_above_threshold(self, sparse_text_collection):
        verifier = LSHApproxVerifier(sparse_text_collection, "cosine", 0.7, seed=7)
        output = verifier.verify(_candidates(60))
        assert all(estimate > 0.7 for estimate in output.estimates)

    def test_hash_comparisons_accounting(self, sparse_text_collection):
        verifier = LSHApproxVerifier(sparse_text_collection, "cosine", 0.7, num_hashes=256)
        candidates = _candidates(20)
        output = verifier.verify(candidates)
        assert output.hash_comparisons == 256 * len(candidates)
        assert output.exact_computations == 0

    def test_family_reuse(self, sparse_text_collection):
        prepared = sparse_text_collection.normalized()
        family = get_hash_family("simhash", prepared, seed=1)
        verifier = LSHApproxVerifier(
            sparse_text_collection, "cosine", 0.7, family=family, num_hashes=128
        )
        verifier.verify(_candidates(10))
        assert verifier.family is family
        assert family.n_hashes >= 128

    def test_jaccard_estimates(self, binary_sets_collection):
        verifier = LSHApproxVerifier(binary_sets_collection, "jaccard", 0.4, seed=3)
        output = verifier.verify(_candidates(50))
        for i, j, estimate in zip(output.left, output.right, output.estimates):
            exact = verifier.exact_similarity(int(i), int(j))
            assert abs(estimate - exact) < 0.12

    def test_invalid_num_hashes(self, sparse_text_collection):
        with pytest.raises(ValueError):
            LSHApproxVerifier(sparse_text_collection, "cosine", 0.7, num_hashes=0)

    def test_not_exact_output(self, sparse_text_collection):
        assert LSHApproxVerifier(sparse_text_collection, "cosine", 0.7).exact_output is False
