"""Unit tests for the BayesLSH / BayesLSH-Lite verifier adapters."""

import numpy as np
import pytest

from repro.candidates.base import CandidateSet
from repro.core.params import BayesLSHLiteParams, BayesLSHParams
from repro.core.posteriors import BetaPosterior
from repro.hashing.base import get_hash_family
from repro.verification.bayes import (
    DEFAULT_LITE_HASHES,
    BayesLSHLiteVerifier,
    BayesLSHVerifier,
)


def _candidates(n):
    left, right = np.triu_indices(n, k=1)
    return CandidateSet(left=left.astype(np.int64), right=right.astype(np.int64))


class TestBayesLSHVerifier:
    def test_default_params_match_paper(self, sparse_text_collection):
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.7)
        assert verifier.params.epsilon == 0.03
        assert verifier.params.delta == 0.05
        assert verifier.params.gamma == 0.03
        assert verifier.params.k == 32

    def test_explicit_params_object(self, sparse_text_collection):
        params = BayesLSHParams(threshold=0.5, epsilon=0.01)
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.5, params=params)
        assert verifier.params is params

    def test_params_threshold_reconciled(self, sparse_text_collection):
        params = BayesLSHParams(threshold=0.5)
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.8, params=params)
        assert verifier.params.threshold == 0.8

    def test_verify_produces_estimates(self, sparse_text_collection):
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.7, seed=2)
        output = verifier.verify(_candidates(60))
        assert output.n_candidates == len(_candidates(60))
        assert len(output.estimates) == output.n_output
        assert verifier.last_algorithm is not None

    def test_prunes_most_false_positives(self, sparse_text_collection):
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.8, seed=2)
        candidates = _candidates(100)
        output = verifier.verify(candidates)
        assert output.n_pruned > 0.8 * len(candidates)

    def test_jaccard_prior_fitting_used(self, binary_sets_collection):
        verifier = BayesLSHVerifier(
            binary_sets_collection, "jaccard", 0.5, seed=1, fit_prior=True, prior_sample_size=200
        )
        candidates = _candidates(60)
        posterior = verifier._posterior_for(candidates)
        assert isinstance(posterior, BetaPosterior)
        # fitted prior should deviate from the uniform fallback
        assert (posterior.prior.alpha, posterior.prior.beta) != (1.0, 1.0)

    def test_jaccard_prior_fitting_disabled(self, binary_sets_collection):
        verifier = BayesLSHVerifier(
            binary_sets_collection, "jaccard", 0.5, seed=1, fit_prior=False
        )
        posterior = verifier._posterior_for(_candidates(40))
        assert (posterior.prior.alpha, posterior.prior.beta) == (1.0, 1.0)

    def test_family_shared_with_generator(self, sparse_text_collection):
        prepared = sparse_text_collection.normalized()
        family = get_hash_family("simhash", prepared, seed=5)
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.7, family=family)
        assert verifier.family is family

    def test_empty_candidates(self, sparse_text_collection):
        verifier = BayesLSHVerifier(sparse_text_collection, "cosine", 0.7)
        output = verifier.verify(CandidateSet.from_pairs([]))
        assert output.n_output == 0


class TestBayesLSHLiteVerifier:
    def test_default_h_per_measure(self, sparse_text_collection, binary_sets_collection):
        cosine = BayesLSHLiteVerifier(sparse_text_collection, "cosine", 0.7)
        assert cosine.params.h == DEFAULT_LITE_HASHES["cosine"] == 128
        jaccard = BayesLSHLiteVerifier(binary_sets_collection, "jaccard", 0.5)
        assert jaccard.params.h == DEFAULT_LITE_HASHES["jaccard"] == 64

    def test_explicit_params(self, sparse_text_collection):
        params = BayesLSHLiteParams(threshold=0.7, h=64)
        verifier = BayesLSHLiteVerifier(sparse_text_collection, "cosine", 0.7, params=params)
        assert verifier.params is params

    def test_output_is_exact_and_above_threshold(self, sparse_text_collection):
        verifier = BayesLSHLiteVerifier(sparse_text_collection, "cosine", 0.7, seed=2)
        output = verifier.verify(_candidates(80))
        for i, j, value in zip(output.left, output.right, output.estimates):
            assert value == pytest.approx(verifier.exact_similarity(int(i), int(j)))
            assert value > 0.7

    def test_exact_output_flags(self, sparse_text_collection):
        assert BayesLSHLiteVerifier(sparse_text_collection, "cosine", 0.7).exact_output is True
        assert BayesLSHVerifier(sparse_text_collection, "cosine", 0.7).exact_output is False

    def test_exact_computations_less_than_candidates(self, sparse_text_collection):
        verifier = BayesLSHLiteVerifier(sparse_text_collection, "cosine", 0.8, seed=2)
        candidates = _candidates(100)
        output = verifier.verify(candidates)
        assert 0 < output.exact_computations < len(candidates)
