"""Unit tests for the exact verifier and the shared vectorised similarity helper."""

import numpy as np
import pytest

from repro.candidates.base import CandidateSet
from repro.similarity.measures import get_measure
from repro.verification.base import exact_similarities_for_pairs
from repro.verification.exact import ExactVerifier


class TestExactSimilaritiesForPairs:
    @pytest.mark.parametrize("measure_name", ["cosine", "jaccard", "binary_cosine"])
    def test_matches_scalar_computation(self, sparse_text_collection, measure_name):
        measure = get_measure(measure_name)
        prepared = measure.prepare(sparse_text_collection)
        rng = np.random.default_rng(3)
        left = rng.integers(0, prepared.n_vectors, size=50)
        right = rng.integers(0, prepared.n_vectors, size=50)
        batch = exact_similarities_for_pairs(prepared, measure, left, right)
        for value, i, j in zip(batch, left, right):
            assert value == pytest.approx(measure.exact(prepared, int(i), int(j)), abs=1e-9)

    def test_chunking_does_not_change_results(self, sparse_text_collection):
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        left = np.arange(0, 100)
        right = np.arange(1, 101)
        small_chunks = exact_similarities_for_pairs(prepared, measure, left, right, chunk_size=7)
        one_chunk = exact_similarities_for_pairs(prepared, measure, left, right, chunk_size=10_000)
        np.testing.assert_allclose(small_chunks, one_chunk)

    def test_empty_input(self, sparse_text_collection):
        measure = get_measure("cosine")
        prepared = measure.prepare(sparse_text_collection)
        assert len(exact_similarities_for_pairs(prepared, measure, [], [])) == 0


class TestExactVerifier:
    def test_keeps_only_pairs_above_threshold(self, sparse_text_collection):
        verifier = ExactVerifier(sparse_text_collection, "cosine", 0.7)
        left, right = np.triu_indices(80, k=1)
        candidates = CandidateSet(left=left.astype(np.int64), right=right.astype(np.int64))
        output = verifier.verify(candidates)
        assert output.n_candidates == len(candidates)
        assert output.n_pruned == output.n_candidates - output.n_output
        for i, j, value in zip(output.left, output.right, output.estimates):
            assert value > 0.7
            assert value == pytest.approx(verifier.exact_similarity(int(i), int(j)))

    def test_finds_every_true_pair_among_candidates(self, sparse_text_collection):
        verifier = ExactVerifier(sparse_text_collection, "cosine", 0.6)
        left, right = np.triu_indices(80, k=1)
        candidates = CandidateSet(left=left.astype(np.int64), right=right.astype(np.int64))
        output = verifier.verify(candidates)
        expected = {
            (int(i), int(j))
            for i, j in zip(left, right)
            if verifier.exact_similarity(int(i), int(j)) > 0.6
        }
        assert {(int(i), int(j)) for i, j in zip(output.left, output.right)} == expected

    def test_exact_output_flag(self, sparse_text_collection):
        assert ExactVerifier(sparse_text_collection, "cosine", 0.5).exact_output is True

    def test_threshold_validation(self, sparse_text_collection):
        with pytest.raises(ValueError):
            ExactVerifier(sparse_text_collection, "cosine", 1.0)

    def test_empty_candidates(self, sparse_text_collection):
        verifier = ExactVerifier(sparse_text_collection, "jaccard", 0.5)
        output = verifier.verify(CandidateSet.from_pairs([]))
        assert output.n_output == 0
        assert output.exact_computations == 0
