"""Resident serving daemon suite: coalescing, admission, ops, degradation."""
