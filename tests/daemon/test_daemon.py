"""Daemon serving path: coalesced answers bit-identical to the serial oracle.

The core claim: putting a socket, a JSON wire format and a batch-coalescing
window between the client and the index changes *nothing* about the
answers.  Concurrent clients get exactly the rows and float-identical
similarities the serial in-process call produces, requests are provably
coalesced (fewer batches than requests), and the ops endpoints (health,
readiness, stats, snapshot, drain) behave as the runbook documents.
"""

from __future__ import annotations

import os
import threading

import pytest
import scipy.sparse as sp

from repro.serving import (
    DaemonClient,
    DaemonError,
    Draining,
    ServingDaemon,
)
from repro.serving.daemon import decode_vector, encode_vector

from tests.daemon.conftest import as_pairs


def test_concurrent_clients_bit_identical_and_coalesced(index, batch, socket_path):
    """Many clients, one daemon: answers match serial, batches < requests."""
    oracle_query = index.query_many(batch, threshold=0.55, n_workers=1)
    oracle_topk = index.top_k_many(batch, k=5, floor_threshold=0.2, n_workers=1)
    n = len(batch)
    results_query: list = [None] * n
    results_topk: list = [None] * n

    def drive(i: int) -> None:
        with DaemonClient(socket_path) as client:
            results_query[i] = client.query(batch[i], threshold=0.55)
            results_topk[i] = client.top_k(batch[i], k=5, floor_threshold=0.2)

    with ServingDaemon(index, socket_path, batch_window_ms=25, max_batch=16):
        threads = [threading.Thread(target=drive, args=(i,)) for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with DaemonClient(socket_path) as client:
            stats = client.stats()

    for i in range(n):
        assert results_query[i] == as_pairs(oracle_query[i])
        assert results_topk[i] == as_pairs(oracle_topk[i])
    assert stats["requests"] == 2 * n
    assert stats["batches"] < stats["requests"], "no coalescing happened"
    assert stats["coalesced_batches"] >= 1
    assert stats["max_batch_observed"] > 1


def test_daemon_on_resident_pool_matches_serial(index, batch, socket_path):
    """``pool_workers`` attaches a daemon-owned resident pool; answers are
    unchanged and the pool is closed with the daemon."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    with ServingDaemon(
        index, socket_path, batch_window_ms=10, pool_workers=2
    ):
        with DaemonClient(socket_path) as client:
            answers = [client.query(row, threshold=0.55) for row in batch]
            stats = client.stats()
    assert answers == [as_pairs(scored) for scored in oracle]
    assert stats["pool"] is not None and stats["pool"]["n_workers"] == 2
    assert index.pool_stats() is None, "daemon must close the pool it owns"


def test_wire_encodings_round_trip_bit_identically(index, batch, socket_path):
    """Dense, sparse and token encodings all reach the same canonical CSR."""
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    sparse_row = sp.csr_matrix(batch[0])
    with ServingDaemon(index, socket_path, batch_window_ms=1):
        with DaemonClient(socket_path) as client:
            assert client.query(batch[0], threshold=0.55) == oracle
            assert client.query(sparse_row, threshold=0.55) == oracle
    # Token-set encoding decodes to the binary row the index builds itself.
    tokens = {3, 17, 41}
    wire = encode_vector(tokens)
    assert wire == {"tokens": [3, 17, 41]}
    row = decode_vector(wire, n_features=80)
    assert row.shape == (1, 80)
    assert sorted(row.indices) == [3, 17, 41]
    assert set(row.data) == {1.0}


def test_bad_requests_get_typed_errors_not_dropped_connections(
    index, socket_path
):
    with ServingDaemon(index, socket_path):
        with DaemonClient(socket_path) as client:
            with pytest.raises(DaemonError, match="unknown op"):
                client._call({"op": "frobnicate"})
            with pytest.raises(DaemonError, match="dense vector"):
                client._call({"op": "query", "vector": {"dense": [1.0, 2.0]}})
            with pytest.raises(DaemonError, match="rank_by"):
                client._call(
                    {
                        "op": "top_k",
                        "vector": {"tokens": [1]},
                        "rank_by": "wrong",
                    }
                )
            # The connection survived all three errors.
            assert client.health()["ok"]
            assert client.stats()["bad_requests"] == 3


def test_ops_endpoints_and_snapshot(index, batch, socket_path, tmp_path):
    snapshot_dir = tmp_path / "snapshots"
    with ServingDaemon(
        index, socket_path, snapshot_store=str(snapshot_dir)
    ):
        with DaemonClient(socket_path) as client:
            health = client.health()
            assert health["ok"] and health["serving"] and not health["draining"]
            assert client.ready()["ready"]
            path = client.snapshot()
            assert os.path.exists(path)
            stats = client.stats()
            assert stats["queue_depth"] == 0
            assert stats["config"]["max_batch"] == 64
            assert stats["pool"] is None  # serving serially


def test_snapshot_endpoint_without_store_is_a_typed_error(index, socket_path):
    with ServingDaemon(index, socket_path):
        with DaemonClient(socket_path) as client:
            with pytest.raises(DaemonError, match="no snapshot store"):
                client.snapshot()


def test_drain_finishes_admitted_work_then_stops(index, batch, socket_path):
    """Drain = answer everything admitted, reject the rest, shut down."""
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    daemon = ServingDaemon(index, socket_path, batch_window_ms=5)
    with daemon:
        with DaemonClient(socket_path) as client:
            assert client.query(batch[0], threshold=0.55) == oracle
            reply = client.drain()
            assert reply["drained"]
        daemon._stopped.wait(timeout=10)
        assert daemon._stopped.is_set()
        assert not os.path.exists(socket_path), "drain must remove the socket"
    # stop() after drain is a no-op, and the index still serves in-process.
    assert index.query_many(batch[:1], threshold=0.55, n_workers=1)


def test_requests_during_drain_are_rejected_with_draining(
    index, batch, socket_path
):
    daemon = ServingDaemon(index, socket_path)
    with daemon:
        # Flip the draining flag directly (deterministic; the drain op itself
        # shuts the daemon down too fast to race a second client against it).
        daemon._draining = True
        with DaemonClient(socket_path) as client:
            with pytest.raises(Draining):
                client.query(batch[0], threshold=0.55)
            assert client.stats()["rejected_draining"] == 1


def test_daemon_is_single_use(index, socket_path):
    daemon = ServingDaemon(index, socket_path)
    with daemon:
        pass
    with pytest.raises(RuntimeError, match="single-use"):
        daemon.start()
