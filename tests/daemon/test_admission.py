"""Admission control, deadlines and load shedding: typed, deterministic.

These tests stall the daemon's executor behind a gate (the batched index
call blocks until the test releases it) so queue build-up is deterministic
rather than a timing race.  Each scenario asserts two things: the rejected
or expired request surfaces as its *typed* error (``Overloaded``,
``DeadlineExceeded``), and every request the daemon *did* accept still
matches the serial oracle bit-identically — degradation changes who gets
served and how results are ranked, never the value of any served answer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving import (
    DaemonClient,
    DeadlineExceeded,
    Overloaded,
    ServingDaemon,
)

from tests.daemon.conftest import as_pairs


class _Gate:
    """Blocks the index's batched entry points until released."""

    def __init__(self, index):
        self._release = threading.Event()
        self._entered = threading.Event()
        self._query_many = index.query_many
        self._top_k_many = index.top_k_many
        index.query_many = self._gated(self._query_many)
        index.top_k_many = self._gated(self._top_k_many)

    def _gated(self, call):
        def wrapper(*args, **kwargs):
            self._entered.set()
            assert self._release.wait(timeout=30), "gate never released"
            return call(*args, **kwargs)

        return wrapper

    def wait_entered(self) -> None:
        assert self._entered.wait(timeout=10), "no batch reached the executor"

    def release(self) -> None:
        self._release.set()


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


def test_full_queue_rejects_with_overloaded_and_serves_the_accepted(
    index, batch, socket_path
):
    """Past ``max_queue`` waiting requests, admission rejects typed —
    and every accepted request still matches the serial oracle."""
    oracle = index.query_many(batch, threshold=0.55, n_workers=1)
    gate = _Gate(index)
    answers: dict[int, list] = {}
    errors: list[Exception] = []

    def drive(i: int) -> None:
        try:
            with DaemonClient(socket_path) as client:
                answers[i] = client.query(batch[i], threshold=0.55)
        except Exception as exc:  # collected, asserted below
            errors.append(exc)

    daemon = ServingDaemon(
        index, socket_path, batch_window_ms=1, max_batch=1, max_queue=2
    )
    with daemon:
        # Request 0 is pulled into a batch and blocks on the gate; requests
        # 1..2 fill the bounded queue behind it.
        first = threading.Thread(target=drive, args=(0,))
        first.start()
        gate.wait_entered()
        waiters = [threading.Thread(target=drive, args=(i,)) for i in (1, 2)]
        for thread in waiters:
            thread.start()
        _wait_for(lambda: daemon._queue.qsize() >= 2)
        # The queue is full: the next request must be rejected, typed.
        with DaemonClient(socket_path) as client:
            with pytest.raises(Overloaded, match="back off"):
                client.query(batch[3], threshold=0.55)
            assert client.stats()["rejected_overloaded"] == 1
        gate.release()
        first.join()
        for thread in waiters:
            thread.join()
    assert not errors, errors
    for i in (0, 1, 2):
        assert answers[i] == as_pairs(oracle[i])


def test_deadline_expired_while_queued_is_typed_and_never_executes(
    index, batch, socket_path
):
    oracle = as_pairs(index.query_many(batch[:1], threshold=0.55, n_workers=1)[0])
    gate = _Gate(index)
    outcome: dict = {}

    def drive_first() -> None:
        with DaemonClient(socket_path) as client:
            outcome["first"] = client.query(batch[0], threshold=0.55)

    def drive_expiring() -> None:
        try:
            with DaemonClient(socket_path) as client:
                client.query(batch[1], threshold=0.55, deadline_ms=50)
                outcome["expiring"] = "served"
        except DeadlineExceeded as exc:
            outcome["expiring"] = exc

    daemon = ServingDaemon(index, socket_path, batch_window_ms=1, max_batch=1)
    with daemon:
        first = threading.Thread(target=drive_first)
        first.start()
        gate.wait_entered()
        expiring = threading.Thread(target=drive_expiring)
        expiring.start()
        _wait_for(lambda: daemon._queue.qsize() >= 1)
        time.sleep(0.1)  # let the 50ms deadline lapse while queued
        gate.release()
        first.join()
        expiring.join()
        with DaemonClient(socket_path) as client:
            stats = client.stats()
    assert outcome["first"] == oracle
    assert isinstance(outcome["expiring"], DeadlineExceeded)
    assert "queued" in str(outcome["expiring"])
    assert stats["deadline_misses"] == 1
    # Two requests admitted, but only one ever reached the index.
    assert stats["requests"] == 2


def test_deadline_expired_during_execution_withholds_the_late_result(
    index, batch, socket_path
):
    """A result computed after its deadline is withheld: a deadline is a
    promise, not a hint."""
    gate = _Gate(index)
    outcome: dict = {}

    def drive() -> None:
        try:
            with DaemonClient(socket_path) as client:
                client.query(batch[0], threshold=0.55, deadline_ms=80)
                outcome["result"] = "served"
        except DeadlineExceeded as exc:
            outcome["result"] = exc

    with ServingDaemon(index, socket_path, batch_window_ms=1):
        thread = threading.Thread(target=drive)
        thread.start()
        gate.wait_entered()
        time.sleep(0.2)  # result arrives after the 80ms deadline
        gate.release()
        thread.join()
    assert isinstance(outcome["result"], DeadlineExceeded)
    assert "during execution" in str(outcome["result"])


def test_deadline_propagates_into_round_timeout(index, batch, socket_path):
    """The batch's ``round_timeout`` is the tightest member deadline."""
    seen: dict = {}
    original = index.query_many

    def recording(*args, **kwargs):
        seen["round_timeout"] = kwargs.get("round_timeout")
        return original(*args, **kwargs)

    index.query_many = recording
    with ServingDaemon(index, socket_path, batch_window_ms=1):
        with DaemonClient(socket_path) as client:
            client.query(batch[0], threshold=0.55, deadline_ms=5000)
    assert seen["round_timeout"] is not None
    assert 0 < seen["round_timeout"] <= 5.0


def test_shedding_past_threshold_degrades_exact_to_estimate(
    index, batch, socket_path
):
    """Under pressure, exact top-k requests are shed to estimate ranking:
    flagged degraded, bit-identical to the *estimate* oracle."""
    oracle_estimate = index.top_k_many(
        batch, k=5, floor_threshold=0.2, rank_by="estimate", n_workers=1
    )
    oracle_exact = index.top_k_many(batch, k=5, floor_threshold=0.2, n_workers=1)
    gate = _Gate(index)
    results: dict[int, tuple] = {}

    def drive(i: int) -> None:
        with DaemonClient(socket_path) as client:
            pairs = client.top_k(batch[i], k=5, floor_threshold=0.2, rank_by="exact")
            results[i] = (pairs, client.last_response["degraded"])

    daemon = ServingDaemon(
        index, socket_path, batch_window_ms=1, max_batch=1, shed_threshold=2
    )
    with daemon:
        first = threading.Thread(target=drive, args=(0,))
        first.start()
        gate.wait_entered()
        waiters = [threading.Thread(target=drive, args=(i,)) for i in (1, 2)]
        for thread in waiters:
            thread.start()
        _wait_for(lambda: daemon._queue.qsize() >= 2)
        gate.release()
        first.join()
        for thread in waiters:
            thread.join()
        with DaemonClient(socket_path) as client:
            shed_count = client.stats()["shed"]
    # The first request dispatched below threshold: exact, not degraded.
    pairs, degraded = results[0]
    assert not degraded and pairs == as_pairs(oracle_exact[0])
    # The queued requests dispatched at depth >= 2: shed to estimate.
    shed = [i for i in (1, 2) if results[i][1]]
    assert shed, "no request was shed despite queue depth at threshold"
    for i in shed:
        assert results[i][0] == as_pairs(oracle_estimate[i])
    for i in (1, 2):
        if i not in shed:  # pressure dropped again: exact, undegraded
            assert results[i][0] == as_pairs(oracle_exact[i])
    assert shed_count == len(shed)


def test_default_deadline_applies_when_request_carries_none(
    index, batch, socket_path
):
    gate = _Gate(index)
    outcome: dict = {}

    def drive() -> None:
        try:
            with DaemonClient(socket_path) as client:
                client.query(batch[0], threshold=0.55)
                outcome["result"] = "served"
        except DeadlineExceeded as exc:
            outcome["result"] = exc

    with ServingDaemon(
        index, socket_path, batch_window_ms=1, default_deadline_ms=80
    ):
        thread = threading.Thread(target=drive)
        thread.start()
        gate.wait_entered()
        time.sleep(0.2)
        gate.release()
        thread.join()
    assert isinstance(outcome["result"], DeadlineExceeded)
