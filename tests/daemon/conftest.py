"""Shared builders for the daemon suite.

Every test here drives a real :class:`ServingDaemon` over a real unix
socket from real client threads — no mocked transport — because the
bit-identity claim is about the whole path: JSON wire encoding, daemon-side
CSR reconstruction, window coalescing, batched execution, and the response
encoding back.  The corpus mirrors the fault-suite fixtures (planted
near-duplicates, multiple segments, tombstones) so thresholded queries have
true positives and verification runs real rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.query import QueryIndex

from tests.faults.conftest import planted_collection


@pytest.fixture()
def index() -> QueryIndex:
    """A fresh multi-segment bayes index (function-scoped: daemons mutate it)."""
    corpus = planted_collection(29, n=70)
    built = QueryIndex(corpus[:40], measure="cosine", threshold=0.6, seed=13)
    built.insert(corpus[40:])
    built.delete([2, 40])
    return built


@pytest.fixture()
def batch() -> np.ndarray:
    queries = planted_collection(31, n=8)
    queries[:3] = planted_collection(29, n=70)[:3]
    return queries


@pytest.fixture()
def socket_path(tmp_path) -> str:
    return str(tmp_path / "daemon.sock")


def as_pairs(scored) -> list:
    """Serial-oracle results in the daemon's wire shape."""
    return [[int(pair.j), float(pair.similarity)] for pair in scored]
