"""Client-side retry: transient transport failures never surface raw.

The contract (see ``repro/serving/client.py``): refused connects and
dropped connections are retried with capped exponential backoff and
jitter, reconnecting each time; the budget's end is the typed
:class:`RetriesExhausted` with the last transport error chained; and every
mutating request carries an idempotency key, so a retry that crosses an
execution applies the mutation at most once.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving.client import DaemonClient, RetriesExhausted
from repro.serving.daemon import ServingDaemon

from .conftest import as_pairs


def test_connect_retries_until_the_daemon_appears(index, socket_path, batch):
    """A client racing the daemon's startup connects on a later attempt."""
    daemon = ServingDaemon(index, socket_path)
    starter = threading.Timer(0.15, daemon.start)
    starter.start()
    try:
        client = DaemonClient(socket_path, retries=20, backoff_ms=20)
        assert client.retry_stats["retries"] >= 1
        assert client.query(batch[0], threshold=0.55) == as_pairs(
            index.query_many(batch[:1], threshold=0.55)[0]
        )
        client.close()
    finally:
        starter.join()
        daemon.stop()


def test_retries_exhausted_is_typed_and_chained(socket_path):
    with pytest.raises(RetriesExhausted) as excinfo:
        DaemonClient(socket_path, retries=2, backoff_ms=1)
    assert "3 attempt" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, OSError)


def test_zero_retries_fails_on_first_transport_error(socket_path):
    with pytest.raises(RetriesExhausted, match="1 attempt"):
        DaemonClient(socket_path, retries=0)


def test_reconnects_across_a_daemon_restart(index, socket_path, batch):
    """A connection severed by a restart is re-established transparently."""
    first = ServingDaemon(index, socket_path)
    first.start()
    client = DaemonClient(socket_path, retries=20, backoff_ms=20)
    reference = client.query(batch[0], threshold=0.55)
    first.stop()
    second = ServingDaemon(index, socket_path)
    second.start()
    try:
        assert client.query(batch[0], threshold=0.55) == reference
        assert client.retry_stats["reconnects"] >= 1
    finally:
        client.close()
        second.stop()


def test_negative_retries_rejected(socket_path):
    with pytest.raises(ValueError, match="retries"):
        DaemonClient(socket_path, retries=-1)


def test_idempotency_key_applies_a_mutation_at_most_once(index, socket_path):
    """Resending a keyed insert replays the response, never the mutation."""
    with ServingDaemon(index, socket_path) as daemon:
        with DaemonClient(socket_path) as client:
            before = index.n_indexed
            request = {
                "op": "insert",
                "vectors": [{"tokens": [1, 5, 9]}, {"tokens": [2, 6]}],
                "idempotency_key": "retry-key-1",
            }
            first = client._call(request)
            replayed = client._call(request)  # the retry path resends verbatim
            assert replayed["rows"] == first["rows"]
            assert index.n_indexed == before + 2
            stats = client.stats()
            assert stats["inserts"] == 1
            assert stats["idempotent_hits"] == 1
            client.drain()


def test_mutating_methods_generate_fresh_keys(index, socket_path):
    """Two logical inserts are two mutations — keys are per-call, not per-client."""
    with ServingDaemon(index, socket_path) as daemon:
        with DaemonClient(socket_path) as client:
            before = index.n_indexed
            rows_a = client.insert([{"tokens": [3, 7]}])
            rows_b = client.insert([{"tokens": [3, 7]}])
            assert rows_a != rows_b
            assert index.n_indexed == before + 2
            assert client.stats()["idempotent_hits"] == 0
            client.drain()


def test_bad_ingest_request_does_not_poison_its_key(index, socket_path):
    """A rejected request leaves its key free for a corrected retry."""
    from repro.serving.daemon import DaemonError

    with ServingDaemon(index, socket_path) as daemon:
        with DaemonClient(socket_path) as client:
            bad = {
                "op": "insert",
                "vectors": [{"tokens": [10**9]}],  # out of feature range
                "idempotency_key": "poisoned?",
            }
            with pytest.raises(DaemonError):
                client._call(bad)
            good = dict(bad, vectors=[{"tokens": [4, 8]}])
            assert len(client._call(good)["rows"]) == 1
            client.drain()
