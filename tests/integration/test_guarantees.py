"""Integration tests for the paper's probabilistic guarantees (Section 1).

Guarantee 1 (recall): each pair with probability > epsilon of being a true
positive is included in the output — so the false-negative rate over true
pairs must stay (well) below epsilon plus the candidate generator's own
false-negative rate.

Guarantee 2 (accuracy): each similarity estimate is within delta of the truth
with probability > 1 - gamma — so the fraction of output estimates with error
above delta must stay near or below gamma.

These are statistical statements; the assertions use slack factors so they
hold for every seed while still being meaningful.
"""

import pytest

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import error_statistics, recall
from repro.search.pipelines import make_pipeline
from repro.verification.base import exact_similarities_for_pairs
from repro.similarity.measures import get_measure


def _exact_map(dataset, measure_name, result):
    measure = get_measure(measure_name)
    prepared = measure.prepare(dataset.collection)
    values = exact_similarities_for_pairs(prepared, measure, result.left, result.right)
    return {
        (int(i), int(j)): float(v) for i, j, v in zip(result.left, result.right, values)
    }


class TestRecallGuarantee:
    @pytest.mark.parametrize("epsilon", [0.03, 0.1])
    def test_false_negative_rate_tracks_epsilon(self, sparse_text_dataset, epsilon):
        threshold = 0.7
        truth = exact_all_pairs(sparse_text_dataset, threshold, "cosine")
        assert len(truth) > 10
        engine = make_pipeline(
            "ap_bayeslsh",
            sparse_text_dataset,
            measure="cosine",
            threshold=threshold,
            seed=0,
            epsilon=epsilon,
        )
        result = engine.run(sparse_text_dataset)
        false_negative_rate = 1.0 - recall(result, truth)
        # AllPairs candidate generation is exact, so misses are BayesLSH prunes;
        # allow 3x slack on the per-pair epsilon bound for statistical noise.
        assert false_negative_rate <= 3 * epsilon

    def test_smaller_epsilon_gives_higher_recall(self, sparse_text_dataset):
        threshold = 0.7
        truth = exact_all_pairs(sparse_text_dataset, threshold, "cosine")
        recalls = {}
        for epsilon in (0.01, 0.2):
            engine = make_pipeline(
                "ap_bayeslsh",
                sparse_text_dataset,
                measure="cosine",
                threshold=threshold,
                seed=1,
                epsilon=epsilon,
            )
            recalls[epsilon] = recall(engine.run(sparse_text_dataset), truth)
        assert recalls[0.01] >= recalls[0.2]


class TestAccuracyGuarantee:
    def test_error_fraction_tracks_gamma(self, sparse_text_dataset):
        threshold = 0.6
        engine = make_pipeline(
            "ap_bayeslsh",
            sparse_text_dataset,
            measure="cosine",
            threshold=threshold,
            seed=0,
            delta=0.05,
            gamma=0.03,
        )
        result = engine.run(sparse_text_dataset)
        stats = error_statistics(
            result, exact_similarities=_exact_map(sparse_text_dataset, "cosine", result),
            error_bound=0.05,
        )
        assert stats.n_pairs > 10
        assert stats.fraction_above <= 0.12  # gamma = 0.03 with generous slack

    def test_smaller_delta_gives_smaller_errors(self, sparse_text_dataset):
        threshold = 0.6
        mean_errors = {}
        for delta in (0.01, 0.10):
            engine = make_pipeline(
                "lsh_bayeslsh",
                sparse_text_dataset,
                measure="cosine",
                threshold=threshold,
                seed=2,
                delta=delta,
                max_hashes=4096,
            )
            result = engine.run(sparse_text_dataset)
            stats = error_statistics(
                result,
                exact_similarities=_exact_map(sparse_text_dataset, "cosine", result),
            )
            mean_errors[delta] = stats.mean_error
        assert mean_errors[0.01] < mean_errors[0.10]

    def test_hash_usage_grows_as_delta_shrinks(self, sparse_text_dataset):
        """The mechanism behind Figure 2: tighter delta means more hash comparisons."""
        threshold = 0.6
        comparisons = {}
        for delta in (0.02, 0.10):
            engine = make_pipeline(
                "lsh_bayeslsh",
                sparse_text_dataset,
                measure="cosine",
                threshold=threshold,
                seed=2,
                delta=delta,
                max_hashes=4096,
            )
            result = engine.run(sparse_text_dataset)
            comparisons[delta] = result.metadata["hash_comparisons"]
        assert comparisons[0.02] > comparisons[0.10]


class TestPruningBehaviour:
    def test_majority_of_false_positives_pruned_early(self, sparse_text_dataset):
        """The Figure 4 mechanism: most candidates disappear within a few rounds."""
        threshold = 0.8
        engine = make_pipeline(
            "ap_bayeslsh", sparse_text_dataset, measure="cosine", threshold=threshold, seed=0
        )
        result = engine.run(sparse_text_dataset)
        trace = result.metadata["prune_trace"]
        assert trace, "expected a pruning trace"
        n_candidates = result.n_candidates
        alive_after_first_rounds = dict(trace).get(96, trace[-1][1])
        assert alive_after_first_rounds < 0.5 * n_candidates

    def test_jaccard_prior_fitting_does_not_hurt_recall(self, binary_sets_collection):
        threshold = 0.4
        truth = exact_all_pairs(binary_sets_collection, threshold, "jaccard")
        engine = make_pipeline(
            "lsh_bayeslsh", binary_sets_collection, measure="jaccard", threshold=threshold, seed=0
        )
        result = engine.run(binary_sets_collection)
        assert recall(result, truth) >= 0.9
