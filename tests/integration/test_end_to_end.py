"""Integration tests: full pipelines against exact ground truth.

These are the tests that tie the whole system together: every pipeline the
paper evaluates is run end to end on realistic (if small) synthetic data and
compared to the brute-force exact answer.
"""

import pytest

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import error_statistics, precision, recall
from repro.search.engine import all_pairs_similarity
from repro.search.pipelines import pipelines_for_measure


class TestCosinePipelinesAgainstGroundTruth:
    @pytest.fixture(scope="class")
    def truth(self, sparse_text_dataset):
        return exact_all_pairs(sparse_text_dataset, 0.7, "cosine")

    def test_exact_pipelines_perfect_precision_and_recall(self, sparse_text_dataset, truth):
        for method in ("allpairs",):
            result = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method=method, seed=4)
            assert recall(result, truth) == 1.0
            assert precision(result, truth) == 1.0

    def test_lsh_exact_recall_close_to_one(self, sparse_text_dataset, truth):
        result = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method="lsh", seed=4)
        assert recall(result, truth) >= 0.9
        assert precision(result, truth) == 1.0

    @pytest.mark.parametrize("method", ["ap_bayeslsh", "lsh_bayeslsh"])
    def test_bayeslsh_recall_and_accuracy(self, sparse_text_dataset, truth, method):
        result = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method=method, seed=4)
        assert recall(result, truth) >= 0.9
        stats = error_statistics(result, truth)
        assert stats.n_pairs > 0
        assert stats.fraction_above < 0.15
        assert stats.mean_error < 0.05

    @pytest.mark.parametrize("method", ["ap_bayeslsh_lite", "lsh_bayeslsh_lite"])
    def test_bayeslsh_lite_exact_output(self, sparse_text_dataset, truth, method):
        result = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method=method, seed=4)
        assert recall(result, truth) >= 0.9
        # exact verification: every reported pair really is above the threshold
        assert precision(result, truth) == 1.0
        assert result.exact_similarities

    def test_lsh_approx_behaves_like_estimator(self, sparse_text_dataset, truth):
        result = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method="lsh_approx", seed=4)
        assert recall(result, truth) >= 0.85
        stats = error_statistics(result, truth)
        assert stats.mean_error < 0.05


class TestJaccardPipelinesAgainstGroundTruth:
    @pytest.fixture(scope="class")
    def truth(self, binary_sets_collection):
        return exact_all_pairs(binary_sets_collection, 0.5, "jaccard")

    @pytest.mark.parametrize("method", pipelines_for_measure("jaccard"))
    def test_every_jaccard_pipeline(self, binary_sets_collection, truth, method):
        result = all_pairs_similarity(binary_sets_collection, 0.5, "jaccard", method=method, seed=4)
        assert recall(result, truth) >= 0.9
        if result.exact_similarities:
            assert precision(result, truth) == 1.0


class TestBinaryCosinePipelines:
    def test_ppjoin_and_allpairs_agree(self, binary_sets_collection):
        truth = exact_all_pairs(binary_sets_collection, 0.7, "binary_cosine")
        ppjoin = all_pairs_similarity(
            binary_sets_collection, 0.7, "binary_cosine", method="ppjoin", seed=1
        )
        allpairs = all_pairs_similarity(
            binary_sets_collection, 0.7, "binary_cosine", method="allpairs", seed=1
        )
        assert ppjoin.pair_set() == truth.pair_set()
        assert allpairs.pair_set() == truth.pair_set()


class TestGraphWorkload:
    def test_graph_similarity_search(self, graph_dataset):
        truth = exact_all_pairs(graph_dataset, 0.6, "cosine")
        result = all_pairs_similarity(graph_dataset, 0.6, "cosine", method="ap_bayeslsh_lite", seed=2)
        assert recall(result, truth) >= 0.9
        assert precision(result, truth) == 1.0


class TestDeterminism:
    def test_same_seed_same_result(self, sparse_text_dataset):
        a = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method="lsh_bayeslsh", seed=9)
        b = all_pairs_similarity(sparse_text_dataset, 0.7, "cosine", method="lsh_bayeslsh", seed=9)
        assert a.pair_set() == b.pair_set()
