"""Backend-equivalence matrix: RAM vs mmap snapshot loads are bit-identical.

The storage seam (see ``repro/serving/storage.py``) promises that *where* a
loaded index's arrays live — deserialised ``.npz`` copies, flat-layout RAM
reads, or read-only memory maps — never changes a single answered bit.
Every test here drives one serving operation through the full backend
matrix

    saved layout   x   load backend
    npz, flat          npz-RAM, flat-RAM, flat-mmap

and asserts the results (ids, similarities, ranked orders), the posterior
estimates, the post-call per-segment store widths and the hash family's RNG
stream position are identical across all of them — including after loads
into live mutation (insert / delete / staleness rebuild), a compacted
re-save round trip, resident-pool execution at ``n_workers`` ∈ {1, 2}, and
an in-place :meth:`~repro.search.query.QueryIndex.spill`.
"""

import json

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.similarity.vectors import VectorCollection

MEASURES = ["cosine", "jaccard", "binary_cosine"]

#: (layout, storage) load paths that must all be bit-identical
BACKENDS = [("npz", None), ("flat", "ram"), ("flat", "mmap")]


def _random_collection(seed: int, n: int = 50, features: int = 80) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.2)
    half = n // 2
    planted = min(8, n - half)
    dense[:planted] = dense[half : half + planted]
    mask = rng.random((planted, features)) < 0.1
    dense[:planted][mask] = 0.0
    return dense


def _build_index(measure: str, layout: str, verification: str = "bayes") -> QueryIndex:
    """``"fresh"`` = one segment; ``"grown"`` = four segments + tombstones."""
    corpus = _random_collection(41, n=70)
    if layout == "fresh":
        return QueryIndex(
            corpus, measure=measure, threshold=0.6, verification=verification, seed=19
        )
    index = QueryIndex(
        corpus[:30], measure=measure, threshold=0.6, verification=verification, seed=19
    )
    index.insert(corpus[30:31])  # single-row segment
    index.insert(corpus[31:55])
    index.insert(corpus[55:])
    index.delete([2, 30, 60])
    return index


def _queries() -> np.ndarray:
    queries = _random_collection(43, n=9)[:, :80]
    queries[:3] = _random_collection(41, n=70)[:3]  # indexed rows in the batch
    return queries


def _loaded_matrix(index: QueryIndex, tmp_path) -> list[tuple[str, QueryIndex]]:
    """One loaded index per (layout, storage) backend combination."""
    paths = {
        "npz": index.save(tmp_path / "snap_npz", layout="npz"),
        "flat": index.save(tmp_path / "snap_flat", layout="flat"),
    }
    return [
        (f"{layout}/{storage or 'ram'}", QueryIndex.load(paths[layout], storage=storage))
        for layout, storage in BACKENDS
    ]


def _family_position(index: QueryIndex) -> str:
    """The hash family's full state (RNG position included) as a stable key."""
    state = index._family.state_dict()
    return json.dumps(
        {
            key: value.tolist() if isinstance(value, np.ndarray) else value
            for key, value in sorted(state.items())
        }
    )


def _store_widths(index: QueryIndex) -> list[int]:
    return [segment.store.n_hashes for segment in index._segments.segments]


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("layout", ["fresh", "grown"])
def test_query_and_top_k_identical_across_backends(measure, layout, tmp_path):
    """query_many / top_k_many (exact + estimate) over every backend."""
    index = _build_index(measure, layout)
    queries = _queries()
    reference_query = index.query_many(queries, threshold=0.55)
    reference_exact = index.top_k_many(queries, k=5, floor_threshold=0.2)
    reference_estimate = index.top_k_many(
        queries, k=5, floor_threshold=0.2, rank_by="estimate"
    )

    for name, loaded in _loaded_matrix(index, tmp_path):
        assert loaded.query_many(queries, threshold=0.55) == reference_query, name
        assert loaded.top_k_many(queries, k=5, floor_threshold=0.2) == reference_exact, name
        assert (
            loaded.top_k_many(queries, k=5, floor_threshold=0.2, rank_by="estimate")
            == reference_estimate
        ), name
        # Queries extend the stores lazily; every backend must land on the
        # same widths and the same family RNG position as the original.
        assert _store_widths(loaded) == _store_widths(index), name
        assert _family_position(loaded) == _family_position(index), name


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_insert_after_load_identical_across_backends(measure, tmp_path):
    """Post-load inserts hash through identical RNG streams on every backend."""
    index = _build_index(measure, "grown")
    queries = _queries()
    extra = _random_collection(47, n=12)

    index.insert(extra)
    reference = index.query_many(queries, threshold=0.55)

    for name, loaded in _loaded_matrix(_build_index(measure, "grown"), tmp_path):
        rows = loaded.insert(extra)
        assert rows.tolist() == list(range(70, 82)), name
        assert loaded.query_many(queries, threshold=0.55) == reference, name
        assert _family_position(loaded) == _family_position(index), name


@pytest.mark.parametrize("measure", ["cosine", "binary_cosine"])
def test_delete_and_staleness_rebuild_identical_across_backends(measure, tmp_path):
    """Deletes + the zero-budget posting rebuild behave identically loaded."""
    corpus = _random_collection(53, n=60)
    queries = corpus[:8]

    def build() -> QueryIndex:
        return QueryIndex(
            corpus, measure=measure, threshold=0.6, seed=23, staleness_budget=0.0
        )

    reference_index = build()
    reference_index.delete(list(range(10)))
    reference = reference_index.query_many(queries, threshold=0.4)
    assert reference_index.n_stale_postings == 0  # the query forced a rebuild

    for name, loaded in _loaded_matrix(build(), tmp_path):
        assert loaded.delete(list(range(10))) == 10, name
        assert loaded.query_many(queries, threshold=0.4) == reference, name
        assert loaded.n_stale_postings == 0, name


@pytest.mark.parametrize("measure", MEASURES)
def test_compacted_round_trip_identical_across_backends(measure, tmp_path):
    """save(compact=True) → load answers identically from every backend."""
    index = _build_index(measure, "grown")
    queries = _queries()
    compact_reference = None
    for layout, storage in BACKENDS:
        path = index.save(
            tmp_path / f"compact_{layout}_{storage or 'ram'}", compact=True, layout=layout
        )
        loaded = QueryIndex.load(path, storage=storage)
        assert loaded.n_segments == 1
        assert loaded.n_deleted == 0
        answers = loaded.query_many(queries, threshold=0.55)
        if compact_reference is None:
            compact_reference = answers
        else:
            assert answers == compact_reference, (layout, storage)
    # Compaction only renumbers rows; external ids keep matching.
    alive = {pair.j for hits in compact_reference for pair in hits}
    assert all(0 <= j < index.n_alive for j in alive)


@pytest.mark.parametrize("n_workers", [1, 2])
def test_resident_pool_batches_identical_across_backends(n_workers, tmp_path):
    """Resident-pool serving over each backend equals the serial reference.

    Loaded mmap segments are published to forked workers through the
    inherited chunk maps; answers and post-batch store widths must equal the
    serial path bit for bit at every worker count.
    """
    index = _build_index("cosine", "grown")
    queries = _queries()
    reference_query = index.query_many(queries, threshold=0.55)
    reference_topk = index.top_k_many(queries, k=5, floor_threshold=0.2)

    for name, loaded in _loaded_matrix(_build_index("cosine", "grown"), tmp_path):
        if n_workers == 1:
            # n_workers=1 is the explicit serial execution path.
            assert (
                loaded.query_many(queries, threshold=0.55, n_workers=1)
                == reference_query
            ), name
            assert (
                loaded.top_k_many(queries, k=5, floor_threshold=0.2, n_workers=1)
                == reference_topk
            ), name
        else:
            loaded.start_pool(n_workers=n_workers)
            try:
                assert loaded.query_many(queries, threshold=0.55) == reference_query, name
                assert (
                    loaded.top_k_many(queries, k=5, floor_threshold=0.2)
                    == reference_topk
                ), name
            finally:
                loaded.close()
        assert _store_widths(loaded) == _store_widths(index), name


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_spill_preserves_answers_and_updatability(measure, tmp_path):
    """spill() swaps backings in place without changing any answered bit."""
    index = _build_index(measure, "grown")
    queries = _queries()
    before_query = index.query_many(queries, threshold=0.55)
    before_topk = index.top_k_many(queries, k=5, rank_by="estimate")
    widths = _store_widths(index)

    index.spill(tmp_path / "spilled.flat")
    assert index.query_many(queries, threshold=0.55) == before_query
    assert index.top_k_many(queries, k=5, rank_by="estimate") == before_topk
    assert _store_widths(index) == widths

    # The spilled index stays fully updatable and keeps matching a
    # never-spilled twin through further mutation.
    twin = _build_index(measure, "grown")
    extra = _random_collection(59, n=6)
    index.insert(extra)
    twin.insert(extra)
    index.delete([1, 71])
    twin.delete([1, 71])
    assert index.query_many(queries, threshold=0.55) == twin.query_many(
        queries, threshold=0.55
    )


def test_collections_with_string_ids_round_trip(tmp_path):
    """Unicode external ids survive both layouts and both backends."""
    dense = _random_collection(61, n=30)
    ids = [f"doc-{i:03d}" for i in range(30)]
    index = QueryIndex(
        VectorCollection.from_dense(dense, ids=ids),
        measure="cosine",
        threshold=0.6,
        seed=29,
    )
    queries = dense[:4]
    reference = index.query_many(queries, threshold=0.5)
    for name, loaded in _loaded_matrix(index, tmp_path):
        assert loaded.query_many(queries, threshold=0.5) == reference, name
        assert loaded.ids.tolist() == ids, name
