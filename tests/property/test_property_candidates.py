"""Property-based tests for candidate generation completeness.

For random small binary/weighted collections, the exact candidate generators
(AllPairs, PPJoin+) must never miss a pair above the threshold, and the
candidate-set container must always canonicalise pairs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.base import CandidateSet
from repro.candidates.ppjoin import PPJoinGenerator
from repro.evaluation.ground_truth import exact_all_pairs
from repro.similarity.vectors import VectorCollection

_SETTINGS = settings(max_examples=25, deadline=None)


def _random_sets(seed: int, n_rows: int, universe: int, max_size: int):
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n_rows):
        size = int(rng.integers(0, max_size + 1))
        sets.append(set(rng.choice(universe, size=min(size, universe), replace=False).tolist()))
    return VectorCollection.from_sets(sets, n_features=universe)


def _random_weighted(seed: int, n_rows: int, n_features: int):
    rng = np.random.default_rng(seed)
    dense = rng.random((n_rows, n_features)) * (rng.random((n_rows, n_features)) < 0.4)
    return VectorCollection.from_dense(dense)


class TestCandidateSetProperties:
    @_SETTINGS
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)),
            max_size=80,
        )
    )
    def test_from_pairs_canonical(self, pairs):
        candidate_set = CandidateSet.from_pairs(pairs)
        seen = set()
        for i, j in candidate_set:
            assert i < j
            assert (i, j) not in seen
            seen.add((i, j))
        expected = {(min(a, b), max(a, b)) for a, b in pairs if a != b}
        assert seen == expected


class TestGeneratorCompletenessProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([0.3, 0.5, 0.7]),
    )
    def test_ppjoin_jaccard_complete(self, seed, threshold):
        collection = _random_sets(seed, n_rows=30, universe=40, max_size=12)
        truth = exact_all_pairs(collection, threshold, "jaccard")
        candidates = PPJoinGenerator("jaccard", threshold).generate(collection)
        assert truth.pair_set() <= candidates.as_set()

    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([0.5, 0.7, 0.9]),
    )
    def test_ppjoin_binary_cosine_complete(self, seed, threshold):
        collection = _random_sets(seed, n_rows=25, universe=35, max_size=10)
        truth = exact_all_pairs(collection, threshold, "binary_cosine")
        candidates = PPJoinGenerator("binary_cosine", threshold).generate(collection)
        assert truth.pair_set() <= candidates.as_set()

    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([0.5, 0.7, 0.9]),
    )
    def test_allpairs_cosine_complete(self, seed, threshold):
        collection = _random_weighted(seed, n_rows=25, n_features=15)
        truth = exact_all_pairs(collection, threshold, "cosine")
        candidates = AllPairsGenerator("cosine", threshold).generate(collection)
        assert truth.pair_set() <= candidates.as_set()
