"""Equivalence of the batched kernels and their scalar references.

The vectorisation contract: every batched hot-path kernel must be
*bit-identical* to the retained scalar formulation in :mod:`repro.reference`
— same seeds give same signatures, same prune/emit decisions, same candidate
pairs and the same bookkeeping counters.  These tests check that contract on
randomised inputs (random collections, random match counts, random
thresholds) so a future "optimisation" that changes results gets caught.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import reference
from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.arrayops import pairs_within_groups, ragged_arange
from repro.candidates.lsh_index import LSHGenerator
from repro.candidates.ppjoin import PPJoinGenerator
from repro.core.concentration_cache import ConcentrationCache
from repro.core.posteriors import (
    BetaPosterior,
    GridCollisionPosterior,
    TruncatedCollisionPosterior,
)
from repro.core.priors import BetaPrior
from repro.hashing.minhash import MinHashFamily
from repro.hashing.simhash import SimHashFamily
from repro.similarity.vectors import VectorCollection

_SETTINGS = settings(max_examples=15, deadline=None)

_POSTERIORS = [
    BetaPosterior(),
    BetaPosterior(BetaPrior(2.5, 7.0)),
    TruncatedCollisionPosterior(),
]


def _random_sets_collection(seed: int, n_rows: int = 40, universe: int = 60):
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n_rows):
        size = int(rng.integers(0, 16))
        sets.append(set(rng.choice(universe, size=min(size, universe), replace=False).tolist()))
    return VectorCollection.from_sets(sets, n_features=universe)


def _random_weighted_collection(seed: int, n_rows: int = 35, n_features: int = 30):
    rng = np.random.default_rng(seed)
    dense = rng.random((n_rows, n_features)) * (rng.random((n_rows, n_features)) < 0.35)
    return VectorCollection.from_dense(dense)


class TestSignatureEquivalence:
    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_minhash_matches_scalar_reference(self, seed):
        collection = _random_sets_collection(seed)
        family = MinHashFamily(collection, seed=seed % 257)
        store = family.signatures(96)
        expected = reference.minhash_signatures_reference(family, store.n_hashes)
        np.testing.assert_array_equal(np.asarray(store.values, dtype=np.int64), expected)

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_minhash_incremental_growth_matches_reference(self, seed):
        collection = _random_sets_collection(seed)
        family = MinHashFamily(collection, seed=3)
        family.signatures(64)
        store = family.signatures(192)
        expected = reference.minhash_signatures_reference(family, store.n_hashes)
        np.testing.assert_array_equal(np.asarray(store.values, dtype=np.int64), expected)

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_simhash_matches_scalar_reference(self, seed):
        collection = _random_weighted_collection(seed)
        family = SimHashFamily(collection, seed=seed % 101)
        store = family.signatures(64)
        expected = reference.simhash_bits_reference(family, 64)
        for row in range(collection.n_vectors):
            np.testing.assert_array_equal(store.get_bits(row, 0, 64), expected[row])


class TestPosteriorBatchEquivalence:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=512),
        st.sampled_from([0.3, 0.5, 0.7, 0.9]),
    )
    def test_prob_above_threshold_many(self, seed, n, threshold):
        rng = np.random.default_rng(seed)
        matches = rng.integers(0, n + 1, size=24)
        for posterior in _POSTERIORS:
            batched = posterior.prob_above_threshold_many(matches, n, threshold)
            expected = reference.prob_above_threshold_reference(posterior, matches, n, threshold)
            np.testing.assert_array_equal(batched, expected)

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=512))
    def test_map_estimate_many(self, seed, n_max):
        rng = np.random.default_rng(seed)
        hashes = rng.integers(0, n_max + 1, size=24)
        matches = (hashes * rng.random(24)).astype(np.int64)
        for posterior in _POSTERIORS:
            batched = posterior.map_estimate_many(matches, hashes)
            expected = reference.map_estimates_reference(posterior, matches, hashes)
            np.testing.assert_array_equal(batched, expected)

    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=512),
        st.sampled_from([(0.05, 0.03), (0.01, 0.05), (0.10, 0.02)]),
    )
    def test_concentration_decisions_match_scalar(self, seed, n, accuracy):
        delta, gamma = accuracy
        rng = np.random.default_rng(seed)
        matches = rng.integers(0, n + 1, size=24)
        for posterior in _POSTERIORS:
            cache = ConcentrationCache(posterior, delta=delta, gamma=gamma)
            batched = cache.is_concentrated_many(matches, n)
            expected = reference.concentration_decisions_reference(
                posterior, matches, n, delta, gamma
            )
            np.testing.assert_array_equal(batched, expected)

    def test_grid_posterior_uses_scalar_fallback(self):
        posterior = GridCollisionPosterior(lambda r: np.ones_like(r))
        matches = np.array([10, 20, 30])
        batched = posterior.map_estimate_many(matches, np.full(3, 32))
        expected = reference.map_estimates_reference(posterior, matches, np.full(3, 32))
        np.testing.assert_array_equal(batched, expected)


class TestCandidateGeneratorEquivalence:
    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000), st.sampled_from([0.3, 0.5, 0.7]))
    def test_lsh_matches_bucket_reference(self, seed, threshold):
        collection = _random_sets_collection(seed)
        generator = LSHGenerator("jaccard", threshold, seed=7)
        candidates = generator.generate(collection)
        store = generator.family.signatures(0)
        rows = np.flatnonzero(collection.row_nnz > 0)
        expected_pairs, expected_collisions = reference.lsh_candidates_reference(
            store, rows, candidates.metadata["n_signatures"], generator.signature_width
        )
        assert candidates.as_set() == expected_pairs
        assert candidates.metadata["n_raw_collisions"] == expected_collisions

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000), st.sampled_from([0.4, 0.6, 0.8]))
    def test_allpairs_matches_sequential_reference(self, seed, threshold):
        collection = _random_weighted_collection(seed)
        candidates = AllPairsGenerator("cosine", threshold).generate(collection)
        expected_pairs, expected_meta = reference.allpairs_candidates_reference(
            collection, "cosine", threshold
        )
        assert candidates.as_set() == expected_pairs
        assert (
            candidates.metadata["n_score_accumulations"]
            == expected_meta["n_score_accumulations"]
        )
        assert candidates.metadata["index_entries"] == expected_meta["index_entries"]

    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["jaccard", "binary_cosine"]),
        st.sampled_from([0.4, 0.6]),
        st.booleans(),
        st.booleans(),
    )
    def test_ppjoin_matches_sequential_reference(
        self, seed, measure, threshold, positional, suffix
    ):
        collection = _random_sets_collection(seed)
        candidates = PPJoinGenerator(
            measure,
            threshold,
            use_positional_filter=positional,
            use_suffix_filter=suffix,
        ).generate(collection)
        expected_pairs, expected_meta = reference.ppjoin_candidates_reference(
            collection,
            measure,
            threshold,
            use_positional_filter=positional,
            use_suffix_filter=suffix,
        )
        assert candidates.as_set() == expected_pairs
        for key, value in expected_meta.items():
            assert candidates.metadata[key] == value, key


class TestArrayOps:
    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 8)), max_size=12))
    def test_ragged_arange(self, segments):
        starts = np.array([s for s, _ in segments], dtype=np.int64)
        lengths = np.array([length for _, length in segments], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(s, s + length) for s, length in segments])
            if segments and lengths.sum()
            else np.zeros(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(ragged_arange(starts, lengths), expected)

    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8))
    def test_pairs_within_groups(self, sizes):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 100, size=int(np.sum(sizes)))
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        earlier, later = pairs_within_groups(values, offsets)
        expected = []
        for g in range(len(sizes)):
            group = values[offsets[g] : offsets[g + 1]]
            for q in range(len(group)):
                for p in range(q):
                    expected.append((group[p], group[q]))
        assert list(zip(earlier.tolist(), later.tolist())) == [
            (int(a), int(b)) for a, b in expected
        ]
