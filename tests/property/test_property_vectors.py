"""Property-based tests for the similarity substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.similarity.measures import (
    binary_cosine_similarity,
    cosine_similarity,
    jaccard_similarity,
)
from repro.similarity.transforms import l2_normalize, tfidf_weighting
from repro.similarity.vectors import VectorCollection

_SETTINGS = settings(max_examples=40, deadline=None)

dense_collections = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: VectorCollection.from_dense(
        np.random.default_rng(seed).random((8, 6))
        * (np.random.default_rng(seed + 1).random((8, 6)) < 0.6)
    )
)
row_indices = st.tuples(
    st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
)


class TestSimilarityProperties:
    @_SETTINGS
    @given(dense_collections, row_indices)
    def test_similarities_bounded_and_symmetric(self, collection, indices):
        i, j = indices
        for function in (cosine_similarity, jaccard_similarity, binary_cosine_similarity):
            value = function(collection, i, j)
            assert 0.0 <= value <= 1.0 + 1e-12
            assert value == function(collection, j, i)

    @_SETTINGS
    @given(dense_collections, st.integers(min_value=0, max_value=7))
    def test_self_similarity_is_one_for_nonempty_rows(self, collection, i):
        if collection.row_nnz[i] == 0:
            return
        assert abs(cosine_similarity(collection, i, i) - 1.0) < 1e-9
        assert jaccard_similarity(collection, i, i) == 1.0

    @_SETTINGS
    @given(dense_collections, row_indices)
    def test_jaccard_lower_bounds_binary_cosine(self, collection, indices):
        """For sets, J(x,y) <= binary-cosine(x,y): AM-GM on the denominator."""
        i, j = indices
        assert (
            jaccard_similarity(collection, i, j)
            <= binary_cosine_similarity(collection, i, j) + 1e-12
        )

    @_SETTINGS
    @given(dense_collections, row_indices)
    def test_cosine_invariant_to_normalization(self, collection, indices):
        i, j = indices
        normalized = l2_normalize(collection)
        assert abs(
            cosine_similarity(collection, i, j) - cosine_similarity(normalized, i, j)
        ) < 1e-9

    @_SETTINGS
    @given(dense_collections)
    def test_tfidf_preserves_shape_and_support(self, collection):
        weighted = tfidf_weighting(collection)
        assert weighted.n_vectors == collection.n_vectors
        assert weighted.n_features == collection.n_features
        assert weighted.nnz == collection.nnz
