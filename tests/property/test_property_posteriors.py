"""Property-based tests (hypothesis) for the posterior models.

These check the mathematical invariants the BayesLSH algorithm relies on, for
arbitrary valid observation counts and parameters:

* probabilities are probabilities (in [0, 1]);
* Pr[S >= t | M(m, n)] is monotone non-decreasing in m and non-increasing in t;
* the MAP estimate lies in the similarity range and increases with m;
* the concentration probability is monotone in delta.
"""

from hypothesis import given, settings, strategies as st

from repro.core.posteriors import BetaPosterior, TruncatedCollisionPosterior
from repro.core.priors import BetaPrior

_SETTINGS = settings(max_examples=60, deadline=None)

counts = st.integers(min_value=0, max_value=512).flatmap(
    lambda n: st.tuples(st.integers(min_value=0, max_value=n), st.just(n))
)
thresholds = st.floats(min_value=0.01, max_value=0.99)
deltas = st.floats(min_value=0.001, max_value=0.5)
beta_params = st.floats(min_value=0.1, max_value=50.0)


class TestBetaPosteriorProperties:
    @_SETTINGS
    @given(counts, thresholds, beta_params, beta_params)
    def test_probability_in_unit_interval(self, mn, threshold, alpha, beta):
        m, n = mn
        posterior = BetaPosterior(BetaPrior(alpha, beta))
        value = posterior.prob_above_threshold(m, n, threshold)
        assert 0.0 <= value <= 1.0 + 1e-12

    @_SETTINGS
    @given(counts, thresholds)
    def test_monotone_in_matches(self, mn, threshold):
        m, n = mn
        if m >= n:
            return
        posterior = BetaPosterior()
        assert (
            posterior.prob_above_threshold(m + 1, n, threshold)
            >= posterior.prob_above_threshold(m, n, threshold) - 1e-12
        )

    @_SETTINGS
    @given(counts, st.tuples(thresholds, thresholds))
    def test_antitone_in_threshold(self, mn, pair):
        m, n = mn
        low, high = sorted(pair)
        posterior = BetaPosterior()
        assert (
            posterior.prob_above_threshold(m, n, high)
            <= posterior.prob_above_threshold(m, n, low) + 1e-12
        )

    @_SETTINGS
    @given(counts, beta_params, beta_params)
    def test_map_estimate_in_range(self, mn, alpha, beta):
        m, n = mn
        posterior = BetaPosterior(BetaPrior(alpha, beta))
        estimate = posterior.map_estimate(m, n)
        assert 0.0 <= estimate <= 1.0

    @_SETTINGS
    @given(counts, st.tuples(deltas, deltas))
    def test_concentration_monotone_in_delta(self, mn, pair):
        m, n = mn
        small, large = sorted(pair)
        posterior = BetaPosterior()
        assert (
            posterior.concentration_probability(m, n, large)
            >= posterior.concentration_probability(m, n, small) - 1e-12
        )

    @_SETTINGS
    @given(counts, deltas)
    def test_concentration_in_unit_interval(self, mn, delta):
        m, n = mn
        value = BetaPosterior().concentration_probability(m, n, delta)
        assert 0.0 <= value <= 1.0 + 1e-12

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=400))
    def test_all_matches_imply_high_similarity(self, n):
        posterior = BetaPosterior()
        assert posterior.map_estimate(n, n) == 1.0
        assert posterior.prob_above_threshold(n, n, 0.5) > 0.5


class TestTruncatedCollisionPosteriorProperties:
    @_SETTINGS
    @given(counts, thresholds)
    def test_probability_in_unit_interval(self, mn, threshold):
        m, n = mn
        posterior = TruncatedCollisionPosterior()
        value = posterior.prob_above_threshold(m, n, threshold)
        assert 0.0 <= value <= 1.0 + 1e-9

    @_SETTINGS
    @given(counts, thresholds)
    def test_monotone_in_matches(self, mn, threshold):
        m, n = mn
        if m >= n:
            return
        posterior = TruncatedCollisionPosterior()
        assert (
            posterior.prob_above_threshold(m + 1, n, threshold)
            >= posterior.prob_above_threshold(m, n, threshold) - 1e-9
        )

    @_SETTINGS
    @given(counts)
    def test_map_estimate_is_valid_cosine(self, mn):
        m, n = mn
        estimate = TruncatedCollisionPosterior().map_estimate(m, n)
        assert -1e-12 <= estimate <= 1.0 + 1e-12

    @_SETTINGS
    @given(counts, st.tuples(deltas, deltas))
    def test_concentration_monotone_in_delta(self, mn, pair):
        m, n = mn
        small, large = sorted(pair)
        posterior = TruncatedCollisionPosterior()
        assert (
            posterior.concentration_probability(m, n, large)
            >= posterior.concentration_probability(m, n, small) - 1e-9
        )

    @_SETTINGS
    @given(st.integers(min_value=32, max_value=512), thresholds)
    def test_map_consistent_with_threshold_probability(self, n, threshold):
        """If the MAP estimate is far above t, Pr[S >= t] should not be tiny."""
        posterior = TruncatedCollisionPosterior()
        m = int(0.95 * n)
        estimate = posterior.map_estimate(m, n)
        probability = posterior.prob_above_threshold(m, n, threshold)
        if estimate > threshold + 0.2:
            assert probability > 0.5
