"""Execution invariance: streamed/sharded runs are bit-identical to serial.

The determinism contract of the streamed executor
(:mod:`repro.search.executor`): for every pipeline, the output pairs, the
similarity estimates, every counter (``n_candidates`` / ``n_pruned`` /
``hash_comparisons`` / ``exact_computations``), the per-round prune trace and
the candidate metadata must be *bit-identical* for any ``block_size`` and any
``n_workers`` — blocking and sharding only regroup per-pair work whose
decisions depend on nothing but the pair itself.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import synthetic_text_corpus
from repro.search.executor import DEFAULT_BLOCK_SIZE
from repro.search.pipelines import PIPELINES, make_pipeline
from repro.similarity.transforms import tfidf_weighting

#: block sizes required by the contract: degenerate, tiny-odd, default, "all
#: pairs in one block"
BLOCK_SIZES = [1, 7, DEFAULT_BLOCK_SIZE, 10**9]
WORKER_COUNTS = [1, 2, 4]

#: measure used to exercise each pipeline (ppjoin needs a binary measure)
_MEASURE = {name: ("jaccard" if name == "ppjoin" else "cosine") for name in PIPELINES}
#: also exercise the Jaccard prior-fitting path of the Bayes pipelines
_EXTRA_JACCARD = ["lsh_bayeslsh", "lsh_bayeslsh_lite"]

_CASES = [(name, _MEASURE[name]) for name in sorted(PIPELINES)] + [
    (name, "jaccard") for name in _EXTRA_JACCARD
]


@pytest.fixture(scope="module")
def invariance_corpus():
    corpus = synthetic_text_corpus(
        n_documents=100,
        vocabulary_size=350,
        average_length=24,
        duplicate_fraction=0.4,
        cluster_size=3,
        mutation_rate=0.1,
        seed=23,
    )
    return {
        "cosine": tfidf_weighting(corpus.collection),
        "jaccard": corpus.collection.binarized(),
    }


@pytest.fixture(scope="module")
def serial_results(invariance_corpus):
    results = {}
    for name, measure in _CASES:
        collection = invariance_corpus[measure]
        engine = make_pipeline(name, collection, measure=measure, threshold=0.5, seed=7)
        results[(name, measure)] = engine.run(collection)
    return results


def _fingerprint(result):
    """Everything the contract pins, in comparable form."""
    return {
        "left": result.left.tolist(),
        "right": result.right.tolist(),
        "similarities": result.similarities.tolist(),
        "n_candidates": result.n_candidates,
        "n_pruned": result.n_pruned,
        "hash_comparisons": result.metadata["hash_comparisons"],
        "exact_computations": result.metadata["exact_computations"],
        "prune_trace": result.metadata["prune_trace"],
        "candidate_metadata": result.metadata["candidate_metadata"],
        "method": result.method,
        "measure": result.measure,
    }


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
@pytest.mark.parametrize("name, measure", _CASES)
def test_blocked_execution_is_bit_identical(
    name, measure, block_size, invariance_corpus, serial_results
):
    collection = invariance_corpus[measure]
    engine = make_pipeline(name, collection, measure=measure, threshold=0.5, seed=7)
    streamed = engine.run(collection, block_size=block_size)
    assert _fingerprint(streamed) == _fingerprint(serial_results[(name, measure)])
    assert streamed.metadata["execution"]["block_size"] == block_size


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
@pytest.mark.parametrize("name, measure", _CASES)
def test_sharded_execution_is_bit_identical(
    name, measure, n_workers, invariance_corpus, serial_results
):
    collection = invariance_corpus[measure]
    engine = make_pipeline(name, collection, measure=measure, threshold=0.5, seed=7)
    sharded = engine.run(collection, block_size=64, n_workers=n_workers)
    assert _fingerprint(sharded) == _fingerprint(serial_results[(name, measure)])
    assert sharded.metadata["execution"]["n_workers"] == n_workers


def test_all_pairs_similarity_forwards_execution_knobs(invariance_corpus):
    from repro.search.engine import all_pairs_similarity

    collection = invariance_corpus["cosine"]
    serial = all_pairs_similarity(collection, threshold=0.5, seed=7)
    streamed = all_pairs_similarity(
        collection, threshold=0.5, seed=7, block_size=32, n_workers=2
    )
    assert _fingerprint(streamed) == _fingerprint(serial)
