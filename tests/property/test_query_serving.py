"""Property tests for the serving layer's bit-identity contracts.

Five contracts (see ``repro/search/query.py``):

* **batched == looped** — ``query_many`` / ``top_k_many`` on a batch equal
  the singular ``query`` / ``top_k`` called per row, bit for bit;
* **brute-force agreement** — under ``verification="exact"`` every returned
  pair carries the true exact similarity and lies above the threshold, the
  result is a subset of the brute-force answer set, and an indexed vector
  queried against its own index always retrieves itself;
* **update equivalence** — an index grown by ``insert`` answers exactly like
  an index built from scratch over the final collection, and ``delete``
  filters tombstoned rows immediately whether or not the staleness budget
  has forced a posting rebuild;
* **segmentation invariance** — query answers are independent of how the
  corpus is split across sealed segments: an index grown through any insert
  history is bit-identical to a monolithic scratch rebuild over
  ``index.as_collection()`` (the segmented store's kernels are row-local);
* **execution invariance** — ``query_many``/``top_k_many`` with
  ``n_workers > 1`` (probing, verification and ranking sharded across a
  forked shared-memory worker pool) equal the serial batch bit for bit, for
  every worker count, segment layout, ranking mode and tombstone state, and
  leave the index in the identical post-call state (store widths / RNG
  stream positions) as serial execution.
"""

import numpy as np
import pytest

from repro.search.query import QueryIndex
from repro.similarity.vectors import VectorCollection

MEASURES = ["cosine", "jaccard", "binary_cosine"]


def _random_collection(seed: int, n: int = 50, features: int = 80) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = rng.random((n, features)) * (rng.random((n, features)) < 0.2)
    # Plant near-duplicate pairs so thresholded queries have true positives.
    half = n // 2
    planted = min(8, n - half)
    dense[:planted] = dense[half : half + planted]
    mask = rng.random((planted, features)) < 0.1
    dense[:planted][mask] = 0.0
    return dense


def _brute_force_matrix(queries: np.ndarray, corpus: np.ndarray, measure: str) -> np.ndarray:
    """Independent dense implementation of the three measures."""
    if measure == "cosine":
        def norm(matrix):
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)

        return norm(queries) @ norm(corpus).T
    binary_q = (queries > 0).astype(np.float64)
    binary_c = (corpus > 0).astype(np.float64)
    inner = binary_q @ binary_c.T
    if measure == "binary_cosine":
        denom = np.sqrt(np.outer(binary_q.sum(axis=1), binary_c.sum(axis=1)))
    else:  # jaccard
        denom = binary_q.sum(axis=1)[:, None] + binary_c.sum(axis=1)[None, :] - inner
    return np.divide(inner, denom, out=np.zeros_like(inner), where=denom > 0)


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("verification", ["bayes", "exact"])
@pytest.mark.parametrize("seed", [0, 1])
def test_batched_queries_equal_looped_queries(measure, verification, seed):
    corpus = _random_collection(seed)
    index = QueryIndex(
        corpus, measure=measure, threshold=0.6, verification=verification, seed=seed
    )
    queries = _random_collection(seed + 100, n=9)[:, : corpus.shape[1]]
    queries[:4] = corpus[:4]  # mix indexed rows into the batch

    batched = index.query_many(queries, threshold=0.55)
    looped = [index.query(queries[i], threshold=0.55) for i in range(len(queries))]
    assert batched == looped

    batched_topk = index.top_k_many(queries, k=5, floor_threshold=0.2)
    looped_topk = [
        index.top_k(queries[i], k=5, floor_threshold=0.2) for i in range(len(queries))
    ]
    assert batched_topk == looped_topk


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_exact_queries_agree_with_brute_force(measure, seed):
    corpus = _random_collection(seed)
    threshold = 0.55
    index = QueryIndex(
        corpus,
        measure=measure,
        threshold=threshold,
        verification="exact",
        false_negative_rate=0.01,
        seed=seed,
    )
    queries = corpus[:10]
    brute = _brute_force_matrix(queries, corpus, measure)

    for position, hits in enumerate(index.query_many(queries, threshold=threshold)):
        returned = {pair.j: pair.similarity for pair in hits}
        # Subset of the brute-force answer set, with the true similarities.
        for j, similarity in returned.items():
            assert similarity > threshold
            assert similarity == pytest.approx(brute[position, j], abs=1e-9)
        # An indexed vector always finds itself: it shares every band.
        if np.any(queries[position] != 0):
            assert position in returned
            assert returned[position] == pytest.approx(1.0, abs=1e-9)


@pytest.mark.parametrize("measure", MEASURES)
def test_top_k_matches_brute_force_ranking(measure):
    corpus = _random_collection(7)
    index = QueryIndex(corpus, measure=measure, threshold=0.6, verification="exact", seed=7)
    queries = corpus[:6]
    brute = _brute_force_matrix(queries, corpus, measure)
    for position, ranked in enumerate(index.top_k_many(queries, k=4, floor_threshold=0.3)):
        similarities = [pair.similarity for pair in ranked]
        assert similarities == sorted(similarities, reverse=True)
        assert all(s > 0.3 for s in similarities)
        for pair in ranked:
            assert pair.similarity == pytest.approx(brute[position, pair.j], abs=1e-9)


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("verification", ["bayes", "exact"])
def test_incremental_insert_equals_scratch_build(measure, verification):
    corpus = _random_collection(11, n=60)
    queries = corpus[:8]
    scratch = QueryIndex(
        corpus, measure=measure, threshold=0.6, verification=verification, seed=3
    )
    grown = QueryIndex(
        corpus[:25], measure=measure, threshold=0.6, verification=verification, seed=3
    )
    first = grown.insert(corpus[25:45])
    second = grown.insert(corpus[45:])
    assert np.array_equal(first, np.arange(25, 45))
    assert np.array_equal(second, np.arange(45, 60))
    assert grown.n_indexed == scratch.n_indexed

    assert grown.query_many(queries, threshold=0.55) == scratch.query_many(
        queries, threshold=0.55
    )
    assert grown.top_k_many(queries, k=5) == scratch.top_k_many(queries, k=5)


@pytest.mark.parametrize("budget", [0.0, 0.5, 1.0])
def test_delete_filters_immediately_and_rebuild_preserves_answers(budget):
    corpus = _random_collection(13, n=60)
    queries = corpus[:8]
    index = QueryIndex(
        corpus, measure="cosine", threshold=0.6, verification="exact",
        seed=5, staleness_budget=budget,
    )
    victims = list(range(0, 12))
    assert index.delete(victims) == 12
    assert index.delete(victims) == 0  # tombstoning is idempotent
    assert index.n_deleted == 12

    results = index.query_many(queries, threshold=0.4)
    for hits in results:
        assert all(pair.j not in set(victims) for pair in hits)
    if budget == 0.0:
        # The query above crossed the (zero) budget and rebuilt the postings.
        assert index.n_stale_postings == 0
    # Answers are identical before and after a forced rebuild.
    reference = QueryIndex(
        corpus, measure="cosine", threshold=0.6, verification="exact",
        seed=5, staleness_budget=0.0,
    )
    reference.delete(victims)
    assert reference.query_many(queries, threshold=0.4) == results


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("verification", ["bayes", "exact"])
def test_segmented_store_bit_identical_to_monolithic_rebuild(measure, verification):
    """Queries over a many-segment store equal a monolithic scratch rebuild.

    The index is grown through an uneven insert history (including a
    single-row segment) and interleaved deletes; the reference index is
    built in one shot over ``as_collection()`` with the same tombstones.
    """
    corpus = _random_collection(17, n=70)
    queries = corpus[:9]
    grown = QueryIndex(
        corpus[:20], measure=measure, threshold=0.6, verification=verification, seed=11
    )
    grown.insert(corpus[20:21])   # single-row segment
    grown.insert(corpus[21:50])
    grown.delete([3, 21, 40])
    grown.insert(corpus[50:])
    assert grown.n_segments == 4

    scratch = QueryIndex(
        grown.as_collection(),
        measure=measure,
        threshold=0.6,
        verification=verification,
        seed=11,
    )
    assert scratch.n_segments == 1
    scratch.delete([3, 21, 40])

    assert grown.query_many(queries, threshold=0.55) == scratch.query_many(
        queries, threshold=0.55
    )
    assert grown.top_k_many(queries, k=6) == scratch.top_k_many(queries, k=6)
    if verification == "bayes":
        assert grown.top_k_many(queries, k=6, rank_by="estimate") == scratch.top_k_many(
            queries, k=6, rank_by="estimate"
        )


@pytest.mark.parametrize("measure", MEASURES)
def test_estimate_top_k_batched_equals_looped_and_matches_query_estimates(measure):
    corpus = _random_collection(19, n=60)
    index = QueryIndex(corpus, measure=measure, threshold=0.6, seed=2)
    index.insert(_random_collection(20, n=15))
    queries = _random_collection(21, n=7)[:, : corpus.shape[1]]
    queries[:3] = corpus[:3]

    batched = index.top_k_many(queries, k=5, floor_threshold=0.3, rank_by="estimate")
    looped = [
        index.top_k(queries[i], k=5, floor_threshold=0.3, rank_by="estimate")
        for i in range(len(queries))
    ]
    assert batched == looped

    # The ranking values are exactly the posterior MAP estimates the
    # threshold path reports for the same (query, candidate) pairs.
    by_pair = {
        (position, pair.j): pair.similarity
        for position, hits in enumerate(index.query_many(queries, threshold=0.35))
        for pair in hits
    }
    for position, ranked in enumerate(batched):
        similarities = [pair.similarity for pair in ranked]
        assert similarities == sorted(similarities, reverse=True)
        for pair in ranked:
            key = (position, pair.j)
            if key in by_pair:
                assert pair.similarity == by_pair[key]


def test_estimate_top_k_requires_bayes_verification():
    corpus = _random_collection(23, n=30)
    index = QueryIndex(corpus, measure="cosine", threshold=0.6, verification="exact")
    with pytest.raises(ValueError, match="estimate"):
        index.top_k_many(corpus[:2], k=3, rank_by="estimate")
    with pytest.raises(ValueError, match="rank_by"):
        index.top_k_many(corpus[:2], k=3, rank_by="approximate")


def _layout_index(layout: str, measure: str, verification: str) -> QueryIndex:
    """Build an index in one of the parallel-serving test layouts.

    ``"fresh"`` is a single-segment build; ``"grown"`` accumulates four
    segments through an uneven insert history (including a single-row
    segment) and tombstones rows in three different segments.
    """
    corpus = _random_collection(29, n=70)
    if layout == "fresh":
        return QueryIndex(
            corpus, measure=measure, threshold=0.6, verification=verification, seed=13
        )
    index = QueryIndex(
        corpus[:30], measure=measure, threshold=0.6, verification=verification, seed=13
    )
    index.insert(corpus[30:31])  # single-row segment
    index.insert(corpus[31:55])
    index.insert(corpus[55:])
    index.delete([2, 30, 60])    # tombstones across three segments
    return index


@pytest.mark.parametrize("measure", MEASURES)
@pytest.mark.parametrize("layout", ["fresh", "grown"])
@pytest.mark.parametrize("rank_by", ["exact", "estimate"])
def test_parallel_serving_bit_identical_to_serial(measure, layout, rank_by):
    """n_workers ∈ {1, 2, 4} answers equal the serial batch bit for bit.

    Covers both ranking modes, threshold queries, multi-segment layouts and
    post-delete (tombstoned) indices; also checks the worker pool leaves the
    index in the identical post-call hash state (same per-segment store
    widths as serial execution), so later queries keep agreeing.
    """
    index = _layout_index(layout, measure, "bayes")
    queries = _random_collection(31, n=9)[:, :80]
    queries[:3] = _random_collection(29, n=70)[:3]  # indexed rows in the batch

    serial_topk = index.top_k_many(queries, k=5, floor_threshold=0.2, rank_by=rank_by)
    serial_query = index.query_many(queries, threshold=0.55)
    widths = [segment.store.n_hashes for segment in index._segments.segments]
    for n_workers in (1, 2, 4):
        assert (
            index.top_k_many(
                queries, k=5, floor_threshold=0.2, rank_by=rank_by, n_workers=n_workers
            )
            == serial_topk
        )
        assert index.query_many(queries, threshold=0.55, n_workers=n_workers) == serial_query
        assert [s.store.n_hashes for s in index._segments.segments] == widths


@pytest.mark.parametrize("layout", ["fresh", "grown"])
def test_parallel_serving_exact_verification(layout):
    """The exact-verification index parallelises bit-identically too."""
    index = _layout_index(layout, "cosine", "exact")
    queries = _random_collection(33, n=7)[:, :80]
    serial_query = index.query_many(queries, threshold=0.5)
    serial_topk = index.top_k_many(queries, k=4)
    for n_workers in (2, 4):
        assert index.query_many(queries, threshold=0.5, n_workers=n_workers) == serial_query
        assert index.top_k_many(queries, k=4, n_workers=n_workers) == serial_topk


@pytest.mark.parametrize("measure", ["cosine", "jaccard"])
def test_parallel_serving_non_word_aligned_rounds(measure):
    """k=48 rounds straddle word/publication boundaries; stitching must hold.

    With a 48-hash round width the verification windows are not multiples of
    the 32-bit word size or of the families' extension block sizes, so the
    workers' shared-memory column sources must stitch windows across the
    fork-inherited/published piece boundaries — the merged answers (and the
    post-call store widths) must still equal serial execution bit for bit.
    """
    corpus = _random_collection(39, n=60)
    queries = _random_collection(40, n=7)[:, :80]

    def build() -> QueryIndex:
        index = QueryIndex(corpus[:40], measure=measure, threshold=0.6, seed=17, k=48)
        index.insert(corpus[40:])
        index.delete([5, 45])
        return index

    serial_index, parallel_index = build(), build()
    serial = serial_index.query_many(queries, threshold=0.55)
    assert parallel_index.query_many(queries, threshold=0.55, n_workers=3) == serial
    assert [s.store.n_hashes for s in parallel_index._segments.segments] == [
        s.store.n_hashes for s in serial_index._segments.segments
    ]
    # Both indices keep answering identically afterwards (hash state equal).
    assert parallel_index.top_k_many(queries, k=4, rank_by="estimate") == (
        serial_index.top_k_many(queries, k=4, rank_by="estimate")
    )


def test_parallel_serving_validates_n_workers():
    index = QueryIndex(_random_collection(35, n=20), measure="cosine", threshold=0.6)
    with pytest.raises(ValueError, match="n_workers"):
        index.query_many(_random_collection(36, n=2)[:, :80], n_workers=0)


def test_parallel_serving_empty_batch_and_empty_rows():
    """Degenerate batches (all-empty queries) skip the pool entirely."""
    index = QueryIndex(_random_collection(37, n=20), measure="cosine", threshold=0.6)
    empty = np.zeros((3, 80))
    assert index.query_many(empty, n_workers=4) == [[], [], []]
    assert index.top_k_many(empty, k=3, n_workers=4) == [[], [], []]


def test_insert_accepts_token_sets_and_dicts():
    sets = [{0, 3, 5}, {1, 2}, {0, 3, 6}, {2, 4, 7}, {1, 5, 6}, {0, 1, 2, 3}]
    index = QueryIndex(
        VectorCollection.from_sets(sets, n_features=16),
        measure="jaccard",
        threshold=0.4,
        verification="exact",
        seed=0,
    )
    rows = index.insert([{0, 3, 5, 9}, {8, 9}])
    assert rows.tolist() == [6, 7]
    hits = index.query({0, 3, 5}, threshold=0.5)
    assert 6 in {pair.j for pair in hits}

    dict_rows = index.insert([{10: 1.0, 11: 2.0}])
    assert dict_rows.tolist() == [8]
    assert index.n_indexed == 9
