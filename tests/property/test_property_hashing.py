"""Property-based tests for the hashing substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hashing.quantization import dequantize_floats, quantize_floats
from repro.hashing.signatures import BitSignatures, IntSignatures
from repro.hashing.simhash import collision_to_cosine, cosine_to_collision

_SETTINGS = settings(max_examples=50, deadline=None)


class TestQuantizationProperties:
    @_SETTINGS
    @given(
        st.lists(
            st.floats(min_value=-7.99, max_value=7.99, allow_nan=False), min_size=1, max_size=200
        )
    )
    def test_round_trip_error_bound(self, values):
        array = np.asarray(values)
        recovered = dequantize_floats(quantize_floats(array))
        assert np.max(np.abs(recovered - array)) <= 16 / (1 << 16)

    @_SETTINGS
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=100))
    def test_codes_always_fit_uint16(self, values):
        codes = quantize_floats(np.asarray(values))
        assert codes.dtype == np.uint16
        decoded = dequantize_floats(codes)
        assert np.all(decoded >= -8.0) and np.all(decoded <= 8.0)


class TestConversionProperties:
    @_SETTINGS
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_c2r_r2c_round_trip(self, cosine):
        assert abs(collision_to_cosine(cosine_to_collision(cosine)) - cosine) < 1e-9

    @_SETTINGS
    @given(st.floats(min_value=0.5, max_value=1.0))
    def test_r2c_c2r_round_trip(self, collision):
        assert abs(cosine_to_collision(collision_to_cosine(collision)) - collision) < 1e-9

    @_SETTINGS
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_collision_range(self, cosine):
        collision = float(cosine_to_collision(cosine))
        assert 0.5 - 1e-12 <= collision <= 1.0 + 1e-12


bit_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda rows: st.integers(min_value=1, max_value=3).map(lambda words: (rows, words * 32))
)


class TestSignatureStoreProperties:
    @_SETTINGS
    @given(bit_matrices, st.integers(min_value=0, max_value=2**31))
    def test_bit_count_matches_reference(self, shape, seed):
        rows, n_bits = shape
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, n_bits)).astype(np.uint8)
        store = BitSignatures(rows)
        store.append_bits(bits)
        i = int(rng.integers(0, rows))
        j = int(rng.integers(0, rows))
        start = int(rng.integers(0, n_bits))
        end = int(rng.integers(start, n_bits + 1))
        expected = int(np.sum(bits[i, start:end] == bits[j, start:end]))
        assert store.count_matches(i, j, start, end) == expected

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2**31))
    def test_int_count_matches_reference(self, rows, n_hashes, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 4, size=(rows, n_hashes)).astype(np.int64)
        store = IntSignatures(rows)
        store.append_values(values)
        i = int(rng.integers(0, rows))
        j = int(rng.integers(0, rows))
        expected = int(np.sum(values[i] == values[j]))
        assert store.count_matches(i, j, 0, n_hashes) == expected
        assert store.count_matches(i, i, 0, n_hashes) == n_hashes
