"""Shared fixtures for the BayesLSH test-suite.

Fixtures are deliberately small: most algorithmic properties can be checked
on collections of a few dozen to a few hundred vectors, and keeping them
small keeps the full suite fast enough to run on every change.
"""

from __future__ import annotations

import gc
import re
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.io import pending_temp_files
from repro.datasets.synthetic import synthetic_graph, synthetic_text_corpus
from repro.similarity.transforms import tfidf_weighting
from repro.similarity.vectors import VectorCollection

_SHM_DIR = Path("/dev/shm")
_PROC_MAPS = Path("/proc/self/maps")
#: flat-layout member files carry a generation stamp — ``name.g<N>.bin``
_FLAT_MEMBER_RE = re.compile(r"\.g\d+\.bin$")


@pytest.fixture(autouse=True)
def shm_leak_audit():
    """Fail any test that leaves a stray shared-memory segment behind.

    The worker pools publish signature columns as POSIX shared memory
    (``/dev/shm/psm_*`` through :mod:`multiprocessing.shared_memory`); every
    call site must tear its pool down on all paths, including exceptions and
    injected worker crashes.  Comparing the directory before and after each
    test catches any leak at its source.  Only ``psm_*`` names are audited —
    other processes own the rest of ``/dev/shm``.
    """
    if not _SHM_DIR.is_dir():  # non-Linux dev boxes: nothing to audit
        yield
        return
    before = {entry.name for entry in _SHM_DIR.iterdir()}
    yield
    after = {entry.name for entry in _SHM_DIR.iterdir()}
    leaked = sorted(name for name in after - before if name.startswith("psm_"))
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


def _mapped_flat_members() -> set[str]:
    """Flat-layout member files currently memory-mapped into this process."""
    try:
        lines = _PROC_MAPS.read_text().splitlines()
    except OSError:
        return set()
    mapped = set()
    for line in lines:
        parts = line.rsplit(maxsplit=1)
        if len(parts) == 2 and _FLAT_MEMBER_RE.search(parts[1]):
            mapped.add(parts[1])
    return mapped


@pytest.fixture(autouse=True)
def mmap_leak_audit():
    """Fail any test that leaves flat-layout member files mapped behind.

    ``storage="mmap"`` loads publish snapshot arrays as ``np.memmap`` views;
    the mapping lives exactly as long as the arrays do, so a test that drops
    its index must drop the mappings with it.  Mappings a module-scoped
    fixture holds across tests appear in the *before* snapshot (pytest
    instantiates higher-scoped fixtures first) and are exempt.  A reference
    cycle can delay the unmap past the test's end without being a leak, so a
    mismatch is re-checked once after a full ``gc.collect()``.
    """
    if not _PROC_MAPS.exists():  # non-Linux dev boxes: nothing to audit
        yield
        return
    before = _mapped_flat_members()
    yield
    leaked = _mapped_flat_members() - before
    if leaked:
        gc.collect()
        leaked = _mapped_flat_members() - before
    assert not leaked, f"test left flat-layout files mapped: {sorted(leaked)}"


@pytest.fixture(autouse=True)
def temp_file_leak_audit():
    """Fail any test whose atomic writers abandoned a temp file.

    Every on-disk artefact goes through
    :func:`repro.datasets.io.atomic_writer`, which registers its temp file
    until commit or cleanup.  The registry must be empty between tests; the
    deliberate leftovers of injected crashes are exempt (the writer drops
    them from the registry on ``InjectedCrash``, mirroring a real crash).
    """
    yield
    pending = sorted(str(path) for path in pending_temp_files())
    assert not pending, f"test leaked atomic-writer temp files: {pending}"


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dense_collection() -> VectorCollection:
    """40 dense non-negative vectors in 12 dimensions."""
    generator = np.random.default_rng(7)
    return VectorCollection.from_dense(generator.random((40, 12)))


@pytest.fixture(scope="session")
def sparse_text_collection() -> VectorCollection:
    """A small TF-IDF weighted text corpus with planted near-duplicates."""
    corpus = synthetic_text_corpus(
        n_documents=150,
        vocabulary_size=600,
        average_length=30,
        duplicate_fraction=0.4,
        cluster_size=3,
        mutation_rate=0.1,
        seed=11,
    )
    return tfidf_weighting(corpus.collection)


@pytest.fixture(scope="session")
def sparse_text_dataset(sparse_text_collection) -> Dataset:
    return Dataset(sparse_text_collection, name="test-text")


@pytest.fixture(scope="session")
def binary_sets_collection() -> VectorCollection:
    """A small binary collection (sets) with overlapping supports."""
    corpus = synthetic_text_corpus(
        n_documents=120,
        vocabulary_size=400,
        average_length=25,
        duplicate_fraction=0.4,
        cluster_size=3,
        mutation_rate=0.08,
        seed=23,
    )
    return corpus.collection.binarized()


@pytest.fixture(scope="session")
def graph_dataset() -> Dataset:
    """A small community graph with TF-IDF weighted adjacency rows."""
    graph = synthetic_graph(
        n_nodes=200,
        average_degree=12,
        n_communities=10,
        within_community_fraction=0.85,
        seed=31,
    )
    return Dataset(tfidf_weighting(graph.collection), name="test-graph")


@pytest.fixture()
def tiny_collection() -> VectorCollection:
    """A hand-constructed collection where exact similarities are easy to verify."""
    rows = [
        {0: 1.0, 1: 1.0, 2: 1.0},          # 0
        {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0},  # 1: high overlap with 0
        {4: 2.0, 5: 1.0},                  # 2
        {4: 2.0, 5: 1.0, 6: 0.5},          # 3: high overlap with 2
        {7: 1.0},                          # 4: isolated
        {},                                # 5: empty
    ]
    return VectorCollection.from_dicts(rows, n_features=8)
