"""Unit tests for the brute-force candidate generator."""

import numpy as np

from repro.candidates.brute_force import BruteForceGenerator
from repro.similarity.vectors import VectorCollection


class TestBruteForce:
    def test_all_pairs_mode(self, tiny_collection):
        generator = BruteForceGenerator("cosine", 0.5, require_shared_feature=False)
        candidate_set = generator.generate(tiny_collection)
        n = tiny_collection.n_vectors
        assert len(candidate_set) == n * (n - 1) // 2

    def test_shared_feature_mode(self, tiny_collection):
        generator = BruteForceGenerator("cosine", 0.5, require_shared_feature=True)
        candidate_set = generator.generate(tiny_collection)
        # only (0,1) and (2,3) share features in the tiny collection
        assert candidate_set.as_set() == {(0, 1), (2, 3)}

    def test_shared_feature_mode_is_superset_of_true_pairs(self, sparse_text_collection):
        from repro.similarity.measures import cosine_similarity

        generator = BruteForceGenerator("cosine", 0.5)
        candidate_set = generator.generate(sparse_text_collection).as_set()
        normalized = sparse_text_collection.normalized()
        rng = np.random.default_rng(0)
        for _ in range(300):
            i, j = rng.integers(0, sparse_text_collection.n_vectors, size=2)
            if i == j:
                continue
            if cosine_similarity(normalized, int(i), int(j)) > 0.5:
                pair = (min(i, j), max(i, j))
                assert (int(pair[0]), int(pair[1])) in candidate_set

    def test_single_vector(self):
        collection = VectorCollection.from_dicts([{0: 1.0}], n_features=2)
        assert len(BruteForceGenerator("cosine", 0.5).generate(collection)) == 0

    def test_empty_collection(self):
        collection = VectorCollection.from_dense(np.zeros((0, 3)))
        assert len(BruteForceGenerator("cosine", 0.5).generate(collection)) == 0

    def test_metadata_records_generator(self, tiny_collection):
        candidate_set = BruteForceGenerator("cosine", 0.5).generate(tiny_collection)
        assert candidate_set.metadata["generator"] == "brute_force"
