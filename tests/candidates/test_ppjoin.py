"""Unit tests for the PPJoin+ candidate generator."""

import pytest

from repro.candidates.ppjoin import PPJoinGenerator, _minimum_overlap
from repro.evaluation.ground_truth import exact_all_pairs
from repro.similarity.vectors import VectorCollection


class TestMinimumOverlap:
    def test_jaccard_formula(self):
        # alpha = t/(1+t) (|x| + |y|)
        assert _minimum_overlap("jaccard", 0.5, 10, 20) == pytest.approx(10.0)

    def test_binary_cosine_formula(self):
        assert _minimum_overlap("binary_cosine", 0.5, 16, 4) == pytest.approx(4.0)

    def test_overlap_threshold_is_sufficient(self):
        # two sets of sizes 10 and 20 overlapping in exactly alpha tokens reach t
        size_x, size_y, t = 10, 20, 0.5
        alpha = _minimum_overlap("jaccard", t, size_x, size_y)
        jaccard = alpha / (size_x + size_y - alpha)
        assert jaccard == pytest.approx(t)


class TestPPJoinCompleteness:
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7])
    def test_complete_for_jaccard(self, binary_sets_collection, threshold):
        truth = exact_all_pairs(binary_sets_collection, threshold, "jaccard")
        candidates = PPJoinGenerator("jaccard", threshold).generate(binary_sets_collection)
        assert truth.pair_set() <= candidates.as_set()

    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.9])
    def test_complete_for_binary_cosine(self, binary_sets_collection, threshold):
        truth = exact_all_pairs(binary_sets_collection, threshold, "binary_cosine")
        candidates = PPJoinGenerator("binary_cosine", threshold).generate(
            binary_sets_collection
        )
        assert truth.pair_set() <= candidates.as_set()

    def test_filters_can_be_disabled(self, binary_sets_collection):
        full = PPJoinGenerator("jaccard", 0.5).generate(binary_sets_collection)
        plain = PPJoinGenerator(
            "jaccard", 0.5, use_positional_filter=False, use_suffix_filter=False
        ).generate(binary_sets_collection)
        # disabling filters can only add candidates
        assert full.as_set() <= plain.as_set()


class TestPPJoinPruning:
    def test_prunes_relative_to_shared_feature_pairs(self, binary_sets_collection):
        from repro.candidates.brute_force import BruteForceGenerator

        ppjoin = PPJoinGenerator("jaccard", 0.5).generate(binary_sets_collection)
        brute = BruteForceGenerator("jaccard", 0.5).generate(binary_sets_collection)
        assert len(ppjoin) < len(brute)

    def test_metadata_counters(self, binary_sets_collection):
        candidates = PPJoinGenerator("jaccard", 0.5).generate(binary_sets_collection)
        assert candidates.metadata["generator"] == "ppjoin"
        assert candidates.metadata["n_prefix_collisions"] >= len(candidates)

    def test_higher_threshold_prunes_more(self, binary_sets_collection):
        low = PPJoinGenerator("jaccard", 0.3).generate(binary_sets_collection)
        high = PPJoinGenerator("jaccard", 0.7).generate(binary_sets_collection)
        assert len(high) < len(low)


class TestPPJoinEdgeCases:
    def test_rejects_weighted_cosine(self):
        with pytest.raises(ValueError):
            PPJoinGenerator("cosine", 0.5)

    def test_tiny_collection(self):
        collection = VectorCollection.from_sets(
            [{0, 1, 2}, {0, 1, 2, 3}, {7, 8}, set()], n_features=9
        )
        candidates = PPJoinGenerator("jaccard", 0.5).generate(collection)
        assert (0, 1) in candidates.as_set()
        assert (2, 3) not in candidates.as_set()

    def test_single_vector(self):
        collection = VectorCollection.from_sets([{0, 1}], n_features=3)
        assert len(PPJoinGenerator("jaccard", 0.5).generate(collection)) == 0
