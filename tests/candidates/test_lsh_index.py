"""Unit tests for the banded LSH candidate generator."""

import numpy as np
import pytest

from repro.candidates.lsh_index import LSHGenerator, signatures_for_false_negative_rate
from repro.evaluation.ground_truth import exact_all_pairs
from repro.hashing.base import get_hash_family


class TestSignatureCountFormula:
    def test_matches_closed_form(self):
        import math

        for p, k, fn in [(0.7, 4, 0.03), (0.9, 8, 0.05), (0.5, 3, 0.1)]:
            expected = math.ceil(math.log(fn) / math.log(1 - p**k))
            assert signatures_for_false_negative_rate(p, k, fn) == expected

    def test_higher_recall_needs_more_signatures(self):
        low = signatures_for_false_negative_rate(0.7, 8, 0.1)
        high = signatures_for_false_negative_rate(0.7, 8, 0.01)
        assert high > low

    def test_wider_signatures_need_more_bands(self):
        narrow = signatures_for_false_negative_rate(0.7, 4, 0.03)
        wide = signatures_for_false_negative_rate(0.7, 12, 0.03)
        assert wide > narrow

    def test_validation(self):
        with pytest.raises(ValueError):
            signatures_for_false_negative_rate(0.0, 4, 0.03)
        with pytest.raises(ValueError):
            signatures_for_false_negative_rate(0.7, 0, 0.03)
        with pytest.raises(ValueError):
            signatures_for_false_negative_rate(0.7, 4, 1.5)

    def test_capped(self):
        assert signatures_for_false_negative_rate(0.05, 16, 0.001) <= 2000


class TestLSHGeneratorCosine:
    def test_recall_of_candidate_set(self, sparse_text_dataset):
        """Pairs above the threshold should rarely be missed (fn rate 0.03)."""
        threshold = 0.7
        truth = exact_all_pairs(sparse_text_dataset, threshold, "cosine")
        generator = LSHGenerator("cosine", threshold, false_negative_rate=0.03, seed=1)
        candidates = generator.generate(sparse_text_dataset.collection).as_set()
        missed = [pair for pair in truth.pair_set() if pair not in candidates]
        assert len(missed) <= max(2, 0.1 * len(truth))

    def test_candidate_set_smaller_than_all_pairs(self, sparse_text_dataset):
        n = sparse_text_dataset.n_vectors
        generator = LSHGenerator("cosine", 0.7, seed=1)
        candidates = generator.generate(sparse_text_dataset.collection)
        assert 0 < len(candidates) < n * (n - 1) // 2

    def test_metadata(self, sparse_text_dataset):
        generator = LSHGenerator("cosine", 0.7, seed=1)
        candidates = generator.generate(sparse_text_dataset.collection)
        assert candidates.metadata["generator"] == "lsh"
        assert candidates.metadata["n_signatures"] == generator.n_signatures
        assert candidates.metadata["n_raw_collisions"] >= len(candidates)

    def test_family_reuse(self, sparse_text_dataset):
        prepared = sparse_text_dataset.collection.normalized()
        family = get_hash_family("simhash", prepared, seed=3)
        generator = LSHGenerator("cosine", 0.7, family=family, seed=3)
        generator.generate(sparse_text_dataset.collection)
        assert generator.family is family
        assert family.n_hashes >= generator.n_signatures * generator.signature_width

    def test_higher_threshold_fewer_candidates(self, sparse_text_dataset):
        low = LSHGenerator("cosine", 0.5, seed=2).generate(sparse_text_dataset.collection)
        high = LSHGenerator("cosine", 0.9, seed=2).generate(sparse_text_dataset.collection)
        assert len(high) < len(low)


class TestLSHGeneratorJaccard:
    def test_recall_of_candidate_set(self, binary_sets_collection):
        threshold = 0.5
        truth = exact_all_pairs(binary_sets_collection, threshold, "jaccard")
        generator = LSHGenerator("jaccard", threshold, false_negative_rate=0.03, seed=5)
        candidates = generator.generate(binary_sets_collection).as_set()
        missed = [pair for pair in truth.pair_set() if pair not in candidates]
        assert len(missed) <= max(2, 0.1 * len(truth))

    def test_collision_probability_is_threshold(self):
        generator = LSHGenerator("jaccard", 0.4)
        assert generator.measure_collision_probability() == pytest.approx(0.4)

    def test_collision_probability_cosine_uses_conversion(self):
        generator = LSHGenerator("cosine", 0.5)
        assert generator.measure_collision_probability() == pytest.approx(1 - np.arccos(0.5) / np.pi)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LSHGenerator("cosine", 0.7, false_negative_rate=0.0)
        with pytest.raises(ValueError):
            LSHGenerator("cosine", 0.7, signature_width=0)
