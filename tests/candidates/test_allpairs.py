"""Unit tests for the AllPairs candidate generator."""

import numpy as np
import pytest

from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.brute_force import BruteForceGenerator
from repro.evaluation.ground_truth import exact_all_pairs
from repro.similarity.vectors import VectorCollection


class TestAllPairsCompleteness:
    """The essential property: no pair above the threshold is missed."""

    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.9])
    def test_complete_on_text_corpus(self, sparse_text_dataset, threshold):
        truth = exact_all_pairs(sparse_text_dataset, threshold, "cosine")
        candidates = AllPairsGenerator("cosine", threshold).generate(
            sparse_text_dataset.collection
        )
        assert truth.pair_set() <= candidates.as_set()

    def test_complete_on_graph(self, graph_dataset):
        truth = exact_all_pairs(graph_dataset, 0.6, "cosine")
        candidates = AllPairsGenerator("cosine", 0.6).generate(graph_dataset.collection)
        assert truth.pair_set() <= candidates.as_set()

    def test_complete_on_binary_cosine(self, binary_sets_collection):
        truth = exact_all_pairs(binary_sets_collection, 0.7, "binary_cosine")
        candidates = AllPairsGenerator("binary_cosine", 0.7).generate(binary_sets_collection)
        assert truth.pair_set() <= candidates.as_set()


class TestAllPairsPruning:
    def test_fewer_candidates_than_shared_feature_pairs(self, sparse_text_dataset):
        """The partial index must prune relative to 'any shared feature'."""
        threshold = 0.7
        allpairs = AllPairsGenerator("cosine", threshold).generate(
            sparse_text_dataset.collection
        )
        brute = BruteForceGenerator("cosine", threshold).generate(
            sparse_text_dataset.collection
        )
        assert len(allpairs) < len(brute)

    def test_higher_threshold_prunes_more(self, sparse_text_dataset):
        low = AllPairsGenerator("cosine", 0.5).generate(sparse_text_dataset.collection)
        high = AllPairsGenerator("cosine", 0.9).generate(sparse_text_dataset.collection)
        assert len(high) < len(low)

    def test_metadata_counters(self, sparse_text_dataset):
        candidates = AllPairsGenerator("cosine", 0.7).generate(sparse_text_dataset.collection)
        assert candidates.metadata["generator"] == "allpairs"
        assert candidates.metadata["index_entries"] > 0
        assert candidates.metadata["n_score_accumulations"] >= len(candidates)


class TestAllPairsEdgeCases:
    def test_rejects_jaccard(self):
        with pytest.raises(ValueError, match="cosine"):
            AllPairsGenerator("jaccard", 0.5)

    def test_single_vector(self):
        collection = VectorCollection.from_dicts([{0: 1.0}], n_features=1)
        assert len(AllPairsGenerator("cosine", 0.5).generate(collection)) == 0

    def test_empty_rows_ignored(self):
        collection = VectorCollection.from_dicts(
            [{0: 1.0, 1: 1.0}, {}, {0: 1.0, 1: 1.0}], n_features=2
        )
        candidates = AllPairsGenerator("cosine", 0.5).generate(collection)
        assert candidates.as_set() == {(0, 2)}

    def test_identical_vectors_found_at_high_threshold(self):
        rng = np.random.default_rng(0)
        base = np.abs(rng.random(20))
        data = np.vstack([base, base * 2.0, np.abs(rng.random(20))])
        collection = VectorCollection.from_dense(data)
        candidates = AllPairsGenerator("cosine", 0.95).generate(collection)
        assert (0, 1) in candidates.as_set()

    def test_unweighted_duplicate_detection(self):
        collection = VectorCollection.from_sets(
            [{0, 1, 2, 3}, {0, 1, 2, 3}, {4, 5, 6, 7}], n_features=8
        )
        candidates = AllPairsGenerator("binary_cosine", 0.9).generate(collection)
        assert (0, 1) in candidates.as_set()
        assert (0, 2) not in candidates.as_set()
