"""Unit tests for the candidate-set container and generator base class."""

import numpy as np
import pytest

from repro.candidates.base import CandidateGenerator, CandidateSet
from repro.candidates.brute_force import BruteForceGenerator


class TestCandidateSet:
    def test_from_pairs_canonicalises(self):
        candidate_set = CandidateSet.from_pairs([(3, 1), (1, 3), (2, 2), (0, 4)])
        assert len(candidate_set) == 2
        assert candidate_set.as_set() == {(1, 3), (0, 4)}
        assert np.all(candidate_set.left < candidate_set.right)

    def test_from_pairs_empty(self):
        candidate_set = CandidateSet.from_pairs([])
        assert len(candidate_set) == 0
        assert candidate_set.as_set() == set()

    def test_from_arrays_dedup_and_self_pair_removal(self):
        candidate_set = CandidateSet.from_arrays([1, 2, 2, 5], [2, 1, 2, 0])
        assert candidate_set.as_set() == {(1, 2), (0, 5)}

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(ValueError):
            CandidateSet.from_arrays([1, 2], [3])

    def test_iteration_and_metadata(self):
        candidate_set = CandidateSet.from_pairs([(0, 1), (1, 2)], generator="test")
        assert sorted(candidate_set) == [(0, 1), (1, 2)]
        assert candidate_set.metadata["generator"] == "test"
        assert "n_pairs=2" in repr(candidate_set)


class TestGeneratorBase:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BruteForceGenerator("cosine", threshold=0.0)
        with pytest.raises(ValueError):
            BruteForceGenerator("cosine", threshold=1.0)

    def test_measure_resolution(self):
        generator = BruteForceGenerator("jaccard", threshold=0.5)
        assert generator.measure.name == "jaccard"
        assert generator.threshold == 0.5

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            CandidateGenerator("cosine", 0.5)

    def test_repr(self):
        generator = BruteForceGenerator("cosine", threshold=0.7)
        assert "cosine" in repr(generator)
