"""Unit tests for the minwise hashing family."""

import numpy as np
import pytest

from repro.hashing.minhash import MinHashFamily
from repro.similarity.measures import jaccard_similarity
from repro.similarity.vectors import VectorCollection


class TestMinHashFamily:
    def test_deterministic_given_seed(self, binary_sets_collection):
        a = MinHashFamily(binary_sets_collection, seed=4).signatures(32)
        b = MinHashFamily(binary_sets_collection, seed=4).signatures(32)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_hashes(self, binary_sets_collection):
        a = MinHashFamily(binary_sets_collection, seed=4).signatures(32)
        b = MinHashFamily(binary_sets_collection, seed=5).signatures(32)
        assert not np.array_equal(a.values, b.values)

    def test_extension_preserves_existing(self, binary_sets_collection):
        family = MinHashFamily(binary_sets_collection, seed=0)
        prefix = family.signatures(64).values[:, :64].copy()
        family.signatures(192)
        np.testing.assert_array_equal(family.signatures(0).values[:, :64], prefix)

    def test_identical_sets_identical_signatures(self):
        collection = VectorCollection.from_sets([{1, 5, 9}, {1, 5, 9}], n_features=16)
        store = MinHashFamily(collection, seed=0).signatures(64)
        assert store.count_matches(0, 1, 0, 64) == 64

    def test_disjoint_sets_rarely_collide(self):
        collection = VectorCollection.from_sets([{0, 1, 2}, {10, 11, 12}], n_features=16)
        store = MinHashFamily(collection, seed=0).signatures(128)
        # Disjoint sets have Jaccard 0; collisions can only happen through
        # hash collisions of the universal hash, which are vanishingly rare.
        assert store.count_matches(0, 1, 0, 128) <= 1

    def test_empty_sets_never_collide(self):
        collection = VectorCollection.from_sets([set(), set(), {3}], n_features=8)
        store = MinHashFamily(collection, seed=0).signatures(32)
        assert store.count_matches(0, 1, 0, 32) == 0
        assert store.count_matches(0, 2, 0, 32) == 0

    def test_collision_rate_estimates_jaccard(self, binary_sets_collection):
        """Equation 1: agreement fraction approximates the Jaccard similarity."""
        family = MinHashFamily(binary_sets_collection, seed=17)
        n_hashes = 768
        store = family.signatures(n_hashes)
        rng = np.random.default_rng(1)
        rows = rng.choice(binary_sets_collection.n_vectors, size=(20, 2))
        for i, j in rows:
            i, j = int(i), int(j)
            if i == j:
                continue
            expected = jaccard_similarity(binary_sets_collection, i, j)
            observed = store.count_matches(i, j, 0, n_hashes) / n_hashes
            assert abs(observed - expected) < 0.09

    def test_hash_functions_independent_of_growth_pattern(self):
        """Hash function i must be the same whether signatures grow in one or many steps."""
        from repro.similarity.vectors import VectorCollection

        collection = VectorCollection.from_sets([{1, 5, 9}, {2, 5}], n_features=16)
        one_shot = MinHashFamily(collection, seed=3).signatures(256)
        incremental_family = MinHashFamily(collection, seed=3)
        incremental_family.signatures(64)
        incremental = incremental_family.signatures(256)
        np.testing.assert_array_equal(one_shot.values, incremental.values)

    def test_same_set_same_signature_across_collections(self):
        """Two families with the same seed hash identical sets identically."""
        from repro.similarity.vectors import VectorCollection

        a = VectorCollection.from_sets([{3, 7, 11}, {1, 2}], n_features=20)
        b = VectorCollection.from_sets([{3, 7, 11}], n_features=20)
        store_a = MinHashFamily(a, seed=9).signatures(128)
        store_b = MinHashFamily(b, seed=9).signatures(64)
        np.testing.assert_array_equal(store_a.values[0, :64], store_b.values[0, :64])

    def test_collision_similarity_is_identity(self, binary_sets_collection):
        family = MinHashFamily(binary_sets_collection)
        assert family.collision_similarity(0.42) == pytest.approx(0.42)

    def test_known_jaccard_pair(self):
        # Jaccard 0.5: {0..3} vs {2..5} -> intersection 2, union 6 -> 1/3
        collection = VectorCollection.from_sets([{0, 1, 2, 3}, {2, 3, 4, 5}], n_features=8)
        store = MinHashFamily(collection, seed=21).signatures(1536)
        observed = store.count_matches(0, 1, 0, 1536) / 1536
        assert observed == pytest.approx(1.0 / 3.0, abs=0.05)

    def test_invalid_block_size(self, binary_sets_collection):
        with pytest.raises(ValueError):
            MinHashFamily(binary_sets_collection, block_size=-1)

    def test_negative_hash_request_rejected(self, binary_sets_collection):
        family = MinHashFamily(binary_sets_collection)
        with pytest.raises(ValueError):
            family.signatures(-5)
