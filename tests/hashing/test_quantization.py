"""Unit tests for the 2-byte Gaussian quantisation scheme (Section 4.3)."""

import numpy as np
import pytest

from repro.hashing.quantization import (
    QuantizedGaussian,
    dequantize_floats,
    quantize_floats,
)


class TestQuantizeRoundTrip:
    def test_dtype(self):
        assert quantize_floats(np.zeros(4)).dtype == np.uint16

    def test_max_error_within_half_step(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(100_000)
        recovered = dequantize_floats(quantize_floats(values))
        max_error = np.max(np.abs(recovered - values))
        # mid-point decoding: error at most half the step size 16 / 2**16
        assert max_error <= 16 / (1 << 16) / 2 + 1e-12

    def test_paper_error_bound(self):
        # the paper quotes a maximum error of ~0.0001 for values in (-8, 8)
        rng = np.random.default_rng(1)
        values = rng.uniform(-7.99, 7.99, size=10_000)
        recovered = dequantize_floats(quantize_floats(values))
        assert np.max(np.abs(recovered - values)) < 1.3e-4

    def test_clipping_outside_range(self):
        codes = quantize_floats(np.array([-100.0, 100.0]))
        recovered = dequantize_floats(codes)
        assert recovered[0] == pytest.approx(-8.0, abs=1e-3)
        assert recovered[1] == pytest.approx(8.0, abs=1e-3)

    def test_monotonicity(self):
        values = np.linspace(-7.9, 7.9, 1000)
        codes = quantize_floats(values)
        assert np.all(np.diff(codes.astype(np.int64)) >= 0)


class TestQuantizedGaussian:
    def test_lazy_growth_and_determinism(self):
        first = QuantizedGaussian(50, seed=3)
        chunk_a = first.columns(0, 10)
        chunk_b = first.columns(10, 20)
        fresh = QuantizedGaussian(50, seed=3)
        all_at_once = fresh.columns(0, 20)
        np.testing.assert_allclose(np.hstack([chunk_a, chunk_b]), all_at_once)

    def test_different_seeds_differ(self):
        a = QuantizedGaussian(20, seed=0).columns(0, 5)
        b = QuantizedGaussian(20, seed=1).columns(0, 5)
        assert not np.allclose(a, b)

    def test_quantized_close_to_exact(self):
        quantized = QuantizedGaussian(200, seed=7, quantize=True).columns(0, 50)
        exact = QuantizedGaussian(200, seed=7, quantize=False).columns(0, 50)
        assert np.max(np.abs(quantized - exact)) < 2e-4

    def test_nbytes_savings(self):
        quantized = QuantizedGaussian(500, seed=0, quantize=True)
        exact = QuantizedGaussian(500, seed=0, quantize=False)
        quantized.columns(0, 64)
        exact.columns(0, 64)
        assert quantized.nbytes * 4 == exact.nbytes  # 2 bytes vs 8 bytes per entry

    def test_column_count_tracking(self):
        gaussian = QuantizedGaussian(10, seed=0)
        assert gaussian.n_columns == 0
        gaussian.columns(0, 8)
        assert gaussian.n_columns == 8
        gaussian.columns(0, 4)  # no shrink
        assert gaussian.n_columns == 8

    def test_invalid_ranges(self):
        gaussian = QuantizedGaussian(10, seed=0)
        with pytest.raises(ValueError):
            gaussian.columns(-1, 4)
        with pytest.raises(ValueError):
            gaussian.columns(5, 2)
        with pytest.raises(ValueError):
            QuantizedGaussian(-1)

    def test_gaussian_statistics(self):
        columns = QuantizedGaussian(2000, seed=11).columns(0, 20)
        assert abs(columns.mean()) < 0.02
        assert abs(columns.std() - 1.0) < 0.02
