"""Unit tests for the signed-random-projection (SimHash) family."""

import numpy as np
import pytest

from repro.hashing.simhash import (
    SimHashFamily,
    collision_to_cosine,
    cosine_to_collision,
)
from repro.similarity.measures import cosine_similarity
from repro.similarity.vectors import VectorCollection


class TestConversions:
    def test_round_trip(self):
        for cosine in (0.0, 0.3, 0.7, 0.95, 1.0):
            assert collision_to_cosine(cosine_to_collision(cosine)) == pytest.approx(cosine, abs=1e-12)

    def test_known_values(self):
        assert cosine_to_collision(1.0) == pytest.approx(1.0)
        assert cosine_to_collision(0.0) == pytest.approx(0.5)
        assert collision_to_cosine(0.75) == pytest.approx(np.cos(np.pi * 0.25))

    def test_monotonicity(self):
        cosines = np.linspace(0, 1, 50)
        collisions = cosine_to_collision(cosines)
        assert np.all(np.diff(collisions) > 0)

    def test_range_for_nonnegative_data(self):
        collisions = cosine_to_collision(np.linspace(0, 1, 20))
        assert collisions.min() >= 0.5
        assert collisions.max() <= 1.0


class TestSimHashFamily:
    def test_signature_store_grows_lazily(self, small_dense_collection):
        family = SimHashFamily(small_dense_collection, seed=0)
        store = family.signatures(10)
        assert store.n_hashes >= 10
        first = store.n_hashes
        family.signatures(first + 100)
        assert family.signatures(0).n_hashes >= first + 100

    def test_deterministic_given_seed(self, small_dense_collection):
        a = SimHashFamily(small_dense_collection, seed=5).signatures(64)
        b = SimHashFamily(small_dense_collection, seed=5).signatures(64)
        np.testing.assert_array_equal(a.words, b.words)

    def test_seed_changes_hashes(self, small_dense_collection):
        a = SimHashFamily(small_dense_collection, seed=5).signatures(64)
        b = SimHashFamily(small_dense_collection, seed=6).signatures(64)
        assert not np.array_equal(a.words, b.words)

    def test_extension_preserves_existing_hashes(self, small_dense_collection):
        family = SimHashFamily(small_dense_collection, seed=1)
        short = family.signatures(64)
        prefix = short.words[:, :2].copy()
        family.signatures(256)
        np.testing.assert_array_equal(family.signatures(0).words[:, :2], prefix)

    def test_collision_rate_estimates_angle(self, sparse_text_collection):
        """Equation 1: hash agreement fraction approximates 1 - theta/pi."""
        family = SimHashFamily(sparse_text_collection, seed=9)
        n_hashes = 2048
        store = family.signatures(n_hashes)
        rng = np.random.default_rng(0)
        rows = rng.choice(sparse_text_collection.n_vectors, size=(20, 2))
        for i, j in rows:
            i, j = int(i), int(j)
            if i == j:
                continue
            cosine = cosine_similarity(sparse_text_collection, i, j)
            expected = cosine_to_collision(cosine)
            observed = store.count_matches(i, j, 0, n_hashes) / n_hashes
            # standard error ~ sqrt(p(1-p)/n) <= 0.011; allow 5 sigma
            assert abs(observed - expected) < 0.06

    def test_identical_vectors_always_collide(self):
        data = np.abs(np.random.default_rng(2).random((2, 30)))
        collection = VectorCollection.from_dense(np.vstack([data[0], data[0]]))
        store = SimHashFamily(collection, seed=0).signatures(256)
        assert store.count_matches(0, 1, 0, 256) == 256

    def test_quantized_matches_exact_projections(self, small_dense_collection):
        quantized = SimHashFamily(small_dense_collection, seed=3, quantize=True).signatures(512)
        exact = SimHashFamily(small_dense_collection, seed=3, quantize=False).signatures(512)
        # quantisation may flip only hashes whose projection is ~0; allow a tiny fraction
        total = small_dense_collection.n_vectors * 512
        differing = np.sum(
            np.bitwise_count(np.bitwise_xor(quantized.words, exact.words)).astype(int)
        )
        assert differing / total < 0.01

    def test_collision_similarity_mapping(self, small_dense_collection):
        family = SimHashFamily(small_dense_collection)
        assert family.collision_similarity(0.7) == pytest.approx(float(cosine_to_collision(0.7)))

    def test_invalid_block_size(self, small_dense_collection):
        with pytest.raises(ValueError):
            SimHashFamily(small_dense_collection, block_size=0)

    def test_repr(self, small_dense_collection):
        assert "SimHashFamily" in repr(SimHashFamily(small_dense_collection))
