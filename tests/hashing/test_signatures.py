"""Unit tests for the signature stores."""

import numpy as np
import pytest

from repro.hashing.signatures import BitSignatures, IntSignatures


class TestBitSignatures:
    def _store_with_bits(self, bits):
        bits = np.asarray(bits, dtype=np.uint8)
        store = BitSignatures(bits.shape[0])
        store.append_bits(bits)
        return store

    def test_empty_store(self):
        store = BitSignatures(3)
        assert store.n_vectors == 3
        assert store.n_hashes == 0

    def test_append_and_count(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 64)).astype(np.uint8)
        store = self._store_with_bits(bits)
        assert store.n_hashes == 64
        for i, j in [(0, 1), (2, 4), (3, 3)]:
            expected = int(np.sum(bits[i] == bits[j]))
            assert store.count_matches(i, j, 0, 64) == expected

    def test_count_matches_subrange_word_aligned(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(4, 128)).astype(np.uint8)
        store = self._store_with_bits(bits)
        expected = int(np.sum(bits[0, 32:96] == bits[1, 32:96]))
        assert store.count_matches(0, 1, 32, 96) == expected

    def test_count_matches_unaligned_range(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=(2, 64)).astype(np.uint8)
        store = self._store_with_bits(bits)
        expected = int(np.sum(bits[0, 5:40] == bits[1, 5:40]))
        assert store.count_matches(0, 1, 5, 40) == expected

    def test_count_matches_empty_range(self):
        store = self._store_with_bits(np.zeros((2, 32), dtype=np.uint8))
        assert store.count_matches(0, 1, 10, 10) == 0

    def test_count_matches_out_of_range(self):
        store = self._store_with_bits(np.zeros((2, 32), dtype=np.uint8))
        with pytest.raises(IndexError):
            store.count_matches(0, 1, 0, 64)

    def test_count_matches_many_matches_scalar(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(6, 96)).astype(np.uint8)
        store = self._store_with_bits(bits)
        left = np.array([0, 1, 2])
        right = np.array([3, 4, 5])
        batch = store.count_matches_many(left, right, 32, 96)
        singles = [store.count_matches(i, j, 32, 96) for i, j in zip(left, right)]
        assert batch.tolist() == singles

    def test_count_matches_many_unaligned_matches_scalar(self):
        rng = np.random.default_rng(13)
        bits = rng.integers(0, 2, size=(8, 96)).astype(np.uint8)
        store = self._store_with_bits(bits)
        left = rng.integers(0, 8, size=20)
        right = rng.integers(0, 8, size=20)
        for start, end in [(5, 40), (0, 17), (33, 96), (31, 33), (63, 64), (5, 6)]:
            batch = store.count_matches_many(left, right, start, end)
            singles = [
                int(np.sum(bits[i, start:end] == bits[j, start:end]))
                for i, j in zip(left, right)
            ]
            assert batch.tolist() == singles, (start, end)

    def test_count_matches_rounds_matches_per_round(self):
        rng = np.random.default_rng(14)
        bits = rng.integers(0, 2, size=(10, 256)).astype(np.uint8)
        store = self._store_with_bits(bits)
        left = rng.integers(0, 10, size=30)
        right = rng.integers(0, 10, size=30)
        # word-aligned fast path and the unaligned fallback
        for start, end, width in [(32, 160, 32), (0, 256, 64), (8, 28, 10)]:
            rounds = store.count_matches_rounds(left, right, start, end, width)
            assert rounds.shape == (30, (end - start) // width)
            for r in range((end - start) // width):
                expected = store.count_matches_many(
                    left, right, start + r * width, start + (r + 1) * width
                )
                assert rounds[:, r].tolist() == expected.tolist()

    def test_count_matches_rounds_rejects_ragged_span(self):
        store = self._store_with_bits(np.zeros((2, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="whole number of rounds"):
            store.count_matches_rounds(np.array([0]), np.array([1]), 0, 50, 32)

    def test_get_bits_round_trip(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=(3, 64)).astype(np.uint8)
        store = self._store_with_bits(bits)
        np.testing.assert_array_equal(store.get_bits(1, 0, 64), bits[1])
        np.testing.assert_array_equal(store.get_bits(2, 10, 50), bits[2, 10:50])

    def test_incremental_append_preserves_prefix(self):
        rng = np.random.default_rng(5)
        first = rng.integers(0, 2, size=(3, 32)).astype(np.uint8)
        second = rng.integers(0, 2, size=(3, 32)).astype(np.uint8)
        store = BitSignatures(3)
        store.append_bits(first)
        before = store.get_bits(0, 0, 32).copy()
        store.append_bits(second)
        np.testing.assert_array_equal(store.get_bits(0, 0, 32), before)
        np.testing.assert_array_equal(store.get_bits(0, 32, 64), second[0])

    def test_append_shape_validation(self):
        store = BitSignatures(3)
        with pytest.raises(ValueError, match="shape"):
            store.append_bits(np.zeros((2, 32), dtype=np.uint8))

    def test_band_key_distinguishes_bands(self):
        bits = np.zeros((2, 64), dtype=np.uint8)
        bits[0, :32] = 1
        store = self._store_with_bits(bits)
        assert store.band_key(0, 0, 32) != store.band_key(0, 1, 32)
        assert store.band_key(0, 1, 32) == store.band_key(1, 1, 32)

    def test_agreement_fraction(self):
        bits = np.zeros((2, 32), dtype=np.uint8)
        bits[1, :16] = 1
        store = self._store_with_bits(bits)
        assert store.agreement_fraction(0, 1, 32) == pytest.approx(0.5)
        assert store.agreement_fraction(0, 1, 0) == 0.0


class TestIntSignatures:
    def _store_with_values(self, values):
        values = np.asarray(values, dtype=np.int64)
        store = IntSignatures(values.shape[0])
        store.append_values(values)
        return store

    def test_count_matches(self):
        values = np.array([[1, 2, 3, 4], [1, 9, 3, 8], [1, 2, 3, 4]])
        store = self._store_with_values(values)
        assert store.count_matches(0, 1, 0, 4) == 2
        assert store.count_matches(0, 2, 0, 4) == 4
        assert store.count_matches(0, 1, 1, 3) == 1

    def test_count_matches_many(self):
        values = np.array([[1, 2], [1, 3], [5, 2], [1, 2]])
        store = self._store_with_values(values)
        batch = store.count_matches_many(np.array([0, 0, 0]), np.array([1, 2, 3]), 0, 2)
        assert batch.tolist() == [1, 1, 2]

    def test_incremental_append(self):
        store = IntSignatures(2)
        store.append_values(np.array([[1, 2], [1, 5]]))
        store.append_values(np.array([[7], [7]]))
        assert store.n_hashes == 3
        assert store.count_matches(0, 1, 0, 3) == 2

    def test_count_matches_rounds_matches_per_round(self):
        rng = np.random.default_rng(21)
        values = rng.integers(0, 4, size=(9, 96))
        store = self._store_with_values(values)
        left = rng.integers(0, 9, size=25)
        right = rng.integers(0, 9, size=25)
        for start, end, width in [(0, 96, 32), (16, 80, 16), (3, 93, 10)]:
            rounds = store.count_matches_rounds(left, right, start, end, width)
            for r in range((end - start) // width):
                expected = store.count_matches_many(
                    left, right, start + r * width, start + (r + 1) * width
                )
                assert rounds[:, r].tolist() == expected.tolist()

    def test_count_matches_rounds_rejects_ragged_span(self):
        store = self._store_with_values(np.zeros((2, 8), dtype=np.int64))
        with pytest.raises(ValueError, match="whole number of rounds"):
            store.count_matches_rounds(np.array([0]), np.array([1]), 0, 7, 3)

    def test_band_key(self):
        values = np.array([[1, 2, 3, 4], [1, 2, 9, 9]])
        store = self._store_with_values(values)
        assert store.band_key(0, 0, 2) == store.band_key(1, 0, 2)
        assert store.band_key(0, 1, 2) != store.band_key(1, 1, 2)

    def test_out_of_range(self):
        store = self._store_with_values(np.array([[1], [2]]))
        with pytest.raises(IndexError):
            store.count_matches(0, 1, 0, 5)
        with pytest.raises(IndexError):
            store.band_key(0, 3, 2)

    def test_append_shape_validation(self):
        store = IntSignatures(2)
        with pytest.raises(ValueError, match="shape"):
            store.append_values(np.zeros((3, 4)))
