"""Unit tests for the hash-family registry."""

import pytest

from repro.hashing.base import get_hash_family
from repro.hashing.minhash import MinHashFamily
from repro.hashing.simhash import SimHashFamily


class TestGetHashFamily:
    def test_minhash(self, binary_sets_collection):
        family = get_hash_family("minhash", binary_sets_collection, seed=1)
        assert isinstance(family, MinHashFamily)
        assert family.seed == 1
        assert family.collection is binary_sets_collection

    def test_simhash(self, small_dense_collection):
        family = get_hash_family("simhash", small_dense_collection)
        assert isinstance(family, SimHashFamily)
        assert family.produces_bits

    def test_unknown_family(self, small_dense_collection):
        with pytest.raises(ValueError, match="unknown hash family"):
            get_hash_family("p-stable", small_dense_collection)

    def test_kwargs_forwarded(self, small_dense_collection):
        family = get_hash_family("simhash", small_dense_collection, quantize=False)
        assert not family.projections.quantized

    def test_n_hashes_starts_at_zero(self, small_dense_collection):
        family = get_hash_family("simhash", small_dense_collection)
        assert family.n_hashes == 0
        family.signatures(32)
        assert family.n_hashes >= 32
