"""BayesLSH and BayesLSH-Lite verifiers.

Thin adapters binding the core algorithms (:class:`repro.core.bayeslsh.BayesLSH`
and :class:`repro.core.lite.BayesLSHLite`) to the verifier interface used by
the search pipelines.  The adapters take care of three practical matters the
core algorithms leave to the caller:

* choosing the posterior model for the measure (Beta posterior for Jaccard,
  truncated collision posterior for the cosine measures);
* for Jaccard, optionally fitting the Beta prior by the method of moments to
  a random sample of candidate-pair similarities (Section 4.1);
* sharing the hash family with the candidate generation phase when possible
  so hashes are computed once.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import BayesLSH, VerificationOutput
from repro.core.lite import BayesLSHLite
from repro.core.params import BayesLSHLiteParams, BayesLSHParams
from repro.core.posteriors import BetaPosterior, PosteriorModel, make_posterior
from repro.core.priors import fit_beta_prior, sample_pair_similarities
from repro.hashing.base import HashFamily, get_hash_family
from repro.verification.base import Verifier, exact_similarities_for_pairs

__all__ = ["BayesLSHVerifier", "BayesLSHLiteVerifier"]

#: paper defaults for BayesLSH-Lite's pruning-hash budget, per measure
DEFAULT_LITE_HASHES = {"cosine": 128, "binary_cosine": 128, "jaccard": 64}


class _BayesVerifierBase(Verifier):
    """Shared plumbing of the two Bayesian verifiers."""

    def __init__(
        self,
        collection,
        measure,
        threshold: float,
        family: HashFamily | None = None,
        seed: int = 0,
        fit_prior: bool = True,
        prior_sample_size: int = 1000,
    ):
        super().__init__(collection, measure, threshold)
        if family is None:
            family = get_hash_family(self._measure.lsh_family, self._prepared, seed=seed)
        self._family = family
        self._fit_prior = bool(fit_prior)
        self._prior_sample_size = int(prior_sample_size)
        self._seed = int(seed)

    @property
    def family(self) -> HashFamily:
        return self._family

    def _posterior_for_pairs(self, pairs) -> PosteriorModel:
        """Posterior model, fitting the Jaccard Beta prior to the candidates if asked.

        ``pairs`` is any sequence of ``(i, j)`` index pairs (a materialised
        list or a lazy :class:`~repro.search.executor.PairBlockSource`); the
        prior sampling only reads ``len(pairs)`` and a seeded random subset
        of positions, so the fitted prior is identical for any representation
        of the same ordered pair sequence.
        """
        if self._measure.name != "jaccard" or not self._fit_prior or len(pairs) == 0:
            return make_posterior(self._measure.name)
        samples = sample_pair_similarities(
            pairs,
            self.exact_similarity,
            sample_size=min(self._prior_sample_size, len(pairs)),
            seed=self._seed,
        )
        return BetaPosterior(fit_beta_prior(samples))

    def _posterior_for(self, candidates: CandidateSet) -> PosteriorModel:
        if self._measure.name != "jaccard" or not self._fit_prior or len(candidates) == 0:
            return make_posterior(self._measure.name)
        pairs = list(zip(candidates.left.tolist(), candidates.right.tolist()))
        return self._posterior_for_pairs(pairs)


class BayesLSHVerifier(_BayesVerifierBase):
    """Algorithm 1 as a verifier: prune early, estimate to the requested accuracy.

    Parameters
    ----------
    collection, measure, threshold:
        As for every verifier.
    params:
        Optional :class:`BayesLSHParams`; built from ``threshold`` plus the
        keyword arguments ``epsilon``/``delta``/``gamma``/``k``/``max_hashes``
        otherwise.
    family:
        Optional hash family shared with candidate generation.
    fit_prior / prior_sample_size:
        Fit the Jaccard Beta prior by method of moments on a random sample of
        candidate similarities (ignored for cosine, which uses the uniform
        collision prior).
    """

    name = "bayeslsh"
    exact_output = False

    def __init__(
        self,
        collection,
        measure,
        threshold: float,
        params: BayesLSHParams | None = None,
        family: HashFamily | None = None,
        seed: int = 0,
        fit_prior: bool = True,
        prior_sample_size: int = 1000,
        epsilon: float = 0.03,
        delta: float = 0.05,
        gamma: float = 0.03,
        k: int = 32,
        max_hashes: int = 2048,
    ):
        super().__init__(
            collection,
            measure,
            threshold,
            family=family,
            seed=seed,
            fit_prior=fit_prior,
            prior_sample_size=prior_sample_size,
        )
        if params is None:
            params = BayesLSHParams(
                threshold=threshold,
                epsilon=epsilon,
                delta=delta,
                gamma=gamma,
                k=k,
                max_hashes=max_hashes,
            )
        elif params.threshold != threshold:
            params = params.with_threshold(threshold)
        self._params = params
        self._last_algorithm: BayesLSH | None = None

    @property
    def params(self) -> BayesLSHParams:
        """The ``epsilon``/``delta``/``gamma``/``k``/``max_hashes`` knobs in force."""
        return self._params

    @property
    def last_algorithm(self) -> BayesLSH | None:
        """The core algorithm instance used by the most recent verify() call."""
        return self._last_algorithm

    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        """Run Algorithm 1 over the candidate pairs; emits posterior estimates.

        Deterministic in ``(candidates, family seed, params)``: every
        prune/emit decision depends only on the pair's own hash-agreement
        counts, so the output is independent of pair batching or ordering
        (the execution-invariance contract).  From round 2 onward the core
        algorithm gathers multi-round super-blocks through the stores'
        cache-aware tiled kernels at *any* active count (pair tiles sized to
        L2 — see :meth:`~repro.hashing.signatures.SignatureStore.count_matches_rounds`);
        tiling and super-blocking are value-preserving, so this is purely a
        throughput matter.
        """
        posterior = self._posterior_for(candidates)
        algorithm = BayesLSH(self._family, posterior, self._params)
        self._last_algorithm = algorithm
        return algorithm.verify(candidates.left, candidates.right)

    def verify_source(self, source, pool=None) -> VerificationOutput:
        """Block-streamed (and optionally multicore round-synchronous) verify.

        The prior is fitted once against the full deduplicated pair sequence
        (identical sampling to the serial path), then each block is verified
        with the shared decision tables; every prune/emit decision depends
        only on the pair's own ``(m, n)``, so the merged output is
        bit-identical to one monolithic verify() call.
        """
        posterior = self._posterior_for_pairs(source)
        algorithm = BayesLSH(self._family, posterior, self._params)
        self._last_algorithm = algorithm
        if pool is None:
            return VerificationOutput.merge(
                [algorithm.verify(left, right) for left, right in source.blocks()]
            )
        from repro.search.executor import run_round_protocol

        return run_round_protocol(
            pool,
            self._family,
            self._params,
            "bayes",
            posterior,
            source,
            self._threshold,
            verifier=self,
        )


class BayesLSHLiteVerifier(_BayesVerifierBase):
    """Algorithm 2 as a verifier: prune early, verify survivors exactly."""

    name = "bayeslsh_lite"
    exact_output = True

    def __init__(
        self,
        collection,
        measure,
        threshold: float,
        params: BayesLSHLiteParams | None = None,
        family: HashFamily | None = None,
        seed: int = 0,
        fit_prior: bool = True,
        prior_sample_size: int = 1000,
        epsilon: float = 0.03,
        h: int | None = None,
        k: int = 32,
    ):
        super().__init__(
            collection,
            measure,
            threshold,
            family=family,
            seed=seed,
            fit_prior=fit_prior,
            prior_sample_size=prior_sample_size,
        )
        if params is None:
            if h is None:
                h = DEFAULT_LITE_HASHES[self._measure.name]
            params = BayesLSHLiteParams(threshold=threshold, epsilon=epsilon, h=h, k=k)
        elif params.threshold != threshold:
            params = params.with_threshold(threshold)
        self._params = params

    @property
    def params(self) -> BayesLSHLiteParams:
        """The ``epsilon``/``h``/``k`` knobs in force."""
        return self._params

    def _exact_many(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return exact_similarities_for_pairs(self._prepared, self._measure, left, right)

    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        """BayesLSH-Lite: Bayesian pruning, exact similarities for survivors.

        Deterministic in ``(candidates, family seed, params)`` — per-pair
        decisions are independent of batching, as for the full verifier.
        """
        posterior = self._posterior_for(candidates)
        # Deliberately NOT wired to exact_similarities_for_pairs: its chunked
        # sparse products round differently from measure.exact in the last
        # ulp, which could flip the `> threshold` emission for boundary pairs
        # and break the bit-identity contract with the scalar path.
        algorithm = BayesLSHLite(
            self._family, posterior, self._params, self.exact_similarity
        )
        return algorithm.verify(candidates.left, candidates.right)

    def verify_source(self, source, pool=None) -> VerificationOutput:
        """Block-streamed (and optionally multicore round-synchronous) verify."""
        posterior = self._posterior_for_pairs(source)
        if pool is None:
            algorithm = BayesLSHLite(
                self._family, posterior, self._params, self.exact_similarity
            )
            return VerificationOutput.merge(
                [algorithm.verify(left, right) for left, right in source.blocks()]
            )
        from repro.search.executor import run_round_protocol

        return run_round_protocol(
            pool,
            self._family,
            self._params,
            "lite",
            posterior,
            source,
            self._threshold,
            verifier=self,
        )
