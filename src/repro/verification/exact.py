"""Exact candidate verification.

Computes the true similarity of every candidate pair and keeps the pairs
exceeding the threshold.  This is the verification phase of the exact
baselines (AllPairs, plain LSH, PPJoin+) in the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import VerificationOutput
from repro.verification.base import Verifier, exact_similarities_for_pairs

__all__ = ["ExactVerifier"]


class ExactVerifier(Verifier):
    """Verify candidates by computing their similarity exactly."""

    name = "exact"
    exact_output = True

    def _verify_arrays(self, left, right, similarities) -> VerificationOutput:
        above = similarities > self._threshold
        return VerificationOutput(
            left=left[above],
            right=right[above],
            estimates=similarities[above],
            n_candidates=len(left),
            n_pruned=int((~above).sum()),
            trace=[],
            hash_comparisons=0,
            exact_computations=len(left),
        )

    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        """Exact similarity for every candidate; emits pairs above the threshold.

        Deterministic and batching-independent: similarities are row-local
        computations on the prepared collection.
        """
        similarities = exact_similarities_for_pairs(
            self._prepared, self._measure, candidates.left, candidates.right
        )
        return self._verify_arrays(candidates.left, candidates.right, similarities)

    def verify_source(self, source, pool=None) -> VerificationOutput:
        """Block-streamed (and optionally sharded) exact verification.

        Exact similarities are computed row-pair-wise, so any block/shard
        split produces the same floats as the monolithic call — the serial
        fallback the pool uses for failed shards is the very kernel below.
        """

        def serial(left: np.ndarray, right: np.ndarray) -> np.ndarray:
            return exact_similarities_for_pairs(
                self._prepared, self._measure, left, right
            )

        outputs = []
        for left, right in source.blocks():
            if pool is not None:
                similarities = pool.map_exact(left, right, fallback=serial)
            else:
                similarities = serial(left, right)
            outputs.append(self._verify_arrays(left, right, similarities))
        return VerificationOutput.merge(outputs)
