"""Exact candidate verification.

Computes the true similarity of every candidate pair and keeps the pairs
exceeding the threshold.  This is the verification phase of the exact
baselines (AllPairs, plain LSH, PPJoin+) in the paper's evaluation.
"""

from __future__ import annotations

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import VerificationOutput
from repro.verification.base import Verifier, exact_similarities_for_pairs

__all__ = ["ExactVerifier"]


class ExactVerifier(Verifier):
    """Verify candidates by computing their similarity exactly."""

    name = "exact"
    exact_output = True

    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        similarities = exact_similarities_for_pairs(
            self._prepared, self._measure, candidates.left, candidates.right
        )
        above = similarities > self._threshold
        return VerificationOutput(
            left=candidates.left[above],
            right=candidates.right[above],
            estimates=similarities[above],
            n_candidates=len(candidates),
            n_pruned=int((~above).sum()),
            trace=[],
            hash_comparisons=0,
            exact_computations=len(candidates),
        )
