"""Standard LSH similarity estimation (the "LSH Approx" baseline, Section 3).

Every candidate pair is compared on a *fixed* number of hashes ``n`` and the
similarity is estimated with the maximum likelihood estimator ``m / n``
(converted from the collision scale back to cosine for the simhash family).
Pairs whose estimate exceeds the threshold are output.

This baseline is exactly what the paper criticises: ``n`` has to be tuned by
hand, a single global value over- or under-spends hashes depending on the
(unknown) similarity being estimated, and there is no early pruning.  The
paper uses ``n = 2048`` bits for cosine and ``n = 360`` minhashes for
Jaccard.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import VerificationOutput
from repro.hashing.base import HashFamily, get_hash_family
from repro.hashing.simhash import collision_to_cosine
from repro.verification.base import Verifier

__all__ = ["LSHApproxVerifier"]

#: the paper's hash budgets per similarity measure
DEFAULT_NUM_HASHES = {"cosine": 2048, "binary_cosine": 2048, "jaccard": 360}


class LSHApproxVerifier(Verifier):
    """Fixed-budget maximum-likelihood similarity estimation.

    Parameters
    ----------
    collection, measure, threshold:
        As for every verifier.
    num_hashes:
        The fixed number of hashes ``n``; defaults to the paper's settings
        (2048 for the cosine measures, 360 for Jaccard).
    family:
        Optional shared hash family (so candidate generation hashes are
        reused); built on demand otherwise.
    seed:
        Seed for a freshly created family.
    """

    name = "lsh_approx"
    exact_output = False

    def __init__(
        self,
        collection,
        measure,
        threshold: float,
        num_hashes: int | None = None,
        family: HashFamily | None = None,
        seed: int = 0,
    ):
        super().__init__(collection, measure, threshold)
        if num_hashes is None:
            num_hashes = DEFAULT_NUM_HASHES[self._measure.name]
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self._num_hashes = int(num_hashes)
        if family is None:
            family = get_hash_family(self._measure.lsh_family, self._prepared, seed=seed)
        self._family = family

    @property
    def num_hashes(self) -> int:
        """Fixed number of hashes every pair is compared on."""
        return self._num_hashes

    @property
    def family(self) -> HashFamily:
        """The hash family whose signatures the estimates are read from."""
        return self._family

    def _estimates_from_matches(self, matches: np.ndarray) -> np.ndarray:
        fractions = matches / self._num_hashes
        if self._measure.lsh_family == "simhash":
            return np.asarray(collision_to_cosine(fractions), dtype=np.float64)
        return fractions.astype(np.float64)

    def _verify_arrays(self, left, right, matches) -> VerificationOutput:
        estimates = self._estimates_from_matches(matches)
        above = estimates > self._threshold
        return VerificationOutput(
            left=left[above],
            right=right[above],
            estimates=estimates[above],
            n_candidates=len(left),
            n_pruned=int((~above).sum()),
            trace=[(self._num_hashes, len(left))],
            hash_comparisons=int(self._num_hashes) * len(left),
            exact_computations=0,
        )

    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        """MLE estimates from a fixed hash budget; emits pairs above the threshold.

        Deterministic in ``(candidates, family seed, num_hashes)`` and
        independent of pair batching (each pair's estimate reads only its
        own signature rows).
        """
        store = self._family.signatures(self._num_hashes)
        matches = store.count_matches_many(
            candidates.left, candidates.right, 0, self._num_hashes
        )
        return self._verify_arrays(candidates.left, candidates.right, matches)

    def verify_source(self, source, pool=None) -> VerificationOutput:
        """Block-streamed (and optionally sharded) fixed-budget estimation.

        Match counting and the MLE map are per-pair operations, so any
        block/shard split reproduces the monolithic floats; the parent
        materialises the fixed hash budget once and, when a pool is given,
        exports it to shared memory for the workers to count from.
        """
        store = self._family.signatures(self._num_hashes)
        exporter = None
        if pool is not None:
            from repro.search.executor import _SignatureExporter

            exporter = _SignatureExporter(pool, self._family.produces_bits)
            exporter.ensure(store, self._num_hashes)

        def serial(left, right):
            # Parent-side shard recovery: count against the parent's own
            # store — the same budget the workers' shared view exposes.
            return store.count_matches_many(left, right, 0, self._num_hashes)

        outputs = []
        for left, right in source.blocks():
            if pool is not None:
                matches = pool.map_count(left, right, 0, self._num_hashes, fallback=serial)
            else:
                matches = serial(left, right)
            outputs.append(self._verify_arrays(left, right, matches))
        return VerificationOutput.merge(outputs)
