"""Candidate verification algorithms (phase 2 of all-pairs similarity search).

Four verifiers are implemented, matching the paper's experimental matrix:

* :class:`~repro.verification.exact.ExactVerifier` — compute each candidate's
  similarity exactly (the verification used by plain AllPairs, plain LSH and
  PPJoin+);
* :class:`~repro.verification.lsh_approx.LSHApproxVerifier` — the standard
  maximum-likelihood LSH estimate with a fixed number of hashes
  (Section 3, the "LSH Approx" baseline);
* :class:`~repro.verification.bayes.BayesLSHVerifier` — Algorithm 1;
* :class:`~repro.verification.bayes.BayesLSHLiteVerifier` — Algorithm 2.

Every verifier is bound to a vector collection and a similarity measure at
construction time and exposes ``verify(candidates) -> VerificationOutput``.
"""

from repro.verification.base import Verifier
from repro.verification.exact import ExactVerifier
from repro.verification.lsh_approx import LSHApproxVerifier
from repro.verification.bayes import BayesLSHVerifier, BayesLSHLiteVerifier

__all__ = [
    "BayesLSHLiteVerifier",
    "BayesLSHVerifier",
    "ExactVerifier",
    "LSHApproxVerifier",
    "Verifier",
]
