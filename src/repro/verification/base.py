"""Common interface of candidate verifiers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.candidates.base import CandidateSet
from repro.core.bayeslsh import VerificationOutput
from repro.similarity.measures import SimilarityMeasure, get_measure
from repro.similarity.vectors import VectorCollection

__all__ = ["Verifier", "cross_similarities_for_pairs", "exact_similarities_for_pairs"]


def exact_similarities_for_pairs(
    prepared: VectorCollection,
    measure: SimilarityMeasure,
    left: np.ndarray,
    right: np.ndarray,
    chunk_size: int = 8192,
) -> np.ndarray:
    """Exact similarities for parallel index arrays, computed in vectorised chunks.

    ``prepared`` must already be the measure's preferred view
    (``measure.prepare(collection)``).
    """
    return cross_similarities_for_pairs(prepared, prepared, measure, left, right, chunk_size)


def cross_similarities_for_pairs(
    prepared_left: VectorCollection,
    prepared_right: VectorCollection,
    measure: SimilarityMeasure,
    left: np.ndarray,
    right: np.ndarray,
    chunk_size: int = 8192,
) -> np.ndarray:
    """Exact similarities between rows of *two* prepared collections.

    Entry ``p`` is the similarity of row ``left[p]`` of ``prepared_left`` to
    row ``right[p]`` of ``prepared_right`` — the cross-collection kernel the
    serving layer uses to verify a batch of queries against an indexed
    corpus.  Every operation is per-pair and row-local, so results do not
    depend on how pairs are batched (a batch of one reproduces the batched
    value bit for bit).  With ``prepared_left is prepared_right`` this is
    exactly :func:`exact_similarities_for_pairs`.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    n_pairs = len(left)
    result = np.empty(n_pairs, dtype=np.float64)
    name = measure.name
    for start in range(0, n_pairs, chunk_size):
        end = min(start + chunk_size, n_pairs)
        chunk_l = left[start:end]
        chunk_r = right[start:end]
        rows_l = prepared_left.matrix[chunk_l]
        rows_r = prepared_right.matrix[chunk_r]
        inner = np.asarray(rows_l.multiply(rows_r).sum(axis=1)).ravel()
        if name == "cosine":
            denom = prepared_left.norms[chunk_l] * prepared_right.norms[chunk_r]
            values = np.divide(inner, denom, out=np.zeros_like(inner), where=denom > 0)
        elif name == "jaccard":
            union = prepared_left.row_nnz[chunk_l] + prepared_right.row_nnz[chunk_r] - inner
            values = np.divide(inner, union, out=np.zeros_like(inner), where=union > 0)
        elif name == "binary_cosine":
            denom = np.sqrt(
                prepared_left.row_nnz[chunk_l].astype(np.float64)
                * prepared_right.row_nnz[chunk_r].astype(np.float64)
            )
            values = np.divide(inner, denom, out=np.zeros_like(inner), where=denom > 0)
        elif prepared_left is prepared_right:
            # fall back to the measure's scalar implementation
            values = np.array(
                [
                    measure.exact(prepared_left, int(i), int(j))
                    for i, j in zip(chunk_l, chunk_r)
                ]
            )
        else:  # cross-collection fallback: scalar measure on a joint pair view
            import scipy.sparse as sp

            values = np.empty(end - start, dtype=np.float64)
            for offset, (i, j) in enumerate(zip(chunk_l, chunk_r)):
                joint = VectorCollection(
                    sp.vstack(
                        [prepared_left.matrix.getrow(int(i)), prepared_right.matrix.getrow(int(j))]
                    )
                )
                values[offset] = measure.exact(measure.prepare(joint), 0, 1)
        result[start:end] = np.minimum(values, 1.0)
    return result


class Verifier(ABC):
    """A candidate verifier bound to a vector collection and a measure.

    Subclasses turn a :class:`CandidateSet` into a
    :class:`~repro.core.bayeslsh.VerificationOutput`: the pairs they consider
    part of the answer, together with exact or estimated similarities.
    """

    #: machine-readable name used by pipelines and reports
    name: str = ""
    #: whether the reported similarities are exact (True) or estimates (False)
    exact_output: bool = True

    def __init__(self, collection: VectorCollection, measure, threshold: float):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        self._measure = get_measure(measure)
        self._collection = collection
        self._prepared = self._measure.prepare(collection)
        self._threshold = float(threshold)

    @property
    def measure(self) -> SimilarityMeasure:
        """The similarity measure candidates are verified under."""
        return self._measure

    @property
    def threshold(self) -> float:
        """The similarity threshold emitted pairs must exceed."""
        return self._threshold

    @property
    def prepared(self) -> VectorCollection:
        """The measure-specific view of the collection the verifier works on."""
        return self._prepared

    def exact_similarity(self, i: int, j: int) -> float:
        """Exact similarity of one pair (used by BayesLSH-Lite and tests)."""
        return self._measure.exact(self._prepared, i, j)

    @abstractmethod
    def verify(self, candidates: CandidateSet) -> VerificationOutput:
        """Verify a candidate set."""

    def verify_source(self, source, pool=None) -> VerificationOutput:
        """Verify a deduplicated :class:`~repro.search.executor.PairBlockSource`.

        Called by the streamed executor.  Subclasses shipped with the library
        override this with true block-by-block (and optionally multicore)
        processing whose outputs are bit-identical to :meth:`verify` on the
        concatenated pairs; this fallback simply materialises the pairs so
        third-party verifiers keep working under the streamed engine.
        """
        left, right = source.all_pairs()
        return self.verify(CandidateSet(left=left, right=right, metadata={}))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(measure={self._measure.name!r}, "
            f"threshold={self._threshold})"
        )
