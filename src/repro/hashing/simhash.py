"""Signed random projections (SimHash) — the LSH family for cosine similarity.

Each hash function ``h_i`` is associated with a random vector ``r_i`` whose
components are standard normal samples; ``h_i(x) = 1`` if ``dot(r_i, x) >= 0``
and 0 otherwise (Charikar, STOC 2002).  For two vectors ``x, y`` the collision
probability is

    Pr[h_i(x) == h_i(y)] = 1 - theta(x, y) / pi = r(x, y)

where ``theta`` is the angle between the vectors.  Note that this is *not*
the cosine similarity itself; the conversion functions
:func:`cosine_to_collision` (``c2r`` in the paper) and
:func:`collision_to_cosine` (``r2c``) translate between the two, and the
BayesLSH posterior for cosine similarity is expressed in terms of ``r`` and
mapped back to cosine at the end.

The projection vectors are stored with the paper's 2-byte quantisation scheme
(:mod:`repro.hashing.quantization`) by default.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashFamily
from repro.hashing.quantization import QuantizedGaussian
from repro.hashing.signatures import BitSignatures
from repro.similarity.vectors import VectorCollection

__all__ = ["SimHashFamily", "cosine_to_collision", "collision_to_cosine"]

#: number of hash functions generated per lazy extension request
_BLOCK = 256

#: unit roundoff of float32 (used by the sign-boundary error bound)
_EPS32 = 2.0**-24


def cosine_to_collision(cosine: float | np.ndarray) -> float | np.ndarray:
    """``c2r`` from the paper: map cosine similarity to collision probability.

    ``c2r(c) = 1 - arccos(c) / pi``; for non-negative data (cosine in [0, 1])
    the result lies in ``[0.5, 1]``.
    """
    clipped = np.clip(cosine, -1.0, 1.0)
    return 1.0 - np.arccos(clipped) / np.pi


def collision_to_cosine(collision: float | np.ndarray) -> float | np.ndarray:
    """``r2c`` from the paper: map collision probability back to cosine.

    ``r2c(r) = cos(pi * (1 - r))``.
    """
    return np.cos(np.pi * (1.0 - np.asarray(collision, dtype=np.float64)))


class SimHashFamily(HashFamily):
    """Signed-random-projection hash family producing one bit per hash.

    Parameters
    ----------
    collection:
        The vectors to hash.  Cosine similarity is scale-invariant so the
        collection does not need to be normalised first.
    seed:
        Seed for the random projection directions.
    quantize:
        Store projections with the 2-byte scheme of Section 4.3 (default
        True, the paper's setting).
    block_size:
        How many new hash functions to materialise per extension request;
        purely a performance knob.
    """

    name = "simhash"
    produces_bits = True

    def __init__(
        self,
        collection: VectorCollection,
        seed: int = 0,
        quantize: bool = True,
        block_size: int = _BLOCK,
    ):
        super().__init__(collection, seed=seed)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        self._projections = QuantizedGaussian(
            collection.n_features, seed=seed, quantize=quantize
        )
        self._matrix32: "object | None" = None
        self._abs_matrix32: "object | None" = None
        self._row_bound: np.ndarray | None = None

    @property
    def projections(self) -> QuantizedGaussian:
        """The (quantised) random projection matrix."""
        return self._projections

    def _make_store(self) -> BitSignatures:
        return BitSignatures(self._collection.n_vectors)

    def _extend(self, store: BitSignatures, n_new: int) -> None:
        # Round the request up to a multiple of the block size so the packed
        # word storage stays aligned (block sizes are multiples of 32).
        n_new = -(-n_new // self._block_size) * self._block_size
        start = store.n_hashes
        end = start + n_new
        store.append_bits(self._project_bits(start, end))

    def _project_bits(self, start: int, end: int) -> np.ndarray:
        """Signs of the projection products for hash columns ``[start, end)``.

        The sparse x dense product is evaluated in float32 (half the memory
        traffic of the former float64 product — the kernel is bandwidth
        bound), and the bits are taken from the float32 signs wherever the
        product is safely away from zero.  Entries within the float32
        rounding-error bound of zero are recomputed with the original float64
        scipy kernel on a (rows x columns) sub-product, so every emitted bit
        is identical to the float64 path bit for bit.
        """
        matrix = self._collection.matrix
        if self._matrix32 is None:
            self._matrix32 = matrix.astype(np.float32)
            self._abs_matrix32 = abs(self._matrix32)
            # Forward-error factor of a float32 dot product with nnz terms:
            # |fl32(x . d) - x . d| <= gamma_(nnz+2) * sum|x_i d_i| (input
            # rounding of both operands plus sequential accumulation), with a
            # 4x safety factor; sum|x_i d_i| is computed per entry below.
            row_nnz = self._collection.row_nnz.astype(np.float64)
            self._row_bound = (4.0 * (row_nnz + 4.0) * _EPS32).astype(np.float32)
        directions32 = self._projections.columns32(start, end)
        products32 = np.asarray(self._matrix32 @ directions32)
        bits = (products32 >= 0.0).astype(np.uint8)

        # Sign-boundary detection stays entirely in float32.  The companion
        # product |A| @ |D| yields the exact first-order bound sum|x_i d_i|
        # per entry (a second cheap float32 GEMM); the 4x safety factor
        # dwarfs the float32 rounding of the bound arithmetic itself.
        magnitudes = np.asarray(self._abs_matrix32 @ np.abs(directions32))
        tau = self._row_bound[:, None] * magnitudes
        magnitude = np.abs(products32)
        unsure = (magnitude <= tau) | ~np.isfinite(magnitude)
        if np.any(unsure):
            rows, cols = np.nonzero(unsure)
            unique_rows, row_pos = np.unique(rows, return_inverse=True)
            unique_cols, col_pos = np.unique(cols, return_inverse=True)
            # Re-run scipy's own float64 CSR kernel on the flagged rows x
            # columns rectangle: per (row, column) the kernel's sequential
            # accumulation touches only that row's entries and that column's
            # direction values, so the sub-product entries are bit-identical
            # to the corresponding entries of the full float64 product.
            directions64 = self._projections.column_subset(start, unique_cols)
            sub = np.asarray(matrix[unique_rows] @ directions64)
            bits[rows, cols] = (sub[row_pos, col_pos] >= 0.0).astype(np.uint8)
        return bits

    def clone_for(self, collection: VectorCollection) -> "SimHashFamily":
        """A family over ``collection`` evaluating the *same* hash functions.

        The clone shares this family's projection matrix object, so both
        sides always see identical direction vectors — including columns
        drawn *after* the clone (see :meth:`HashFamily.clone_for`).
        """
        clone = SimHashFamily(
            collection,
            seed=self._seed,
            quantize=self._projections.quantized,
            block_size=self._block_size,
        )
        # Projections are collection-independent (they depend only on the
        # feature count and seed), so the clone shares the object: columns
        # drawn through either family extend one common matrix and both sides
        # always see identical direction vectors.
        clone._projections = self._projections
        return clone

    def state_dict(self) -> dict:
        """The projection matrix (quantised codes) plus the RNG position."""
        return self._projections.state_dict()

    def restore_state(self, state: dict) -> None:
        """Restore projections and RNG position captured by :meth:`state_dict`."""
        self._projections.restore_state(state)
        self._matrix32 = None
        self._abs_matrix32 = None
        self._row_bound = None

    def collision_similarity(self, exact_similarity: float) -> float:
        """Collision probability for a pair with the given *cosine* similarity."""
        return float(cosine_to_collision(exact_similarity))
