"""Signed random projections (SimHash) — the LSH family for cosine similarity.

Each hash function ``h_i`` is associated with a random vector ``r_i`` whose
components are standard normal samples; ``h_i(x) = 1`` if ``dot(r_i, x) >= 0``
and 0 otherwise (Charikar, STOC 2002).  For two vectors ``x, y`` the collision
probability is

    Pr[h_i(x) == h_i(y)] = 1 - theta(x, y) / pi = r(x, y)

where ``theta`` is the angle between the vectors.  Note that this is *not*
the cosine similarity itself; the conversion functions
:func:`cosine_to_collision` (``c2r`` in the paper) and
:func:`collision_to_cosine` (``r2c``) translate between the two, and the
BayesLSH posterior for cosine similarity is expressed in terms of ``r`` and
mapped back to cosine at the end.

The projection vectors are stored with the paper's 2-byte quantisation scheme
(:mod:`repro.hashing.quantization`) by default.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashFamily
from repro.hashing.quantization import QuantizedGaussian
from repro.hashing.signatures import BitSignatures
from repro.similarity.vectors import VectorCollection

__all__ = ["SimHashFamily", "cosine_to_collision", "collision_to_cosine"]

#: number of hash functions generated per lazy extension request
_BLOCK = 256


def cosine_to_collision(cosine: float | np.ndarray) -> float | np.ndarray:
    """``c2r`` from the paper: map cosine similarity to collision probability.

    ``c2r(c) = 1 - arccos(c) / pi``; for non-negative data (cosine in [0, 1])
    the result lies in ``[0.5, 1]``.
    """
    clipped = np.clip(cosine, -1.0, 1.0)
    return 1.0 - np.arccos(clipped) / np.pi


def collision_to_cosine(collision: float | np.ndarray) -> float | np.ndarray:
    """``r2c`` from the paper: map collision probability back to cosine.

    ``r2c(r) = cos(pi * (1 - r))``.
    """
    return np.cos(np.pi * (1.0 - np.asarray(collision, dtype=np.float64)))


class SimHashFamily(HashFamily):
    """Signed-random-projection hash family producing one bit per hash.

    Parameters
    ----------
    collection:
        The vectors to hash.  Cosine similarity is scale-invariant so the
        collection does not need to be normalised first.
    seed:
        Seed for the random projection directions.
    quantize:
        Store projections with the 2-byte scheme of Section 4.3 (default
        True, the paper's setting).
    block_size:
        How many new hash functions to materialise per extension request;
        purely a performance knob.
    """

    name = "simhash"
    produces_bits = True

    def __init__(
        self,
        collection: VectorCollection,
        seed: int = 0,
        quantize: bool = True,
        block_size: int = _BLOCK,
    ):
        super().__init__(collection, seed=seed)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        self._projections = QuantizedGaussian(
            collection.n_features, seed=seed, quantize=quantize
        )

    @property
    def projections(self) -> QuantizedGaussian:
        """The (quantised) random projection matrix."""
        return self._projections

    def _make_store(self) -> BitSignatures:
        return BitSignatures(self._collection.n_vectors)

    def _extend(self, store: BitSignatures, n_new: int) -> None:
        # Round the request up to a multiple of the block size so the packed
        # word storage stays aligned (block sizes are multiples of 32).
        n_new = -(-n_new // self._block_size) * self._block_size
        start = store.n_hashes
        end = start + n_new
        directions = self._projections.columns(start, end)
        products = self._collection.matrix @ directions
        bits = (np.asarray(products) >= 0.0).astype(np.uint8)
        store.append_bits(bits)

    def collision_similarity(self, exact_similarity: float) -> float:
        """Collision probability for a pair with the given *cosine* similarity."""
        return float(cosine_to_collision(exact_similarity))
