"""Abstract interface of an LSH family.

A :class:`HashFamily` turns a :class:`~repro.similarity.vectors.VectorCollection`
into a growable :class:`~repro.hashing.signatures.SignatureStore`.  The key
property (Equation 1 of the paper) is that for a random hash function drawn
from the family,

    Pr[h(x) == h(y)] = sim(x, y)

where ``sim`` is the family's *collision similarity*.  For minwise hashing
that collision similarity is exactly the Jaccard similarity; for signed
random projections it is ``r(x, y) = 1 - theta(x, y) / pi``, which BayesLSH
maps back to cosine similarity in the posterior layer.

Families are deterministic given their seed: requesting hashes
``0 .. n-1`` twice produces the same values, and requesting more hashes
extends the store without changing hashes already produced.  That determinism
is what allows candidate generation and candidate verification to share one
set of signatures (advantage 3 in the paper's introduction).
"""

from __future__ import annotations

import threading

from abc import ABC, abstractmethod

from repro.hashing.signatures import SignatureStore
from repro.similarity.vectors import VectorCollection

__all__ = ["HashFamily", "get_hash_family"]


class HashFamily(ABC):
    """A seeded LSH family bound to a particular vector collection."""

    #: machine readable family name ("minhash" or "simhash")
    name: str = ""
    #: True when each hash is a single bit (packed storage, cheap to compare)
    produces_bits: bool = False

    def __init__(self, collection: VectorCollection, seed: int = 0):
        self._collection = collection
        self._seed = int(seed)
        self._store: SignatureStore | None = None
        # Serialises lazy extension so concurrent reader threads (the serving
        # layer's contract: many readers, one writer) cannot interleave
        # _extend calls — an unguarded interleave would append duplicate hash
        # columns and desynchronise the coefficient / projection streams.
        # Reads of an already-materialised store take the lock-free fast path.
        self._extend_lock = threading.Lock()

    @property
    def collection(self) -> VectorCollection:
        """The collection this family instance hashes."""
        return self._collection

    @property
    def seed(self) -> int:
        """The seed that (with the hash index) determines every hash function."""
        return self._seed

    @property
    def n_hashes(self) -> int:
        """Number of hash functions materialised so far."""
        return 0 if self._store is None else self._store.n_hashes

    @abstractmethod
    def _make_store(self) -> SignatureStore:
        """Create an empty store of the right concrete type."""

    @abstractmethod
    def _extend(self, store: SignatureStore, n_new: int) -> None:
        """Append ``n_new`` freshly generated hashes to ``store``."""

    def signatures(self, n_hashes: int) -> SignatureStore:
        """Return a store holding *at least* ``n_hashes`` hashes per vector.

        Hashes are generated lazily and cached, so repeated calls with
        growing ``n_hashes`` only pay for the new hash functions.  Extension
        is thread-safe (serialised under a lock); calls that need no new
        hashes never take the lock.
        """
        if n_hashes < 0:
            raise ValueError(f"n_hashes must be non-negative, got {n_hashes}")
        store = self._store
        if store is not None and store.n_hashes >= n_hashes:
            return store
        with self._extend_lock:
            if self._store is None:
                self._store = self._make_store()
            missing = n_hashes - self._store.n_hashes  # re-check under the lock
            if missing > 0:
                self._extend(self._store, missing)
            return self._store

    def attach_store(self, store: SignatureStore) -> None:
        """Adopt an externally built store as this family's signature cache.

        The serving layer uses this after splicing freshly hashed rows into an
        index's store (incremental insert) and after deserialising a snapshot:
        the family keeps generating *new* hash columns lazily, starting after
        the columns the adopted store already holds.  The caller guarantees
        the store's contents were produced by hash functions ``0 ..
        n_hashes-1`` of this family (same type and seed — the determinism
        contract makes those functions well-defined independent of the
        collection the hashes were computed from).
        """
        if store.n_vectors != self._collection.n_vectors:
            raise ValueError(
                f"store holds {store.n_vectors} rows, collection has "
                f"{self._collection.n_vectors}"
            )
        expected = type(self._make_store())
        if not isinstance(store, expected):
            raise TypeError(
                f"{type(self).__name__} requires a {expected.__name__} store, "
                f"got {type(store).__name__}"
            )
        self._store = store

    @abstractmethod
    def clone_for(self, collection: VectorCollection) -> "HashFamily":
        """A family over ``collection`` evaluating the *same* hash functions.

        Generator state already drawn (hash coefficients, projection vectors,
        RNG position) is carried over, so the clone neither re-derives nor
        re-randomises anything: hash function ``i`` of the clone is hash
        function ``i`` of this family, and future lazy draws continue the
        same stream.  This is what lets the serving layer hash a batch of
        inserted vectors (or a batch of queries) against an existing index.
        """

    @abstractmethod
    def state_dict(self) -> dict:
        """Serialisable generator state (drawn parameters + RNG stream position).

        Together with ``(name, seed)`` and the signature store contents this
        fully determines future behaviour: :meth:`restore_state` on a fresh
        family of the same type and seed reproduces the exact hash functions
        *and* the exact stream of hash functions still to be drawn.  Values
        are NumPy arrays or JSON-serialisable scalars/strings so snapshots can
        store them in an ``.npz`` archive without pickling.
        """

    @abstractmethod
    def restore_state(self, state: dict) -> None:
        """Restore generator state captured by :meth:`state_dict`."""

    @abstractmethod
    def collision_similarity(self, exact_similarity: float) -> float:
        """Map an exact similarity value to the family's collision probability."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_vectors={self._collection.n_vectors}, "
            f"seed={self._seed}, n_hashes={self.n_hashes})"
        )


def get_hash_family(
    name: str, collection: VectorCollection, seed: int = 0, **kwargs
) -> HashFamily:
    """Instantiate a hash family by name (``"minhash"`` or ``"simhash"``)."""
    from repro.hashing.minhash import MinHashFamily
    from repro.hashing.simhash import SimHashFamily

    families: dict[str, type[HashFamily]] = {
        "minhash": MinHashFamily,
        "simhash": SimHashFamily,
    }
    try:
        factory = families[name]
    except KeyError:
        known = ", ".join(sorted(families))
        raise ValueError(f"unknown hash family {name!r}; expected one of: {known}") from None
    return factory(collection, seed=seed, **kwargs)
