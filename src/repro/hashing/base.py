"""Abstract interface of an LSH family.

A :class:`HashFamily` turns a :class:`~repro.similarity.vectors.VectorCollection`
into a growable :class:`~repro.hashing.signatures.SignatureStore`.  The key
property (Equation 1 of the paper) is that for a random hash function drawn
from the family,

    Pr[h(x) == h(y)] = sim(x, y)

where ``sim`` is the family's *collision similarity*.  For minwise hashing
that collision similarity is exactly the Jaccard similarity; for signed
random projections it is ``r(x, y) = 1 - theta(x, y) / pi``, which BayesLSH
maps back to cosine similarity in the posterior layer.

Families are deterministic given their seed: requesting hashes
``0 .. n-1`` twice produces the same values, and requesting more hashes
extends the store without changing hashes already produced.  That determinism
is what allows candidate generation and candidate verification to share one
set of signatures (advantage 3 in the paper's introduction).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.hashing.signatures import SignatureStore
from repro.similarity.vectors import VectorCollection

__all__ = ["HashFamily", "get_hash_family"]


class HashFamily(ABC):
    """A seeded LSH family bound to a particular vector collection."""

    #: machine readable family name ("minhash" or "simhash")
    name: str = ""
    #: True when each hash is a single bit (packed storage, cheap to compare)
    produces_bits: bool = False

    def __init__(self, collection: VectorCollection, seed: int = 0):
        self._collection = collection
        self._seed = int(seed)
        self._store: SignatureStore | None = None

    @property
    def collection(self) -> VectorCollection:
        return self._collection

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def n_hashes(self) -> int:
        """Number of hash functions materialised so far."""
        return 0 if self._store is None else self._store.n_hashes

    @abstractmethod
    def _make_store(self) -> SignatureStore:
        """Create an empty store of the right concrete type."""

    @abstractmethod
    def _extend(self, store: SignatureStore, n_new: int) -> None:
        """Append ``n_new`` freshly generated hashes to ``store``."""

    def signatures(self, n_hashes: int) -> SignatureStore:
        """Return a store holding *at least* ``n_hashes`` hashes per vector.

        Hashes are generated lazily and cached, so repeated calls with
        growing ``n_hashes`` only pay for the new hash functions.
        """
        if n_hashes < 0:
            raise ValueError(f"n_hashes must be non-negative, got {n_hashes}")
        if self._store is None:
            self._store = self._make_store()
        missing = n_hashes - self._store.n_hashes
        if missing > 0:
            self._extend(self._store, missing)
        return self._store

    @abstractmethod
    def collision_similarity(self, exact_similarity: float) -> float:
        """Map an exact similarity value to the family's collision probability."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_vectors={self._collection.n_vectors}, "
            f"seed={self._seed}, n_hashes={self.n_hashes})"
        )


def get_hash_family(
    name: str, collection: VectorCollection, seed: int = 0, **kwargs
) -> HashFamily:
    """Instantiate a hash family by name (``"minhash"`` or ``"simhash"``)."""
    from repro.hashing.minhash import MinHashFamily
    from repro.hashing.simhash import SimHashFamily

    families: dict[str, type[HashFamily]] = {
        "minhash": MinHashFamily,
        "simhash": SimHashFamily,
    }
    try:
        factory = families[name]
    except KeyError:
        known = ", ".join(sorted(families))
        raise ValueError(f"unknown hash family {name!r}; expected one of: {known}") from None
    return factory(collection, seed=seed, **kwargs)
