"""Two-byte quantised storage of random Gaussian projections.

Section 4.3 of the paper ("Cheaper storage of hash functions"): the random
Gaussian vectors behind the cosine LSH family can occupy a lot of memory, so
each float is stored in 2 bytes by exploiting the fact that standard normal
samples essentially never fall outside ``(-8, 8)``:

    x' = floor((x + 8) * 2**16 / 16)

which is an integer in ``[0, 65535]`` reconstructed as
``x = x' * 16 / 2**16 - 8``.  The maximum absolute reconstruction error is
``16 / 2**16 = 0.000244``; the paper quotes 0.0001, which corresponds to the
mid-point decoding ``x = (x' + 0.5) * 16 / 2**16 - 8`` used here.

The sign of a projection can flip only when the dot product lies within the
accumulated quantisation error of zero, which is why this optimisation does
not measurably change the LSH collision statistics (covered by tests).
"""

from __future__ import annotations

import json
import threading

import numpy as np

__all__ = ["quantize_floats", "dequantize_floats", "QuantizedGaussian"]

_RANGE_LOW = -8.0
_RANGE_HIGH = 8.0
_RANGE_WIDTH = _RANGE_HIGH - _RANGE_LOW
_LEVELS = 1 << 16
_STEP = _RANGE_WIDTH / _LEVELS  # 0.000244140625


def quantize_floats(values: np.ndarray) -> np.ndarray:
    """Quantise floats in ``(-8, 8)`` to ``uint16`` codes.

    Values outside the representable range are clipped; for standard normal
    samples this is an astronomically unlikely event (the paper makes the
    same assumption).
    """
    values = np.asarray(values, dtype=np.float64)
    # Single fused pass, bit-identical to the textbook
    # ``floor(clip(x, -8, 8) - low) / width * levels`` chain: the division by
    # the width and multiplication by the level count are both powers of two
    # (no rounding), so only the subtraction rounds in either formulation, and
    # clipping the scaled value is equivalent to clipping the input.  The
    # uint16 cast truncates, which equals floor for the non-negative clipped
    # scale; values at the top of the range pin to the highest level.
    scaled = (values - _RANGE_LOW) * (_LEVELS / _RANGE_WIDTH)
    return np.clip(scaled, 0.0, _LEVELS - 1, out=scaled).astype(np.uint16)


def dequantize_floats(codes: np.ndarray) -> np.ndarray:
    """Reconstruct floats from ``uint16`` codes (mid-point decoding)."""
    codes = np.asarray(codes, dtype=np.float64)
    return (codes + 0.5) * _STEP + _RANGE_LOW


class QuantizedGaussian:
    """A lazily-generated random Gaussian matrix stored in 2 bytes per entry.

    The matrix has shape ``(n_features, n_columns)`` where columns are added
    on demand (each column is one hash function's projection vector).
    Columns are generated from a seeded :class:`numpy.random.Generator`, so a
    given ``(seed, column index)`` always produces the same vector.

    Parameters
    ----------
    n_features:
        Dimensionality of the input vectors.
    seed:
        Seed of the generator used to draw the Gaussian entries.
    quantize:
        When False the exact float64 samples are kept (useful for testing the
        effect of quantisation); when True (default, the paper's setting)
        entries are stored as ``uint16`` codes and decoded on access.
    """

    def __init__(self, n_features: int, seed: int = 0, quantize: bool = True):
        if n_features < 0:
            raise ValueError(f"n_features must be non-negative, got {n_features}")
        self._n_features = int(n_features)
        self._seed = int(seed)
        self._quantize = bool(quantize)
        self._rng = np.random.default_rng(self._seed)
        self._codes = np.zeros((self._n_features, 0), dtype=np.uint16)
        self._exact = np.zeros((self._n_features, 0), dtype=np.float64)
        # One projection matrix is shared by every clone of a simhash family
        # (the serving layer's RNG-stream authority), so concurrent reader
        # threads lazily extending through different clones must serialise
        # their draws: an unguarded interleaved _grow would advance the RNG
        # stream twice for the same column range and corrupt determinism.
        # Readers need no lock — the stored matrix is replaced, never mutated
        # in place, and any replacement preserves all previously drawn columns.
        self._grow_lock = threading.Lock()

    @property
    def n_features(self) -> int:
        """Dimensionality of the vectors the projections act on."""
        return self._n_features

    @property
    def n_columns(self) -> int:
        """Number of projection vectors generated so far."""
        store = self._codes if self._quantize else self._exact
        return store.shape[1]

    @property
    def quantized(self) -> bool:
        """Whether entries are stored as 2-byte codes (the paper's setting)."""
        return self._quantize

    @property
    def nbytes(self) -> int:
        """Bytes used to store the projection matrix."""
        store = self._codes if self._quantize else self._exact
        return int(store.nbytes)

    def _grow(self, n_columns: int) -> None:
        if n_columns <= self.n_columns:
            return
        with self._grow_lock:
            missing = n_columns - self.n_columns  # re-check under the lock
            if missing <= 0:
                return
            # One batched draw: standard_normal fills C order, so row i of the
            # (missing, n_features) draw consumes exactly the same generator
            # stream as a separate per-column standard_normal(n_features) call —
            # a given (seed, column index) always yields the same projection
            # vector regardless of the growth pattern.
            fresh = self._rng.standard_normal((missing, self._n_features)).T
            if self._quantize:
                self._codes = np.hstack([self._codes, quantize_floats(fresh)])
            else:
                self._exact = np.hstack([self._exact, np.ascontiguousarray(fresh)])

    def columns(self, start: int, end: int) -> np.ndarray:
        """Projection vectors ``start .. end-1`` as a float64 matrix ``(n_features, end-start)``."""
        if start < 0 or end < start:
            raise ValueError(f"invalid column range [{start}, {end})")
        self._grow(end)
        if self._quantize:
            return dequantize_floats(self._codes[:, start:end])
        return self._exact[:, start:end].copy()

    def column_subset(self, start: int, indices: np.ndarray) -> np.ndarray:
        """Float64 decode of the columns ``start + indices`` only.

        Equal to ``columns(start, end)[:, indices]`` without decoding (or
        copying) the columns that are not requested — used by the simhash
        sign-boundary recheck, which needs a handful of columns in float64.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros((self._n_features, 0), dtype=np.float64)
        self._grow(int(start + indices.max()) + 1)
        if self._quantize:
            return dequantize_floats(self._codes[:, start + indices])
        return self._exact[:, start + indices].copy()

    def state_dict(self) -> dict:
        """Serialisable generator state (stored matrix + RNG stream position).

        Restoring this onto a fresh instance with the same constructor
        arguments reproduces both the columns already drawn and every column
        still to be drawn, bit for bit.
        """
        return {
            "matrix": (self._codes if self._quantize else self._exact).copy(),
            "quantize": self._quantize,
            "rng_state": json.dumps(self._rng.bit_generator.state),
        }

    def restore_state(self, state: dict) -> None:
        """Restore generator state captured by :meth:`state_dict`."""
        if bool(state["quantize"]) != self._quantize:
            raise ValueError(
                f"snapshot stores quantize={bool(state['quantize'])}, "
                f"this instance was built with quantize={self._quantize}"
            )
        matrix = np.asarray(state["matrix"])
        if matrix.shape[0] != self._n_features:
            raise ValueError(
                f"snapshot projections have {matrix.shape[0]} features, expected "
                f"{self._n_features}"
            )
        if self._quantize:
            self._codes = np.ascontiguousarray(matrix, dtype=np.uint16)
        else:
            self._exact = np.ascontiguousarray(matrix, dtype=np.float64)
        rng_state = state["rng_state"]
        if isinstance(rng_state, str):
            rng_state = json.loads(rng_state)
        self._rng.bit_generator.state = rng_state

    def columns32(self, start: int, end: int) -> np.ndarray:
        """Projection vectors as float32, equal to ``fl32(columns(start, end))``.

        Every mid-point decoded value ``(code + 0.5) * 2**-12 - 8`` is a dyadic
        rational with at most 17 significant bits, so for quantised storage the
        float32 decode is *exact* (identical to casting the float64 decode);
        unquantised storage rounds to float32 once.
        """
        if start < 0 or end < start:
            raise ValueError(f"invalid column range [{start}, {end})")
        self._grow(end)
        if self._quantize:
            codes = self._codes[:, start:end].astype(np.float32)
            return (codes + np.float32(0.5)) * np.float32(_STEP) + np.float32(_RANGE_LOW)
        return self._exact[:, start:end].astype(np.float32)
