"""Minwise hashing — the LSH family for Jaccard similarity.

Each hash function is (an approximation of) a random permutation of the
feature universe; the hash of a set is the minimum feature id under that
permutation (Broder et al., STOC 1998).  For two sets ``x, y``:

    Pr[h_i(x) == h_i(y)] = |x ∩ y| / |x ∪ y| = Jaccard(x, y)

so the collision probability *is* the similarity — no conversion is needed
(unlike the cosine family).

True minwise-independent permutations are impractical; we use the standard
universal-hash approximation ``pi(f) = (a * f + b) mod p`` with a large prime
``p`` and random odd ``a``, which is the same approximation used by every
practical minhash implementation (and by the paper's experimental code).
Each hash value is an integer, so signatures are stored in an
:class:`~repro.hashing.signatures.IntSignatures` store (4-8 bytes per hash,
versus 1 bit for the cosine family — the paper's experiments account for this
difference in their choice of 360 Jaccard hashes vs 2048 cosine bits).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import HashFamily
from repro.hashing.signatures import IntSignatures
from repro.similarity.vectors import VectorCollection

__all__ = ["MinHashFamily"]

#: Mersenne prime 2^31 - 1: with coefficients and feature ids below the prime,
#: ``a * f + b`` stays below 2^62 and int64 arithmetic is exact.
_PRIME = (1 << 31) - 1
_BLOCK = 64


class MinHashFamily(HashFamily):
    """Minwise hashing family producing one integer hash per function.

    Parameters
    ----------
    collection:
        Vectors to hash; only the *support* (set of non-zero feature ids) of
        each row matters.  Empty rows hash to a sentinel value distinct per
        row so that two empty rows never spuriously collide.
    seed:
        Seed for the random universal-hash parameters.
    block_size:
        Number of new hash functions generated per extension request.
    """

    name = "minhash"
    produces_bits = False

    def __init__(
        self,
        collection: VectorCollection,
        seed: int = 0,
        block_size: int = _BLOCK,
    ):
        super().__init__(collection, seed=seed)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        self._rng = np.random.default_rng(seed)
        self._coef_a = np.zeros(0, dtype=np.int64)
        self._coef_b = np.zeros(0, dtype=np.int64)

    def _grow_coefficients(self, n_hashes: int) -> None:
        missing = n_hashes - len(self._coef_a)
        if missing <= 0:
            return
        # Draw (a, b) per hash index so that a given (seed, hash index) always
        # produces the same hash function regardless of how the store grew —
        # families built on different collections (e.g. an indexed corpus and
        # a single query vector) must agree on hash function i.
        new_a = np.empty(missing, dtype=np.int64)
        new_b = np.empty(missing, dtype=np.int64)
        for index in range(missing):
            new_a[index] = self._rng.integers(1, _PRIME, dtype=np.int64)
            new_b[index] = self._rng.integers(0, _PRIME, dtype=np.int64)
        self._coef_a = np.concatenate([self._coef_a, new_a])
        self._coef_b = np.concatenate([self._coef_b, new_b])

    def _make_store(self) -> IntSignatures:
        return IntSignatures(self._collection.n_vectors)

    def _extend(self, store: IntSignatures, n_new: int) -> None:
        n_new = -(-n_new // self._block_size) * self._block_size
        start = store.n_hashes
        end = start + n_new
        self._grow_coefficients(end)
        coef_a = self._coef_a[start:end]
        coef_b = self._coef_b[start:end]

        collection = self._collection
        n_vectors = collection.n_vectors
        values = np.empty((n_vectors, n_new), dtype=np.int64)
        for row in range(n_vectors):
            features = collection.row_features(row)
            if len(features) == 0:
                # Sentinel unique to (row, hash index) so empty rows never collide.
                values[row, :] = -(row + 1)
                continue
            feats = (features.astype(np.int64) % _PRIME)
            # (n_new, n_feats) permuted positions; a, f < 2^31 so a * f + b < 2^62
            # and int64 arithmetic is exact.
            permuted = (coef_a[:, None] * feats[None, :] + coef_b[:, None]) % _PRIME
            values[row, :] = permuted.min(axis=1)
        store.append_values(values)

    def collision_similarity(self, exact_similarity: float) -> float:
        """Collision probability equals the Jaccard similarity itself."""
        return float(exact_similarity)
