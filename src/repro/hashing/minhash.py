"""Minwise hashing — the LSH family for Jaccard similarity.

Each hash function is (an approximation of) a random permutation of the
feature universe; the hash of a set is the minimum feature id under that
permutation (Broder et al., STOC 1998).  For two sets ``x, y``:

    Pr[h_i(x) == h_i(y)] = |x ∩ y| / |x ∪ y| = Jaccard(x, y)

so the collision probability *is* the similarity — no conversion is needed
(unlike the cosine family).

True minwise-independent permutations are impractical; we use the standard
universal-hash approximation ``pi(f) = (a * f + b) mod p`` with a large prime
``p`` and random odd ``a``, which is the same approximation used by every
practical minhash implementation (and by the paper's experimental code).
Each hash value is an integer below ``2^31``, so signatures are stored in an
:class:`~repro.hashing.signatures.IntSignatures` store as ``int32`` (4 bytes
per hash, versus 1 bit for the cosine family — the paper's experiments
account for this difference in their choice of 360 Jaccard hashes vs 2048
cosine bits).

Vectorisation contract
----------------------
Signature generation is a single batched kernel over the whole collection
rather than a per-row loop:

* the collection's supports are flattened once into a CSR-style layout with
  rows grouped by support size (cached per family);
* each block of hash functions evaluates the universal hash on the *unique*
  features only (a ``(n_unique_features, block)`` table), gathers the table
  rows per occurrence — a contiguous-row gather, which NumPy turns into
  per-occurrence ``memcpy`` — and reduces each equal-length row group with a
  SIMD-friendly ``reshape(...).min(axis=1)``;
* row minima are bit-identical to the per-row reference
  (:func:`repro.reference.minhash_signatures_reference`): the table holds
  exactly ``(a * f + b) mod p`` and ``min`` is order-independent.

Hash-function coefficients are drawn with one broadcast
``integers([1, 0], p, size=(missing, 2))`` call, which consumes the
generator stream exactly like the historical per-index interleaved scalar
draws (``a_i`` then ``b_i``), pinned by the growth-pattern tests.  A given
``(seed, hash index)`` therefore always yields the same ``(a, b)`` pair no
matter how the store grows, which is the determinism contract that lets an
indexed corpus and a single query vector agree on hash function ``i``.
"""

from __future__ import annotations

import json
import threading

import numpy as np

from repro.hashing.base import HashFamily
from repro.hashing.signatures import IntSignatures
from repro.similarity.vectors import VectorCollection

__all__ = ["MinHashFamily"]

#: Mersenne prime 2^31 - 1: with coefficients and feature ids below the prime,
#: ``a * f + b`` stays below 2^62 and int64 arithmetic is exact.
_PRIME = (1 << 31) - 1
_BLOCK = 64
#: hash functions are evaluated this many at a time so the gathered
#: occurrence-value matrix stays cache-resident
_KERNEL_CHUNK = 64
#: occurrences per gather/reduce tile (tile bytes = this x chunk x 4)
_TILE_OCCURRENCES = 2048


class _SupportLayout:
    """Flattened, size-grouped, padded view of a collection's supports.

    Built once per family and reused by every extension request.  Rows are
    bucketed by the next power of two of their support size and padded *with
    repetitions of their own first feature* — duplicates are invisible to a
    minimum — so each bucket reduces with one contiguous
    ``reshape(...).min(axis=1)`` over equal-length segments (a handful of
    SIMD reductions instead of one reduction call per distinct row length).
    """

    def __init__(self, collection: VectorCollection):
        matrix = collection.matrix
        indices = matrix.indices
        indptr = matrix.indptr
        row_nnz = np.diff(indptr)
        #: unique feature ids, already reduced modulo the prime
        unique, inverse = np.unique(indices, return_inverse=True)
        self.unique_features = unique.astype(np.int64) % _PRIME
        self.empty_rows = np.flatnonzero(row_nnz == 0)
        nonempty = np.flatnonzero(row_nnz > 0)
        sizes = row_nnz[nonempty]
        # Pad small rows to the next power of two and larger rows to the next
        # multiple of 8: few distinct bucket lengths (few reduction calls)
        # at ~10% padding overhead.
        padded = np.where(
            sizes >= 8,
            ((sizes + 7) // 8) * 8,
            2 ** np.ceil(np.log2(sizes)).astype(np.int64),
        )
        order = np.argsort(padded, kind="stable")
        #: non-empty row ids grouped by padded size
        self.rows_sorted = nonempty[order]
        sizes_sorted = sizes[order]
        padded_sorted = padded[order]
        #: occurrence -> unique-feature index, size-grouped, padded row order
        starts = indptr[self.rows_sorted]
        total = int(padded_sorted.sum())
        segment_offsets = np.concatenate([[0], np.cumsum(padded_sorted)])
        flat = np.arange(total, dtype=np.int64)
        local = flat - np.repeat(segment_offsets[:-1], padded_sorted)
        # Padding positions (local >= row size) re-point at the row's first
        # occurrence; min over duplicates is unchanged.
        local = np.where(local < np.repeat(sizes_sorted, padded_sorted), local, 0)
        occurrence_positions = np.repeat(starts, padded_sorted) + local
        self.flat_inverse = inverse[occurrence_positions].astype(np.intp)
        self.segment_offsets = segment_offsets
        #: (padded size, first row position, last row position) per bucket
        group_sizes, group_starts = np.unique(padded_sorted, return_index=True)
        group_ends = np.append(group_starts[1:], len(padded_sorted))
        self.groups = [
            (int(size), int(first), int(last))
            for size, first, last in zip(group_sizes, group_starts, group_ends)
        ]
        # Tiled reduction plan: each tile covers at most _TILE_OCCURRENCES
        # occurrences of one size group, so the gathered values stay
        # cache-resident between the gather and the row-minimum reduction
        # (the full gather matrix would round-trip through DRAM).
        self.tiles: list[tuple[int, int, int, int, int]] = []
        max_tile = _TILE_OCCURRENCES
        for size, first, last in self.groups:
            rows_per_tile = max(1, _TILE_OCCURRENCES // size)
            max_tile = max(max_tile, size)
            row = first
            while row < last:
                row_end = min(row + rows_per_tile, last)
                self.tiles.append(
                    (
                        size,
                        row,
                        row_end,
                        int(self.segment_offsets[row]),
                        int(self.segment_offsets[row_end]),
                    )
                )
                row = row_end
        self._tile_occupancy = max_tile
        self._tile_buffer: np.ndarray | None = None
        self._mins_buffer: np.ndarray | None = None

    def buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """Persistent kernel scratch (gather tile, row minima).

        Allocated once per layout so repeated lazy extensions — the
        verifier's k-hashes-at-a-time pattern — do not pay a large
        allocation (and its page faults) per extension.
        """
        if self._tile_buffer is None:
            self._tile_buffer = np.empty(
                (self._tile_occupancy, _KERNEL_CHUNK), dtype=np.int32
            )
            self._mins_buffer = np.empty(
                (len(self.rows_sorted), _KERNEL_CHUNK), dtype=np.int32
            )
        return self._tile_buffer, self._mins_buffer


class MinHashFamily(HashFamily):
    """Minwise hashing family producing one integer hash per function.

    Parameters
    ----------
    collection:
        Vectors to hash; only the *support* (set of non-zero feature ids) of
        each row matters.  Empty rows hash to a sentinel value distinct per
        row so that two empty rows never spuriously collide.
    seed:
        Seed for the random universal-hash parameters.
    block_size:
        Number of new hash functions generated per extension request.
    """

    name = "minhash"
    produces_bits = False

    def __init__(
        self,
        collection: VectorCollection,
        seed: int = 0,
        block_size: int = _BLOCK,
    ):
        super().__init__(collection, seed=seed)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._block_size = int(block_size)
        self._rng = np.random.default_rng(seed)
        self._coef_a = np.zeros(0, dtype=np.int64)
        self._coef_b = np.zeros(0, dtype=np.int64)
        self._layout: _SupportLayout | None = None
        # Serialises coefficient draws against concurrent reader threads
        # (coefficient arrays are replaced wholesale, prefix-preserving, so
        # reads outside the lock stay consistent).
        self._coef_lock = threading.Lock()

    def _grow_coefficients(self, n_hashes: int) -> None:
        if n_hashes <= len(self._coef_a):
            return
        with self._coef_lock:
            missing = n_hashes - len(self._coef_a)  # re-check under the lock
            if missing <= 0:
                return
            # One broadcast draw whose stream consumption matches the historical
            # per-index interleaved scalar draws (a_i, b_i, a_{i+1}, ...), so a
            # given (seed, hash index) always produces the same hash function
            # regardless of how the store grew — families built on different
            # collections (e.g. an indexed corpus and a single query vector) must
            # agree on hash function i.
            draws = self._rng.integers([1, 0], _PRIME, size=(missing, 2), dtype=np.int64)
            # Publish b before a: lock-free readers gate on len(_coef_a), so
            # once they see the grown a-array the matching b-array must
            # already be in place.
            self._coef_b = np.concatenate([self._coef_b, draws[:, 1]])
            self._coef_a = np.concatenate([self._coef_a, draws[:, 0]])

    def coefficients(self, n_hashes: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(a, b)`` coefficient arrays of hash functions ``0 .. n_hashes-1``.

        Exposed so that scalar reference implementations (and tests) can
        evaluate exactly the same hash functions the batched kernel uses.
        """
        self._grow_coefficients(n_hashes)
        return self._coef_a[:n_hashes].copy(), self._coef_b[:n_hashes].copy()

    def _make_store(self) -> IntSignatures:
        return IntSignatures(self._collection.n_vectors)

    def _support_layout(self) -> _SupportLayout:
        if self._layout is None:
            self._layout = _SupportLayout(self._collection)
        return self._layout

    def _extend(self, store: IntSignatures, n_new: int) -> None:
        n_new = -(-n_new // self._block_size) * self._block_size
        start = store.n_hashes
        end = start + n_new
        self._grow_coefficients(end)

        layout = self._support_layout()
        n_vectors = self._collection.n_vectors
        # Hash values live below 2^31 so int32 storage is exact; the empty-row
        # sentinel -(row + 1) also fits as long as the collection has fewer
        # than 2^31 rows.
        values = np.empty((n_vectors, n_new), dtype=np.int32)
        if len(layout.empty_rows):
            # Sentinel unique to the row so empty rows never collide.
            values[layout.empty_rows, :] = -(layout.empty_rows[:, None] + 1)

        features = layout.unique_features
        gather_buffer, mins_buffer = layout.buffers()
        for chunk_start in range(0, n_new, _KERNEL_CHUNK):
            chunk_end = min(chunk_start + _KERNEL_CHUNK, n_new)
            width = chunk_end - chunk_start
            coef_a = self._coef_a[start + chunk_start : start + chunk_end]
            coef_b = self._coef_b[start + chunk_start : start + chunk_end]
            # (n_unique, width) permuted positions; a, f < 2^31 so
            # a * f + b < 2^62 and int64 arithmetic is exact.  The modulo by
            # the Mersenne prime is two shift-and-add folds plus one
            # conditional subtraction — exactly x mod p, much cheaper than %.
            permuted = features[:, None] * coef_a[None, :]
            permuted += coef_b[None, :]
            permuted = (permuted & _PRIME) + (permuted >> 31)
            permuted = (permuted & _PRIME) + (permuted >> 31)
            permuted -= (permuted >= _PRIME) * np.int64(_PRIME)
            table = permuted.astype(np.int32)
            if width == _KERNEL_CHUNK:
                # Tile-fused gather + reduce: each tile's contiguous-row
                # gather (one memcpy per occurrence) lands in a cache-resident
                # buffer that the row-minimum reduction consumes immediately.
                for size, row, row_end, o0, o1 in layout.tiles:
                    tile = gather_buffer[: o1 - o0]
                    np.take(table, layout.flat_inverse[o0:o1], axis=0, out=tile)
                    tile.reshape(row_end - row, size, width).min(
                        axis=1, out=mins_buffer[row:row_end]
                    )
            else:
                # Partial-width tail (non-default block sizes only): plain
                # gather-then-reduce per size group.
                flat = np.take(table, layout.flat_inverse, axis=0)
                for size, first, last in layout.groups:
                    o0 = layout.segment_offsets[first]
                    o1 = layout.segment_offsets[last]
                    flat[o0:o1].reshape(last - first, size, width).min(
                        axis=1, out=mins_buffer[first:last, :width]
                    )
            values[layout.rows_sorted, chunk_start:chunk_end] = mins_buffer[:, :width]
        store.append_values(values)

    def clone_for(self, collection: VectorCollection) -> "MinHashFamily":
        """A family over ``collection`` evaluating the *same* hash functions.

        Drawn coefficients and the RNG position are copied, so hash function
        ``i`` of the clone is hash function ``i`` of this family and future
        lazy draws continue the identical deterministic stream (see
        :meth:`HashFamily.clone_for` for the contract).
        """
        clone = MinHashFamily(collection, seed=self._seed, block_size=self._block_size)
        clone._coef_a = self._coef_a.copy()
        clone._coef_b = self._coef_b.copy()
        clone._rng.bit_generator.state = self._rng.bit_generator.state
        return clone

    def state_dict(self) -> dict:
        """Drawn ``(a, b)`` coefficients plus the JSON-encoded RNG position."""
        return {
            "coef_a": self._coef_a.copy(),
            "coef_b": self._coef_b.copy(),
            "rng_state": json.dumps(self._rng.bit_generator.state),
        }

    def restore_state(self, state: dict) -> None:
        """Restore coefficients and RNG position captured by :meth:`state_dict`."""
        coef_a = np.asarray(state["coef_a"], dtype=np.int64)
        coef_b = np.asarray(state["coef_b"], dtype=np.int64)
        if coef_a.shape != coef_b.shape:
            raise ValueError("coefficient arrays must have matching shapes")
        self._coef_a = coef_a.copy()
        self._coef_b = coef_b.copy()
        rng_state = state["rng_state"]
        if isinstance(rng_state, str):
            rng_state = json.loads(rng_state)
        self._rng.bit_generator.state = rng_state

    def collision_similarity(self, exact_similarity: float) -> float:
        """Collision probability equals the Jaccard similarity itself."""
        return float(exact_similarity)
