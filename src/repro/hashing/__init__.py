"""Locality-sensitive hash families and signature storage.

Two LSH families from the paper are implemented:

* :class:`~repro.hashing.minhash.MinHashFamily` — minwise hashing for Jaccard
  similarity.  Each hash is an integer (the minimum element of the row's
  support under a random universal-hash "permutation").
* :class:`~repro.hashing.simhash.SimHashFamily` — signed random projections
  for cosine similarity.  Each hash is a single bit, and the collision
  probability is ``r(x, y) = 1 - theta(x, y) / pi``.

Signatures are stored in compact stores (:mod:`repro.hashing.signatures`)
that support the two operations every algorithm needs: counting hash
agreements over a prefix range ``[start, end)`` of hash indices (BayesLSH's
incremental comparison), and extracting banded signatures for the LSH
candidate-generation index.

The 2-byte quantisation scheme for storing random Gaussian projections
(Section 4.3 of the paper) lives in :mod:`repro.hashing.quantization`.
"""

from repro.hashing.base import HashFamily, get_hash_family
from repro.hashing.minhash import MinHashFamily
from repro.hashing.simhash import SimHashFamily
from repro.hashing.quantization import QuantizedGaussian, quantize_floats, dequantize_floats
from repro.hashing.signatures import BitSignatures, IntSignatures, SignatureStore

__all__ = [
    "BitSignatures",
    "HashFamily",
    "IntSignatures",
    "MinHashFamily",
    "QuantizedGaussian",
    "SignatureStore",
    "SimHashFamily",
    "dequantize_floats",
    "get_hash_family",
    "quantize_floats",
]
