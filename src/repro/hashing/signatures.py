"""Compact signature stores with prefix agreement counting.

BayesLSH repeatedly asks one question of the hashes: *how many of hashes
``start .. end-1`` agree between rows* ``i`` *and* ``j``?  The LSH candidate
generation index asks a second question: *give me the bytes of band* ``b``
*(hashes ``b*k .. (b+1)*k - 1``) of row* ``i`` so it can be used as a
hash-table key.

Two stores implement these operations:

* :class:`BitSignatures` — packed bit signatures (one bit per hash) for the
  signed-random-projection family, stored as ``uint32`` words so that the
  paper's batch size ``k = 32`` aligns with whole words.
* :class:`IntSignatures` — integer signatures (one ``int64`` per hash) for
  minwise hashing.

Both stores are append-only: more hash functions can be added later, which is
how the library reproduces the paper's "each point is hashed only as many
times as necessary" behaviour without re-hashing from scratch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["SignatureStore", "BitSignatures", "IntSignatures"]

_WORD_BITS = 32


class SignatureStore(ABC):
    """Common interface of the two signature containers."""

    @property
    @abstractmethod
    def n_vectors(self) -> int:
        """Number of rows stored."""

    @property
    @abstractmethod
    def n_hashes(self) -> int:
        """Number of hash functions currently materialised."""

    @abstractmethod
    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        """Number of agreeing hashes between rows ``i`` and ``j`` in ``[start, end)``."""

    @abstractmethod
    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        """Hashable key for the ``band``-th group of ``band_width`` hashes of row ``i``."""

    def agreement_fraction(self, i: int, j: int, n: int) -> float:
        """Fraction of the first ``n`` hashes that agree (the MLE estimator)."""
        if n <= 0:
            return 0.0
        return self.count_matches(i, j, 0, n) / n


class BitSignatures(SignatureStore):
    """Packed one-bit-per-hash signatures (signed random projections).

    Bits are stored LSB-first inside ``uint32`` words: hash index ``h`` of row
    ``i`` lives at word ``h // 32``, bit ``h % 32``.
    """

    def __init__(self, n_vectors: int):
        self._n_vectors = int(n_vectors)
        self._words = np.zeros((self._n_vectors, 0), dtype=np.uint32)
        self._n_hashes = 0

    @property
    def n_vectors(self) -> int:
        return self._n_vectors

    @property
    def n_hashes(self) -> int:
        return self._n_hashes

    @property
    def words(self) -> np.ndarray:
        """The raw packed words, shape ``(n_vectors, n_words)``."""
        return self._words

    def append_bits(self, bits: np.ndarray) -> None:
        """Append a block of new hash bits.

        Parameters
        ----------
        bits:
            Array of shape ``(n_vectors, n_new)`` with values in {0, 1}.  The
            number of already-stored hashes plus ``n_new`` must stay a
            multiple of 32 *unless* this is the final block; in practice every
            caller appends multiples of 32 which keeps words dense.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[0] != self._n_vectors:
            raise ValueError(
                f"expected bits of shape ({self._n_vectors}, n_new), got {bits.shape}"
            )
        n_new = bits.shape[1]
        if n_new == 0:
            return
        if self._n_hashes % _WORD_BITS != 0:
            raise ValueError(
                "cannot append to a store whose current size is not a multiple of 32"
            )
        bits = bits.astype(np.uint8)
        # Pack LSB-first into uint32 words.
        n_words_new = -(-n_new // _WORD_BITS)
        padded = np.zeros((self._n_vectors, n_words_new * _WORD_BITS), dtype=np.uint8)
        padded[:, :n_new] = bits
        shaped = padded.reshape(self._n_vectors, n_words_new, _WORD_BITS)
        weights = (1 << np.arange(_WORD_BITS, dtype=np.uint64)).astype(np.uint64)
        new_words = (shaped.astype(np.uint64) * weights).sum(axis=2).astype(np.uint32)
        self._words = np.hstack([self._words, new_words]) if self._words.size else new_words
        self._n_hashes += n_new

    def get_bits(self, i: int, start: int, end: int) -> np.ndarray:
        """Bits of row ``i`` for hash indices ``[start, end)`` as a uint8 array."""
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        words = self._words[i, word_start:word_end]
        bits = np.unpackbits(
            words.view(np.uint8).reshape(-1, 4), axis=1, bitorder="little"
        ).ravel()
        offset = start - word_start * _WORD_BITS
        return bits[offset : offset + (end - start)]

    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        if end <= start:
            return 0
        if start % _WORD_BITS == 0 and end % _WORD_BITS == 0:
            word_start = start // _WORD_BITS
            word_end = end // _WORD_BITS
            xor = np.bitwise_xor(
                self._words[i, word_start:word_end], self._words[j, word_start:word_end]
            )
            disagreements = int(np.bitwise_count(xor).sum())
            return (end - start) - disagreements
        bits_i = self.get_bits(i, start, end)
        bits_j = self.get_bits(j, start, end)
        return int(np.sum(bits_i == bits_j))

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """Vectorised :meth:`count_matches` over parallel arrays of row indices."""
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        if end <= start:
            return np.zeros(len(left), dtype=np.int64)
        if start % _WORD_BITS or end % _WORD_BITS:
            return np.array(
                [self.count_matches(i, j, start, end) for i, j in zip(left, right)],
                dtype=np.int64,
            )
        word_start = start // _WORD_BITS
        word_end = end // _WORD_BITS
        xor = np.bitwise_xor(
            self._words[np.asarray(left), word_start:word_end],
            self._words[np.asarray(right), word_start:word_end],
        )
        disagreements = np.bitwise_count(xor).sum(axis=1).astype(np.int64)
        return (end - start) - disagreements

    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        start = band * band_width
        end = start + band_width
        if start % _WORD_BITS == 0 and end % _WORD_BITS == 0:
            word_start = start // _WORD_BITS
            word_end = end // _WORD_BITS
            return self._words[i, word_start:word_end].tobytes()
        return self.get_bits(i, start, end).tobytes()


class IntSignatures(SignatureStore):
    """Integer signatures (minwise hashing), one ``int64`` per hash."""

    def __init__(self, n_vectors: int):
        self._n_vectors = int(n_vectors)
        self._values = np.zeros((self._n_vectors, 0), dtype=np.int64)

    @property
    def n_vectors(self) -> int:
        return self._n_vectors

    @property
    def n_hashes(self) -> int:
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The raw signature matrix, shape ``(n_vectors, n_hashes)``."""
        return self._values

    def append_values(self, values: np.ndarray) -> None:
        """Append a block of new integer hashes of shape ``(n_vectors, n_new)``."""
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 2 or values.shape[0] != self._n_vectors:
            raise ValueError(
                f"expected values of shape ({self._n_vectors}, n_new), got {values.shape}"
            )
        if values.shape[1] == 0:
            return
        self._values = (
            np.hstack([self._values, values]) if self._values.size else values
        )

    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        if end <= start:
            return 0
        return int(np.sum(self._values[i, start:end] == self._values[j, start:end]))

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """Vectorised :meth:`count_matches` over parallel arrays of row indices."""
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        if end <= start:
            return np.zeros(len(left), dtype=np.int64)
        equal = (
            self._values[np.asarray(left), start:end]
            == self._values[np.asarray(right), start:end]
        )
        return equal.sum(axis=1).astype(np.int64)

    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        start = band * band_width
        end = start + band_width
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        return self._values[i, start:end].tobytes()
