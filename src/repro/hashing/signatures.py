"""Compact signature stores with prefix agreement counting.

BayesLSH repeatedly asks one question of the hashes: *how many of hashes
``start .. end-1`` agree between rows* ``i`` *and* ``j``?  The LSH candidate
generation index asks a second question: *give me the bytes of band* ``b``
*(hashes ``b*k .. (b+1)*k - 1``) of row* ``i`` so it can be used as a
hash-table key.

Two stores implement these operations:

* :class:`BitSignatures` — packed bit signatures (one bit per hash) for the
  signed-random-projection family, stored as ``uint32`` words so that the
  paper's batch size ``k = 32`` aligns with whole words.
* :class:`IntSignatures` — integer signatures (one integer per hash) for
  minwise hashing.

Both stores are append-only: more hash functions can be added later, which is
how the library reproduces the paper's "each point is hashed only as many
times as necessary" behaviour without re-hashing from scratch.

Batching layout
---------------
Appended blocks are kept as a list of column chunks and only concatenated
into one matrix when a read actually spans more than one chunk (lazy
consolidation).  The algorithms' access pattern — append a block of ``k``
hashes, then compare exactly that block for the still-active pairs — then
costs O(rows x k) per round instead of the O(rows x total) per round that
re-allocating a single growing matrix would cost.  Batched readers
(:meth:`count_matches_many`, :meth:`band_keys_many`) take parallel index
arrays so the per-pair work stays inside NumPy.
"""

from __future__ import annotations

import threading

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "SignatureStore",
    "BitSignatures",
    "IntSignatures",
    "count_packed_matches",
]

_WORD_BITS = 32

#: Soft cap on the live gather scratch of the wide (multi-round / cross-store)
#: kernels, in bytes per buffer.  Large pair batches are processed in pair
#: tiles sized so the gathered left rows, right rows and comparison buffer of
#: one tile together stay resident in a per-core L2 cache (three buffers of
#: `_TILE_BYTES` plus source cache lines fit comfortably in 1 MiB); the wide
#: gather previously round-tripped every buffer through DRAM once per pass,
#: which is why super-blocked gathers used to *lose* at large active counts
#: (see ROADMAP).  Tiling splits only the pair axis — every per-pair value is
#: computed by the identical expressions, so results are bit-identical to the
#: untiled kernel for any tile size.
_TILE_BYTES = 1 << 18
#: minimum pairs per tile (keeps per-tile Python overhead negligible)
_MIN_TILE_ROWS = 256


def _tile_rows(span_bytes: int) -> int:
    """Pairs per tile so one gathered buffer stays within :data:`_TILE_BYTES`."""
    return max(_MIN_TILE_ROWS, _TILE_BYTES // max(1, span_bytes))


def count_packed_matches(
    left_words: np.ndarray, right_words: np.ndarray, lead: int, n_bits: int
) -> np.ndarray:
    """Agreeing bits between packed word rows, restricted to a bit window.

    ``left_words`` / ``right_words`` are parallel ``(n_pairs, n_words)``
    ``uint32`` arrays; the window covers bits ``[lead, lead + n_bits)`` of the
    flattened LSB-first bit stream of each row.  Bits outside the window are
    masked off the XOR words before the popcount, so unaligned windows cost
    two extra masked ANDs instead of a per-pair unpack loop.

    Shared between the in-process stores and the shared-memory readers of the
    parallel executor so both count with literally the same integer ops.
    """
    if n_bits <= 0:
        return np.zeros(len(left_words), dtype=np.int64)
    xor = np.bitwise_xor(left_words, right_words)
    if lead:
        xor[:, 0] &= np.uint32((0xFFFFFFFF << lead) & 0xFFFFFFFF)
    tail = xor.shape[1] * _WORD_BITS - (lead + n_bits)
    if tail:
        xor[:, -1] &= np.uint32(0xFFFFFFFF >> tail)
    disagreements = np.bitwise_count(xor).sum(axis=1, dtype=np.int64)
    return n_bits - disagreements


class SignatureStore(ABC):
    """Common interface of the two signature containers."""

    @property
    @abstractmethod
    def n_vectors(self) -> int:
        """Number of rows stored."""

    @property
    @abstractmethod
    def n_hashes(self) -> int:
        """Number of hash functions currently materialised."""

    @abstractmethod
    def append_rows_from(self, other: "SignatureStore") -> None:
        """Append every row of ``other`` below the existing rows.

        ``other`` must be a store of the same concrete type holding exactly
        :attr:`n_hashes` hashes per row — the serving layer hashes freshly
        inserted vectors with a clone of the index's family (same seed, hence
        the same hash functions) and splices the resulting rows in here.
        """

    @abstractmethod
    def count_matches_cross(
        self, rows: np.ndarray, other: "SignatureStore", other_rows: np.ndarray,
        start: int, end: int,
    ) -> np.ndarray:
        """Agreement counts between rows of *this* store and rows of ``other``.

        The cross-store twin of :meth:`count_matches_many`: entry ``p`` counts
        the hashes in ``[start, end)`` on which row ``rows[p]`` of this store
        agrees with row ``other_rows[p]`` of ``other``.  Both stores must hold
        signatures drawn from the same hash functions (same family type and
        seed); this is how a batch of queries is verified against an indexed
        corpus without merging the two collections.
        """

    @abstractmethod
    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        """Number of agreeing hashes between rows ``i`` and ``j`` in ``[start, end)``."""

    @abstractmethod
    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        """Hashable key for the ``band``-th group of ``band_width`` hashes of row ``i``."""

    @abstractmethod
    def band_keys_many(self, rows: np.ndarray, band: int, band_width: int) -> np.ndarray:
        """Band contents for many rows at once, as a 2-D array.

        Rows whose returned rows compare equal element-wise belong to the same
        bucket; the array form lets callers group rows with ``np.unique``
        instead of hashing per-row byte strings.
        """

    @abstractmethod
    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """Vectorised :meth:`count_matches` over parallel arrays of row indices."""

    def count_matches_rounds(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int, round_width: int
    ) -> np.ndarray:
        """Per-round match counts over a multi-round super-block of hashes.

        Splits ``[start, end)`` into consecutive rounds of ``round_width``
        hashes and returns an ``(n_pairs, n_rounds)`` array whose column ``r``
        equals ``count_matches_many(left, right, start + r*w, start + (r+1)*w)``.
        The base implementation simply loops over rounds; the concrete stores
        override it with a single gather for the whole super-block, which is
        what cuts the repeated row-gather traffic for long-surviving pairs.
        """
        span = end - start
        if span < 0 or round_width <= 0 or span % round_width:
            raise ValueError(
                f"[{start}, {end}) is not a whole number of rounds of width {round_width}"
            )
        n_rounds = span // round_width
        counts = np.empty((len(left), n_rounds), dtype=np.int64)
        for r in range(n_rounds):
            counts[:, r] = self.count_matches_many(
                left, right, start + r * round_width, start + (r + 1) * round_width
            )
        return counts

    def agreement_fraction(self, i: int, j: int, n: int) -> float:
        """Fraction of the first ``n`` hashes that agree (the MLE estimator)."""
        if n <= 0:
            return 0.0
        return self.count_matches(i, j, 0, n) / n

    def rebind(self, backing: np.ndarray) -> None:
        """Swap the store's backing matrix for an equal-valued replacement.

        Used by the spill path to move a store's signatures onto a read-only
        memory map of the flat snapshot just written from it (see
        :meth:`_ChunkedMatrix.rebind` for the invariants).  The store object
        — and every family clone holding a reference to it — is unchanged;
        only where the words live moves.
        """
        self._matrix.rebind(np.asarray(backing))


class _ChunkedMatrix:
    """A matrix of signature columns grown by appending column blocks.

    Chunks are concatenated lazily: reads that stay inside one chunk (the
    overwhelmingly common case for the round-synchronous verifiers, which
    always read the newest block) never trigger a copy, while reads spanning
    chunks consolidate once and cache the result.
    """

    def __init__(self, n_rows: int):
        self._n_rows = int(n_rows)
        self._chunks: list[np.ndarray] = []
        self._offsets: list[int] = []  # starting column of each chunk
        self._n_columns = 0
        # Serialises the mutating operations (append / consolidation /
        # extend_rows) against each other.  Plain column reads stay lock-free:
        # chunk contents are immutable once appended, the chunk/offset lists
        # only ever grow or get replaced wholesale by equivalent consolidated
        # state, and `_n_columns` is published *after* its chunk — so a
        # lock-free reader sees a consistent prefix of the matrix.
        self._lock = threading.Lock()

    @property
    def n_columns(self) -> int:
        return self._n_columns

    def append(self, block: np.ndarray) -> None:
        with self._lock:
            self._offsets.append(self._n_columns)
            self._chunks.append(block)
            self._n_columns += block.shape[1]

    def consolidated(self) -> np.ndarray:
        """The full matrix; concatenates (and caches) the chunks on demand."""
        chunks = self._chunks
        if len(chunks) == 1:
            return chunks[0]
        with self._lock:
            if len(self._chunks) == 1:
                return self._chunks[0]
            if not self._chunks:
                return np.zeros((self._n_rows, 0), dtype=np.int64)
            merged = np.concatenate(self._chunks, axis=1)
            self._chunks = [merged]
            self._offsets = [0]
            return merged

    def columns(self, start: int, end: int) -> np.ndarray:
        """A view (or consolidated slice) of columns ``[start, end)``."""
        for offset, chunk in zip(self._offsets, self._chunks):
            if offset <= start and end <= offset + chunk.shape[1]:
                return chunk[:, start - offset : end - offset]
        return self.consolidated()[:, start:end]

    def columns_contiguous(self, start: int, end: int) -> np.ndarray:
        """Like :meth:`columns` but guaranteed C-contiguous.

        Batched row gathers from a contiguous block are per-row ``memcpy``s,
        whereas gathers from a column-sliced view degrade to per-element
        copies; the one-off column copy here is far cheaper than that.
        """
        columns = self.columns(start, end)
        if columns.flags.c_contiguous:
            return columns
        return np.ascontiguousarray(columns)

    def rebind(self, backing: np.ndarray) -> None:
        """Replace the consolidated chunk with an equal-valued backing array.

        The spill path rebinds a store to the read-only memory map of the
        flat-snapshot file that was just serialised from it.  The matrix must
        already be consolidated to a single chunk (serialisation consolidates
        as a side effect) and ``backing`` must match its shape and dtype
        exactly; values are assumed identical because the backing *is* the
        serialised copy.  Readers are unaffected mid-swap: both arrays are
        immutable and hold the same bits.
        """
        with self._lock:
            if not self._chunks:
                if backing.shape[1] != 0:
                    raise ValueError(
                        f"cannot rebind an empty matrix to shape {backing.shape}"
                    )
                return
            if len(self._chunks) != 1:
                raise ValueError(
                    "rebind requires a consolidated matrix; call consolidated() first"
                )
            current = self._chunks[0]
            if backing.shape != current.shape or backing.dtype != current.dtype:
                raise ValueError(
                    f"backing of shape {backing.shape} dtype {backing.dtype} does not "
                    f"match chunk of shape {current.shape} dtype {current.dtype}"
                )
            self._chunks = [backing]

    def extend_rows(self, block: np.ndarray) -> None:
        """Append rows below the existing ones (the column count must match).

        Row growth is much rarer than column growth (one call per ingest
        batch, not one per hash round), so it simply consolidates and
        reallocates; mixed integer dtypes promote to the common signed type,
        matching what lazy consolidation of mixed column chunks would do.
        """
        if block.ndim != 2 or block.shape[1] != self._n_columns:
            raise ValueError(
                f"expected a block of shape (n_new_rows, {self._n_columns}), got {block.shape}"
            )
        if self._n_columns:
            mine = self.consolidated()
            common = np.promote_types(mine.dtype, block.dtype)
            merged = np.concatenate(
                [mine.astype(common, copy=False), block.astype(common, copy=False)]
            )
            with self._lock:
                self._chunks = [merged]
                self._offsets = [0]
        self._n_rows += block.shape[0]


class BitSignatures(SignatureStore):
    """Packed one-bit-per-hash signatures (signed random projections).

    Bits are stored LSB-first inside ``uint32`` words: hash index ``h`` of row
    ``i`` lives at word ``h // 32``, bit ``h % 32``.
    """

    def __init__(self, n_vectors: int):
        self._n_vectors = int(n_vectors)
        self._matrix = _ChunkedMatrix(self._n_vectors)
        self._n_hashes = 0

    @classmethod
    def from_words(cls, words: np.ndarray, n_hashes: int) -> "BitSignatures":
        """Rebuild a store from its packed words (snapshot restore path)."""
        words = np.ascontiguousarray(words, dtype=np.uint32)
        if words.ndim != 2:
            raise ValueError(f"expected a 2-D word matrix, got shape {words.shape}")
        if not 0 <= n_hashes <= words.shape[1] * _WORD_BITS:
            raise ValueError(
                f"n_hashes={n_hashes} inconsistent with {words.shape[1]} words per row"
            )
        store = cls(words.shape[0])
        if words.shape[1]:
            store._matrix.append(words)
        store._n_hashes = int(n_hashes)
        return store

    def append_rows_from(self, other: SignatureStore) -> None:
        """Append every row of ``other`` below the existing rows (see base)."""
        if not isinstance(other, BitSignatures):
            raise TypeError(f"cannot append rows of {type(other).__name__} to BitSignatures")
        if other.n_hashes != self._n_hashes:
            raise ValueError(
                f"row source holds {other.n_hashes} hashes, this store {self._n_hashes}"
            )
        self._matrix.extend_rows(other.words)
        self._n_vectors += other.n_vectors

    @property
    def n_vectors(self) -> int:
        """Number of signature rows stored."""
        return self._n_vectors

    @property
    def n_hashes(self) -> int:
        """Number of hash bits materialised per row."""
        return self._n_hashes

    @property
    def words(self) -> np.ndarray:
        """The raw packed words, shape ``(n_vectors, n_words)``."""
        words = self._matrix.consolidated()
        if words.dtype != np.uint32:  # empty store placeholder
            return np.zeros((self._n_vectors, 0), dtype=np.uint32)
        return words

    def append_bits(self, bits: np.ndarray) -> None:
        """Append a block of new hash bits.

        Parameters
        ----------
        bits:
            Array of shape ``(n_vectors, n_new)`` with values in {0, 1}.  The
            number of already-stored hashes plus ``n_new`` must stay a
            multiple of 32 *unless* this is the final block; in practice every
            caller appends multiples of 32 which keeps words dense.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[0] != self._n_vectors:
            raise ValueError(
                f"expected bits of shape ({self._n_vectors}, n_new), got {bits.shape}"
            )
        n_new = bits.shape[1]
        if n_new == 0:
            return
        if self._n_hashes % _WORD_BITS != 0:
            raise ValueError(
                "cannot append to a store whose current size is not a multiple of 32"
            )
        bits = bits.astype(np.uint8)
        # Pack LSB-first into uint32 words.
        n_words_new = -(-n_new // _WORD_BITS)
        padded = np.zeros((self._n_vectors, n_words_new * _WORD_BITS), dtype=np.uint8)
        padded[:, :n_new] = bits
        shaped = padded.reshape(self._n_vectors, n_words_new, _WORD_BITS)
        weights = (1 << np.arange(_WORD_BITS, dtype=np.uint64)).astype(np.uint64)
        new_words = (shaped.astype(np.uint64) * weights).sum(axis=2).astype(np.uint32)
        self._matrix.append(new_words)
        self._n_hashes += n_new

    def _word_columns(self, word_start: int, word_end: int) -> np.ndarray:
        return self._matrix.columns(word_start, word_end)

    def get_bits(self, i: int, start: int, end: int) -> np.ndarray:
        """Bits of row ``i`` for hash indices ``[start, end)`` as a uint8 array."""
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        words = np.ascontiguousarray(self._word_columns(word_start, word_end)[i])
        bits = np.unpackbits(
            words.view(np.uint8).reshape(-1, 4), axis=1, bitorder="little"
        ).ravel()
        offset = start - word_start * _WORD_BITS
        return bits[offset : offset + (end - start)]

    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        """Agreeing bits between rows ``i`` and ``j`` in hash window ``[start, end)``."""
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        if end <= start:
            return 0
        if start % _WORD_BITS == 0 and end % _WORD_BITS == 0:
            words = self._word_columns(start // _WORD_BITS, end // _WORD_BITS)
            xor = np.bitwise_xor(words[i], words[j])
            disagreements = int(np.bitwise_count(xor).sum())
            return (end - start) - disagreements
        bits_i = self.get_bits(i, start, end)
        bits_j = self.get_bits(j, start, end)
        return int(np.sum(bits_i == bits_j))

    def word_block(self, word_start: int, word_end: int) -> np.ndarray:
        """Packed words ``[word_start, word_end)`` as a C-contiguous matrix.

        Public accessor used by the parallel executor to export signature
        words into shared memory without going through :attr:`words` (which
        consolidates the whole store).
        """
        return self._matrix.columns_contiguous(word_start, word_end)

    def chunk_map(self) -> list[tuple[int, int, np.ndarray]]:
        """Lock-free snapshot of the column-chunk layout as hash ranges.

        Returns ``(hash_start, hash_end, words)`` triples tiling
        ``[0, n_hashes)`` in order.  Used by forked executor workers, which
        must read their inherited store copy without touching its lock (the
        fork may have captured another thread's lock in the locked state);
        chunk arrays are immutable once appended, so the snapshot stays
        valid for the worker's lifetime.
        """
        return [
            (offset * _WORD_BITS, (offset + chunk.shape[1]) * _WORD_BITS, chunk)
            for offset, chunk in zip(self._matrix._offsets, self._matrix._chunks)
        ]

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """Vectorised :meth:`count_matches` over parallel arrays of row indices.

        Word-unaligned ``start``/``end`` are handled by masking the partial
        edge words of the XOR before the popcount (no per-pair Python loop).
        """
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        if end <= start:
            return np.zeros(len(left), dtype=np.int64)
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        words = self._matrix.columns_contiguous(word_start, word_end)
        return count_packed_matches(
            words[np.asarray(left)],
            words[np.asarray(right)],
            start - word_start * _WORD_BITS,
            end - start,
        )

    def count_matches_cross(
        self, rows: np.ndarray, other: SignatureStore, other_rows: np.ndarray,
        start: int, end: int,
    ) -> np.ndarray:
        """Cross-store agreement counts (see base); both stores must share hash functions."""
        if not isinstance(other, BitSignatures):
            raise TypeError(f"cannot cross-count against {type(other).__name__}")
        if end > self._n_hashes or end > other.n_hashes:
            raise IndexError(
                f"hash index {end} out of range (have {self._n_hashes} / {other.n_hashes})"
            )
        if end <= start:
            return np.zeros(len(rows), dtype=np.int64)
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        words_mine = self._matrix.columns_contiguous(word_start, word_end)
        words_other = other._matrix.columns_contiguous(word_start, word_end)
        rows = np.asarray(rows)
        other_rows = np.asarray(other_rows)
        lead = start - word_start * _WORD_BITS
        n_pairs = len(rows)
        # Cache-aware pair tiling: one tile's gathered word rows (both sides)
        # stay L2-resident through the XOR + popcount pass.  Small batches run
        # in a single tile, i.e. exactly the former wide gather.
        tile = _tile_rows((word_end - word_start) * 4)
        if n_pairs <= tile:
            return count_packed_matches(
                words_mine[rows], words_other[other_rows], lead, end - start
            )
        counts = np.empty(n_pairs, dtype=np.int64)
        for lo in range(0, n_pairs, tile):
            hi = min(lo + tile, n_pairs)
            counts[lo:hi] = count_packed_matches(
                words_mine[rows[lo:hi]],
                words_other[other_rows[lo:hi]],
                lead,
                end - start,
            )
        return counts

    def count_matches_rounds(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int, round_width: int
    ) -> np.ndarray:
        """Super-block gather with cache-aware pair tiling.

        Gathers the whole ``[start, end)`` word range once per pair instead of
        once per round, processing pairs in tiles sized so one tile's gathered
        rows (left, XOR scratch) stay inside L2 — which is what makes the wide
        gather win at *large* active counts too, not only for small survivor
        tails (per-pair counts are bit-identical for any tile size).
        """
        if (
            start % _WORD_BITS
            or round_width <= 0
            or round_width % _WORD_BITS
            or (end - start) % round_width
        ):
            return super().count_matches_rounds(left, right, start, end, round_width)
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        n_pairs = len(left)
        n_rounds = (end - start) // round_width
        if end <= start:
            return np.zeros((n_pairs, 0), dtype=np.int64)
        words = self._matrix.columns_contiguous(start // _WORD_BITS, end // _WORD_BITS)
        left = np.asarray(left)
        right = np.asarray(right)
        words_per_round = round_width // _WORD_BITS
        counts = np.empty((n_pairs, n_rounds), dtype=np.int64)
        tile = _tile_rows(words.shape[1] * 4)
        for lo in range(0, n_pairs, tile):
            hi = min(lo + tile, n_pairs)
            xor = np.bitwise_xor(words[left[lo:hi]], words[right[lo:hi]])
            per_word = np.bitwise_count(xor)
            counts[lo:hi] = per_word.reshape(hi - lo, n_rounds, words_per_round).sum(
                axis=2, dtype=np.int64
            )
        np.subtract(round_width, counts, out=counts)
        return counts

    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        """Hashable bytes of band ``band`` (bits ``band*width .. (band+1)*width``) of row ``i``."""
        start = band * band_width
        end = start + band_width
        if start % _WORD_BITS == 0 and end % _WORD_BITS == 0:
            words = self._word_columns(start // _WORD_BITS, end // _WORD_BITS)
            return np.ascontiguousarray(words[i]).tobytes()
        return self.get_bits(i, start, end).tobytes()

    def band_keys_many(self, rows: np.ndarray, band: int, band_width: int) -> np.ndarray:
        """Band contents for many rows at once (packed words when word-aligned)."""
        start = band * band_width
        end = start + band_width
        if end > self._n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self._n_hashes})")
        rows = np.asarray(rows, dtype=np.int64)
        word_start = start // _WORD_BITS
        word_end = -(-end // _WORD_BITS)
        words = np.ascontiguousarray(self._word_columns(word_start, word_end)[rows])
        if start % _WORD_BITS == 0 and end % _WORD_BITS == 0:
            return words
        bits = np.unpackbits(
            words.view(np.uint8).reshape(len(rows), (word_end - word_start) * 4),
            axis=1,
            bitorder="little",
        )
        offset = start - word_start * _WORD_BITS
        return np.ascontiguousarray(bits[:, offset : offset + band_width])


class IntSignatures(SignatureStore):
    """Integer signatures (minwise hashing), one integer per hash.

    The store keeps whatever signed integer dtype the producer appends (the
    minhash family appends ``int32`` — its values fit in 31 bits, which
    halves the memory and comparison traffic the paper's Section 4.3 worries
    about); generic callers appending plain Python/``int64`` data keep
    ``int64``.  Unsigned input is normalised to ``int64`` on append, so
    mixed-dtype consolidation only ever promotes between signed integer
    types and equality semantics never change.
    """

    def __init__(self, n_vectors: int):
        self._n_vectors = int(n_vectors)
        self._matrix = _ChunkedMatrix(self._n_vectors)
        # Thread-local: the reusable gather buffers are written by every
        # batched read, so concurrent reader threads each get their own set.
        self._scratch = threading.local()

    @classmethod
    def from_values(cls, values: np.ndarray) -> "IntSignatures":
        """Rebuild a store from its raw signature matrix (snapshot restore path)."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"expected a 2-D value matrix, got shape {values.shape}")
        store = cls(values.shape[0])
        store.append_values(values)
        return store

    def append_rows_from(self, other: SignatureStore) -> None:
        """Append every row of ``other`` below the existing rows (see base)."""
        if not isinstance(other, IntSignatures):
            raise TypeError(f"cannot append rows of {type(other).__name__} to IntSignatures")
        if other.n_hashes != self.n_hashes:
            raise ValueError(
                f"row source holds {other.n_hashes} hashes, this store {self.n_hashes}"
            )
        self._matrix.extend_rows(other.values)
        self._n_vectors += other.n_vectors

    @property
    def n_vectors(self) -> int:
        """Number of signature rows stored."""
        return self._n_vectors

    @property
    def n_hashes(self) -> int:
        """Number of integer hashes materialised per row."""
        return self._matrix.n_columns

    def _scratch_for(
        self, n_pairs: int, width: int, dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reusable gather/compare buffers for :meth:`count_matches_many`.

        The round-synchronous verifiers call with a shrinking pair count and a
        fixed width every round; reusing one allocation avoids repeated large
        allocations (and their page faults) in the hot loop.  Buffers are
        keyed by ``(width, dtype)`` because the super-block reader alternates
        between single-round and multi-round widths, and live in thread-local
        storage so concurrent reader threads never share (and clobber) them.
        """
        buffers = getattr(self._scratch, "buffers", None)
        if buffers is None:
            buffers = {}
            self._scratch.buffers = buffers
        key = (width, np.dtype(dtype))
        cached = buffers.get(key)
        if cached is not None and cached[0].shape[0] >= n_pairs:
            left_buf, right_buf, equal_buf = cached
            return left_buf[:n_pairs], right_buf[:n_pairs], equal_buf[:n_pairs]
        left_buf = np.empty((n_pairs, width), dtype=dtype)
        right_buf = np.empty((n_pairs, width), dtype=dtype)
        equal_buf = np.empty((n_pairs, width), dtype=np.bool_)
        buffers[key] = (left_buf, right_buf, equal_buf)
        return left_buf, right_buf, equal_buf

    @property
    def values(self) -> np.ndarray:
        """The raw signature matrix, shape ``(n_vectors, n_hashes)``."""
        return self._matrix.consolidated()

    def append_values(self, values: np.ndarray) -> None:
        """Append a block of new integer hashes of shape ``(n_vectors, n_new)``."""
        values = np.asarray(values)
        if not np.issubdtype(values.dtype, np.signedinteger):
            # Normalise floats and unsigned ints to int64: mixing uint64 with
            # signed chunks would promote to float64 on consolidation and
            # corrupt equality comparisons for values above 2^53.
            if values.size and np.issubdtype(values.dtype, np.unsignedinteger):
                if values.max() > np.iinfo(np.int64).max:
                    raise ValueError("hash values above int64 range are not supported")
            values = values.astype(np.int64)
        if values.ndim != 2 or values.shape[0] != self._n_vectors:
            raise ValueError(
                f"expected values of shape ({self._n_vectors}, n_new), got {values.shape}"
            )
        if values.shape[1] == 0:
            return
        self._matrix.append(np.ascontiguousarray(values))

    def count_matches(self, i: int, j: int, start: int, end: int) -> int:
        """Agreeing hashes between rows ``i`` and ``j`` in window ``[start, end)``."""
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        if end <= start:
            return 0
        columns = self._matrix.columns(start, end)
        return int(np.sum(columns[i] == columns[j]))

    def count_matches_many(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """Vectorised :meth:`count_matches` over parallel arrays of row indices."""
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        if end <= start:
            return np.zeros(len(left), dtype=np.int64)
        columns = self._matrix.columns_contiguous(start, end)
        left = np.asarray(left)
        right = np.asarray(right)
        left_rows, right_rows, equal = self._scratch_for(
            len(left), end - start, columns.dtype
        )
        np.take(columns, left, axis=0, out=left_rows)
        np.take(columns, right, axis=0, out=right_rows)
        np.equal(left_rows, right_rows, out=equal)
        return equal.sum(axis=1, dtype=np.int64)

    def count_matches_cross(
        self, rows: np.ndarray, other: SignatureStore, other_rows: np.ndarray,
        start: int, end: int,
    ) -> np.ndarray:
        """Cross-store agreement counts (see base); both stores must share hash functions."""
        if not isinstance(other, IntSignatures):
            raise TypeError(f"cannot cross-count against {type(other).__name__}")
        if end > self.n_hashes or end > other.n_hashes:
            raise IndexError(
                f"hash index {end} out of range (have {self.n_hashes} / {other.n_hashes})"
            )
        if end <= start:
            return np.zeros(len(rows), dtype=np.int64)
        mine = self._matrix.columns_contiguous(start, end)
        theirs = other._matrix.columns_contiguous(start, end)
        rows = np.asarray(rows)
        other_rows = np.asarray(other_rows)
        n_pairs = len(rows)
        # Cache-aware pair tiling (see _TILE_BYTES): per-pair equality counts
        # are independent, so tiling only the pair axis is value-preserving.
        tile = _tile_rows((end - start) * mine.dtype.itemsize)
        if n_pairs <= tile:
            equal = mine[rows] == theirs[other_rows]
            return equal.sum(axis=1, dtype=np.int64)
        counts = np.empty(n_pairs, dtype=np.int64)
        for lo in range(0, n_pairs, tile):
            hi = min(lo + tile, n_pairs)
            equal = mine[rows[lo:hi]] == theirs[other_rows[lo:hi]]
            counts[lo:hi] = equal.sum(axis=1, dtype=np.int64)
        return counts

    def count_matches_rounds(
        self, left: np.ndarray, right: np.ndarray, start: int, end: int, round_width: int
    ) -> np.ndarray:
        """Super-block gather with cache-aware pair tiling.

        Long-surviving pairs are gathered once for several rounds' worth of
        signature columns (one wide ``memcpy`` per row) and the per-round
        counts are reduced from that single gather — the gather volume per
        round drops by the super-block factor.  Pairs are processed in tiles
        sized so one tile's gather/compare scratch stays L2-resident (see
        :data:`_TILE_BYTES`): small batches run in a single tile (the former
        behaviour), while large active sets no longer round-trip a
        ``n_pairs x span`` scratch through DRAM between the gather, the
        compare and the reduction passes.  Counts are bit-identical for any
        tile size — every per-pair value comes from the same expressions.
        """
        span = end - start
        if span < 0 or round_width <= 0 or span % round_width:
            raise ValueError(
                f"[{start}, {end}) is not a whole number of rounds of width {round_width}"
            )
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        n_pairs = len(left)
        n_rounds = span // round_width
        if span == 0:
            return np.zeros((n_pairs, 0), dtype=np.int64)
        columns = self._matrix.columns_contiguous(start, end)
        left = np.asarray(left)
        right = np.asarray(right)
        tile = _tile_rows(span * columns.dtype.itemsize)
        counts = np.empty((n_pairs, n_rounds), dtype=np.int64)
        for lo in range(0, n_pairs, tile):
            hi = min(lo + tile, n_pairs)
            left_rows, right_rows, equal = self._scratch_for(
                hi - lo, span, columns.dtype
            )
            np.take(columns, left[lo:hi], axis=0, out=left_rows)
            np.take(columns, right[lo:hi], axis=0, out=right_rows)
            np.equal(left_rows, right_rows, out=equal)
            counts[lo:hi] = equal.reshape(hi - lo, n_rounds, round_width).sum(
                axis=2, dtype=np.int64
            )
        return counts

    def column_block(self, start: int, end: int) -> np.ndarray:
        """Signature columns ``[start, end)`` as a C-contiguous matrix.

        Public accessor used by the parallel executor to export signature
        columns into shared memory without consolidating the whole store.
        """
        return self._matrix.columns_contiguous(start, end)

    def chunk_map(self) -> list[tuple[int, int, np.ndarray]]:
        """Lock-free snapshot of the column-chunk layout as hash ranges.

        Returns ``(hash_start, hash_end, columns)`` triples tiling
        ``[0, n_hashes)`` in order; see
        :meth:`BitSignatures.chunk_map` for why the executor workers need
        this instead of the locking read path.
        """
        return [
            (offset, offset + chunk.shape[1], chunk)
            for offset, chunk in zip(self._matrix._offsets, self._matrix._chunks)
        ]

    def band_key(self, i: int, band: int, band_width: int) -> bytes:
        """Hashable bytes of band ``band`` of row ``i`` (``band_width`` hashes)."""
        start = band * band_width
        end = start + band_width
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        return np.ascontiguousarray(self._matrix.columns(start, end)[i]).tobytes()

    def band_keys_many(self, rows: np.ndarray, band: int, band_width: int) -> np.ndarray:
        """Band contents for many rows at once, as an integer matrix."""
        start = band * band_width
        end = start + band_width
        if end > self.n_hashes:
            raise IndexError(f"hash index {end} out of range (have {self.n_hashes})")
        columns = self._matrix.columns(start, end)
        return np.ascontiguousarray(columns[np.asarray(rows, dtype=np.int64)])
