"""Ragged-array primitives shared by the candidate generators.

The array-based candidate generators all manipulate *ragged* structures —
inverted-index postings of different lengths, hash buckets of different
sizes — without per-element Python loops.  The two primitives here cover
the patterns they need:

* :func:`ragged_arange` — concatenated ``arange`` segments, the core of every
  "gather a variable-length prefix per key" step;
* :func:`pairs_within_groups` — all intra-group index pairs of a grouped
  array, the core of LSH bucket pair enumeration.

Both are built from ``repeat``/``cumsum`` only, so their cost is linear in
the output size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ragged_arange", "pairs_within_groups", "budgeted_batches"]


def budgeted_batches(
    lengths: np.ndarray, budget: int, group_ids: np.ndarray | None = None
):
    """Yield ``(start, end)`` index ranges whose summed lengths stay near ``budget``.

    Used to bound how many ragged-gather results are materialised at once.
    Each batch holds at least one entry, so a single oversized entry still
    forms its own batch.  When ``group_ids`` is given (same length as
    ``lengths``), batch boundaries are extended so a group is never split
    across batches — required when downstream accounting must see a group's
    entries together.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    cumulative = np.cumsum(lengths)
    n_entries = len(lengths)
    start = 0
    while start < n_entries:
        consumed = int(cumulative[start - 1]) if start else 0
        end = int(np.searchsorted(cumulative, consumed + budget, side="right"))
        end = max(end, start + 1)
        if group_ids is not None:
            last_group = group_ids[end - 1]
            while end < n_entries and group_ids[end] == last_group:
                end += 1
        yield start, end
        start = end


def ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each ``(s, l)`` pair.

    >>> ragged_arange(np.array([10, 40]), np.array([3, 2]))
    array([10, 11, 12, 40, 41])
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    positions = np.arange(total, dtype=np.int64)
    return np.repeat(starts, lengths) + (positions - np.repeat(offsets, lengths))


def pairs_within_groups(
    values: np.ndarray, group_offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All unordered intra-group pairs of a group-sorted array.

    ``values`` is partitioned into consecutive groups by ``group_offsets``
    (``len(group_offsets) == n_groups + 1``).  For every group the function
    emits each pair ``(values[p], values[q])`` with ``p < q`` inside the
    group, ordered so that the *later* element pairs with every *earlier*
    element — the same enumeration order as the classic nested-loop bucket
    scan, with the first returned array holding the earlier elements.

    Returns ``(earlier, later)`` parallel arrays of length
    ``sum of s_g * (s_g - 1) / 2``.
    """
    values = np.asarray(values)
    group_offsets = np.asarray(group_offsets, dtype=np.int64)
    sizes = np.diff(group_offsets)
    if not len(sizes) or int(sizes.max(initial=0)) < 2:
        empty = np.zeros(0, dtype=values.dtype)
        return empty, empty
    # local index of each element within its group
    total = int(sizes.sum())
    local = np.arange(total, dtype=np.int64) - np.repeat(group_offsets[:-1], sizes)
    # element at local index l pairs with the l earlier elements of its group
    later = np.repeat(values, local)
    group_start_per_element = np.repeat(group_offsets[:-1], sizes)
    earlier_positions = ragged_arange(group_start_per_element, local)
    earlier = values[earlier_positions]
    return earlier, later
