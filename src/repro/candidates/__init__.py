"""Candidate generation algorithms (phase 1 of all-pairs similarity search).

The paper combines BayesLSH with two state-of-the-art candidate generators
and compares against a third:

* :class:`~repro.candidates.allpairs.AllPairsGenerator` — the exact
  inverted-index algorithm of Bayardo, Ma and Srikant (WWW 2007), strongest
  on datasets with short vectors and high length variance;
* :class:`~repro.candidates.lsh_index.LSHGenerator` — classic LSH banding:
  ``l`` signatures of ``k`` hashes each, pairs sharing any signature become
  candidates, with ``l`` chosen for a target false-negative rate;
* :class:`~repro.candidates.ppjoin.PPJoinGenerator` — prefix / length /
  positional filtering for binary vectors (Xiao et al., WWW 2008), used as
  the PPJoin+ baseline;
* :class:`~repro.candidates.brute_force.BruteForceGenerator` — every pair
  (optionally restricted to pairs sharing a feature); the ground-truth
  reference.

Every generator returns a :class:`~repro.candidates.base.CandidateSet`, a
deduplicated collection of ``(i, j)`` index pairs with ``i < j``.
"""

from repro.candidates.base import CandidateGenerator, CandidateSet
from repro.candidates.brute_force import BruteForceGenerator
from repro.candidates.lsh_index import LSHGenerator, signatures_for_false_negative_rate
from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.ppjoin import PPJoinGenerator

__all__ = [
    "AllPairsGenerator",
    "BruteForceGenerator",
    "CandidateGenerator",
    "CandidateSet",
    "LSHGenerator",
    "PPJoinGenerator",
    "signatures_for_false_negative_rate",
]
