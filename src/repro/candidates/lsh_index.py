"""LSH banding index for candidate generation (Section 2 of the paper).

Each vector receives ``l`` signatures, each the concatenation of ``k`` hashes
from the measure's LSH family; every pair of vectors sharing at least one
signature becomes a candidate.  For a signature width ``k``, a similarity
threshold ``t`` and a target false-negative rate ``fn`` the number of
signatures is

    l = ceil( log(fn) / log(1 - p_t ** k) )

where ``p_t`` is the *collision probability* at the threshold — ``t`` itself
for Jaccard, ``1 - arccos(t)/pi`` for cosine (the paper's formula is stated
for the Jaccard case where the two coincide).

The hash family object is exposed so the verification phase can reuse the
very same hashes — the amortisation the paper highlights as advantage 3 of
BayesLSH.

Bucketing is array-based: each band's contents are fetched for all rows at
once (:meth:`SignatureStore.band_keys_many`), rows are grouped into buckets
with one ``np.unique`` sort per band, and intra-bucket pairs are enumerated
with the ragged-array primitives in :mod:`repro.candidates.arrayops` — no
per-row dict or per-pair Python loop.  Pairs, collision counts and the
emitted candidate set are identical to the dict-of-buckets reference
(:func:`repro.reference.lsh_candidates_reference`).
"""

from __future__ import annotations

import math

import numpy as np

from typing import Iterator, Protocol

from repro.candidates.arrayops import pairs_within_groups
from repro.candidates.base import (
    UNBOUNDED_BLOCK,
    BlockStream,
    CandidateGenerator,
    CandidateSet,
)
from repro.hashing.base import HashFamily, get_hash_family
from repro.hashing.signatures import SignatureStore
from repro.similarity.vectors import VectorCollection

__all__ = ["BandKeySource", "BandPostings", "LSHGenerator", "signatures_for_false_negative_rate"]


class BandKeySource(Protocol):
    """Anything band contents can be gathered from, addressed by row index.

    The postings deliberately depend only on this one operation, so they
    work over a plain :class:`~repro.hashing.signatures.SignatureStore` and
    equally over the serving layer's
    :class:`~repro.serving.segments.SegmentedCollection`, which routes the
    gather to per-segment stores (bit-identically, since band keys are
    row-local).
    """

    def band_keys_many(self, rows: np.ndarray, band: int, band_width: int) -> np.ndarray:
        """Band contents for many rows, one row of band content per input row."""
        ...


def group_by_band_content(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group rows whose band contents compare equal, with one sort.

    ``keys`` is a ``band_keys_many`` result (one row of band content per
    input row).  Returns ``(order, offsets)``: ``order`` permutes row
    positions so equal-content rows are consecutive (stable, so original
    order is preserved inside each group) and group ``g`` spans
    ``order[offsets[g]:offsets[g + 1]]``.  Shared by the all-pairs bucketing
    and the serving-layer postings so both group with literally the same
    procedure.
    """
    _, inverse = np.unique(keys, axis=0, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return order, offsets

#: default signature widths (number of hashes concatenated per signature)
_DEFAULT_WIDTH = {"simhash": 8, "minhash": 4}
#: safety cap on the number of signatures
_MAX_SIGNATURES = 2000


def signatures_for_false_negative_rate(
    collision_probability: float, signature_width: int, false_negative_rate: float
) -> int:
    """Number of length-``k`` signatures needed for an expected false-negative rate.

    Implements ``l = ceil(log(fn) / log(1 - p ** k))`` with ``p`` the collision
    probability at the similarity threshold.
    """
    if not 0.0 < collision_probability < 1.0:
        raise ValueError(
            f"collision probability must lie in (0, 1), got {collision_probability}"
        )
    if signature_width <= 0:
        raise ValueError(f"signature_width must be positive, got {signature_width}")
    if not 0.0 < false_negative_rate < 1.0:
        raise ValueError(
            f"false_negative_rate must lie in (0, 1), got {false_negative_rate}"
        )
    miss_probability = 1.0 - collision_probability**signature_width
    if miss_probability <= 0.0:
        return 1
    if miss_probability >= 1.0:
        # Collisions at the threshold are so unlikely that no realistic number
        # of signatures reaches the target recall; return the cap.
        return _MAX_SIGNATURES
    needed = math.ceil(math.log(false_negative_rate) / math.log(miss_probability))
    return max(1, min(needed, _MAX_SIGNATURES))


class BandPostings:
    """Banded LSH postings supporting incremental inserts and batched probes.

    The query-serving counterpart of :class:`LSHGenerator`'s all-pairs
    bucketing: each band maps band content (as bytes) to the list of member
    rows holding that content.  Members are added in batches — initial build
    and every serving-layer ingest use the same vectorised path (one
    ``band_keys_many`` + ``np.unique`` grouping per band) — and probing looks
    up a whole batch of query signatures at once.

    Deletions are *not* represented here: the owner tombstones rows and
    filters probe results, then rebuilds the postings from scratch once the
    tombstone fraction exceeds its staleness budget.  Rebuilding from the
    concatenated member sequence reproduces bucket lists in the exact order
    incremental adds created them (within one :meth:`add` call rows land in
    argument order, and consecutive calls append), which is what lets a
    snapshot serialise the postings as just that member sequence.

    Concurrency contract: *one* mutator at a time (the owning
    :class:`~repro.search.query.QueryIndex` serialises :meth:`add` and the
    staleness rebuild under its update lock — the rebuild builds a fresh
    instance and swaps the reference atomically), while :meth:`probe_many`
    may run concurrently from reader threads: probes only ``get`` bucket
    lists and snapshot them into arrays, and :meth:`add` grows buckets with
    single atomic ``extend`` calls, so a concurrent probe observes each
    bucket either before or after a batch — never a torn list.
    """

    def __init__(self, n_bands: int, band_width: int):
        if n_bands <= 0:
            raise ValueError(f"n_bands must be positive, got {n_bands}")
        if band_width <= 0:
            raise ValueError(f"band_width must be positive, got {band_width}")
        self._n_bands = int(n_bands)
        self._band_width = int(band_width)
        self._buckets: list[dict[bytes, list[int]]] = [{} for _ in range(self._n_bands)]
        self._members: list[int] = []

    @classmethod
    def build(
        cls, store: BandKeySource, rows: np.ndarray, n_bands: int, band_width: int
    ) -> "BandPostings":
        """Postings over ``rows`` of ``store`` (order defines bucket order)."""
        postings = cls(n_bands, band_width)
        postings.add(store, rows)
        return postings

    @property
    def n_bands(self) -> int:
        """Number of independent LSH bands."""
        return self._n_bands

    @property
    def band_width(self) -> int:
        """Hashes concatenated per band."""
        return self._band_width

    @property
    def n_members(self) -> int:
        """Total member rows inserted (tombstoned members included)."""
        return len(self._members)

    @property
    def members(self) -> np.ndarray:
        """Member rows in insertion order (the serialisable postings state)."""
        return np.asarray(self._members, dtype=np.int64)

    def add(self, store: BandKeySource, rows) -> None:
        """Insert ``rows`` of ``store`` into every band's buckets."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return
        for band in range(self._n_bands):
            keys = store.band_keys_many(rows, band, self._band_width)
            order, offsets = group_by_band_content(keys)
            grouped = rows[order]
            bucket = self._buckets[band]
            for group in range(len(offsets) - 1):
                lo, hi = offsets[group], offsets[group + 1]
                key = keys[order[lo]].tobytes()
                bucket.setdefault(key, []).extend(grouped[lo:hi].tolist())
        self._members.extend(rows.tolist())

    def probe_many(
        self, query_store: SignatureStore, query_rows, n_vectors: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Member rows sharing at least one band with each query row.

        ``query_store`` holds the queries' signatures (drawn from the same
        hash functions as the member store).  Returns parallel
        ``(query position, member row)`` arrays — the union of all band hits,
        deduplicated and sorted lexicographically by ``(position, row)`` via
        the same integer-key encoding the streamed executor uses.

        ``n_vectors`` is only a *lower bound* on the encoding span: the span
        actually used is raised to cover the largest member row observed, so
        a concurrent ingest that appends members beyond the caller's
        snapshot mid-probe cannot corrupt the decode (any span above every
        member row yields the identical ``(position, row)`` sort order, so
        the result is span-independent — and hence identical to a
        race-free probe over the rows that were visible).
        """
        query_rows = np.asarray(query_rows, dtype=np.int64)
        if len(query_rows) == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        position_parts: list[np.ndarray] = []
        member_parts: list[np.ndarray] = []
        for band in range(self._n_bands):
            keys = query_store.band_keys_many(query_rows, band, self._band_width)
            bucket = self._buckets[band]
            for position in range(len(query_rows)):
                members = bucket.get(keys[position].tobytes())
                if members:
                    hits = np.asarray(members, dtype=np.int64)
                    member_parts.append(hits)
                    position_parts.append(np.full(len(hits), position, dtype=np.int64))
        if not member_parts:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        span = max(int(n_vectors), max(int(part.max()) for part in member_parts) + 1)
        encoded = np.unique(
            np.concatenate(position_parts) * span + np.concatenate(member_parts)
        )
        return encoded // span, encoded % span


class LSHGenerator(CandidateGenerator):
    """Banded LSH candidate generation.

    Parameters
    ----------
    measure:
        ``"cosine"``, ``"jaccard"`` or ``"binary_cosine"``.
    threshold:
        Similarity threshold ``t``.
    false_negative_rate:
        Target probability of missing a pair exactly at the threshold
        (0.03 in the paper's experiments).
    signature_width:
        Hashes per signature (``k`` in Section 2).  Defaults to 8 bits for
        the cosine family and 4 minhashes for Jaccard.
    seed:
        Seed for the hash family (ignored if ``family`` is supplied).
    family:
        Optionally, an existing :class:`HashFamily` to draw hashes from; this
        is how a BayesLSH verifier and the generator share signatures.
    """

    name = "lsh"

    def __init__(
        self,
        measure="cosine",
        threshold: float = 0.5,
        false_negative_rate: float = 0.03,
        signature_width: int | None = None,
        seed: int = 0,
        family: HashFamily | None = None,
    ):
        super().__init__(measure, threshold)
        if not 0.0 < false_negative_rate < 1.0:
            raise ValueError(
                f"false_negative_rate must lie in (0, 1), got {false_negative_rate}"
            )
        self._false_negative_rate = float(false_negative_rate)
        family_name = self.measure.lsh_family
        if signature_width is None:
            signature_width = _DEFAULT_WIDTH[family_name]
        if signature_width <= 0:
            raise ValueError(f"signature_width must be positive, got {signature_width}")
        self._signature_width = int(signature_width)
        self._seed = int(seed)
        self._family = family
        self._last_family: HashFamily | None = family

    @property
    def signature_width(self) -> int:
        """Hashes concatenated per signature (``k`` in Section 2)."""
        return self._signature_width

    @property
    def n_signatures(self) -> int:
        """Number of signatures ``l`` implied by the threshold and target recall."""
        collision = self.measure_collision_probability()
        return signatures_for_false_negative_rate(
            collision, self._signature_width, self._false_negative_rate
        )

    @property
    def family(self) -> HashFamily | None:
        """The hash family used in the most recent :meth:`generate` call."""
        return self._last_family

    def measure_collision_probability(self) -> float:
        """Collision probability of a single hash at the similarity threshold."""
        if self.measure.lsh_family == "minhash":
            return self._threshold
        from repro.hashing.simhash import cosine_to_collision

        return float(cosine_to_collision(self._threshold))

    def generate_blocks(self, collection: VectorCollection, block_size: int) -> BlockStream:
        """Stream raw collision pairs band by band.

        Each LSH band is bucketed independently, so its collision pairs form a
        natural block (split further to respect ``block_size``); no cross-band
        pair array is ever materialised.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        prepared = self.measure.prepare(collection)
        family = self._family
        if family is None or family.collection is not prepared:
            family = (
                self._family
                if self._family is not None
                else get_hash_family(self.measure.lsh_family, prepared, seed=self._seed)
            )
        self._last_family = family

        n_signatures = self.n_signatures
        width = self._signature_width
        metadata = {
            "generator": self.name,
            "n_signatures": n_signatures,
            "signature_width": width,
            "n_raw_collisions": 0,
            "n_vectors": prepared.n_vectors,
        }

        def blocks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            store = family.signatures(n_signatures * width)
            # Skip empty vectors: they share no features with anything.
            non_empty = np.flatnonzero(prepared.row_nnz > 0)
            for band in range(n_signatures if len(non_empty) else 0):
                # Group rows by band content with one sort per band instead
                # of a dict of per-row byte keys: rows whose band columns
                # compare equal land in the same np.unique group.
                keys = store.band_keys_many(non_empty, band, width)
                order, offsets = group_by_band_content(keys)
                bucket_rows = non_empty[order]
                earlier, later = pairs_within_groups(bucket_rows, offsets)
                metadata["n_raw_collisions"] += len(earlier)
                for start in range(0, len(earlier), block_size):
                    end = start + block_size
                    yield earlier[start:end], later[start:end]

        return BlockStream(blocks(), metadata)

    def generate(self, collection: VectorCollection) -> CandidateSet:
        """All banded-LSH collision pairs at once.

        Deterministic in ``(collection, seed)``: hash functions are pure
        functions of ``(seed, hash index)``, so repeated calls — or a
        streamed call with any block size — produce identical candidates.
        """
        return CandidateSet.from_stream(
            self.generate_blocks(collection, block_size=UNBOUNDED_BLOCK)
        )
