"""PPJoin / PPJoin+ style candidate generation (Xiao et al., WWW 2008).

PPJoin+ is an exact set-similarity join for **binary** vectors; the paper uses
it as a baseline for the binary Jaccard and binary cosine experiments.  The
algorithm's filters are reproduced here:

* **prefix filter** — records are sorted by a global token ordering (rarest
  token first); two records can only reach the similarity threshold if their
  *prefixes* (first ``|x| - ceil(alpha) + 1`` tokens, where ``alpha`` is the
  minimum required overlap) share a token;
* **length filter** — for Jaccard, ``t * |x| <= |y| <= |x| / t``; for binary
  cosine, ``t^2 * |x| <= |y| <= |x| / t^2``;
* **positional filter** — when a prefix token matches at positions ``p`` in
  ``x`` and ``q`` in ``y``, the overlap is at most
  ``1 + min(|x| - p - 1, |y| - q - 1)``, which must still reach ``alpha``.

The suffix filter of PPJoin+ (binary probing of the suffixes) is implemented
in a simplified single-level form and can be switched off to obtain plain
PPJoin behaviour.

As with the other generators, only the candidate pairs are produced here;
pair them with :class:`~repro.verification.exact.ExactVerifier` to obtain the
exact PPJoin+ baseline the paper times.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.candidates.base import CandidateGenerator, CandidateSet
from repro.similarity.vectors import VectorCollection

__all__ = ["PPJoinGenerator"]


def _minimum_overlap(measure_name: str, threshold: float, size_x: int, size_y: int) -> float:
    """Minimum overlap ``alpha`` two sets need to reach the similarity threshold."""
    if measure_name == "jaccard":
        return threshold / (1.0 + threshold) * (size_x + size_y)
    # binary cosine
    return threshold * math.sqrt(size_x * size_y)


class PPJoinGenerator(CandidateGenerator):
    """Prefix-filtering candidate generation for binary vectors.

    Parameters
    ----------
    measure:
        ``"jaccard"`` or ``"binary_cosine"`` — PPJoin+ is defined for sets.
    threshold:
        Similarity threshold ``t``.
    use_positional_filter:
        Apply the positional filter (PPJoin).  Default True.
    use_suffix_filter:
        Apply the simplified suffix filter (PPJoin+).  Default True.
    """

    name = "ppjoin"

    def __init__(
        self,
        measure="jaccard",
        threshold: float = 0.5,
        use_positional_filter: bool = True,
        use_suffix_filter: bool = True,
    ):
        super().__init__(measure, threshold)
        if self.measure.name not in ("jaccard", "binary_cosine"):
            raise ValueError(
                f"PPJoin supports jaccard and binary_cosine only; got {self.measure.name!r}"
            )
        self._use_positional_filter = bool(use_positional_filter)
        self._use_suffix_filter = bool(use_suffix_filter)

    # ------------------------------------------------------------------ #
    def _length_bounds(self, size_x: int) -> tuple[float, float]:
        t = self._threshold
        if self.measure.name == "jaccard":
            return t * size_x, size_x / t
        return t * t * size_x, size_x / (t * t)

    def _prefix_length(self, size_x: int) -> int:
        """Length of the probing prefix for a record of ``size_x`` tokens."""
        t = self._threshold
        if self.measure.name == "jaccard":
            min_overlap_with_self = math.ceil(t * size_x)
        else:
            min_overlap_with_self = math.ceil(t * t * size_x)
        return max(1, size_x - min_overlap_with_self + 1)

    @staticmethod
    def _suffix_overlap_bound(
        tokens_x: np.ndarray, tokens_y: np.ndarray, position_x: int, position_y: int
    ) -> int:
        """Crude upper bound on the overlap of the suffixes after the matching token."""
        suffix_x = tokens_x[position_x + 1 :]
        suffix_y = tokens_y[position_y + 1 :]
        if len(suffix_x) == 0 or len(suffix_y) == 0:
            return 0
        # The suffixes are sorted by the global order; disjoint ranges cannot overlap.
        if suffix_x[-1] < suffix_y[0] or suffix_y[-1] < suffix_x[0]:
            return 0
        return min(len(suffix_x), len(suffix_y))

    def generate(self, collection: VectorCollection) -> CandidateSet:
        prepared = self.measure.prepare(collection)
        n_vectors = prepared.n_vectors
        if n_vectors < 2:
            return CandidateSet.from_pairs([], generator=self.name)

        # Global token order: increasing document frequency (rarest first).
        binary = prepared.binarized().matrix
        token_counts = np.asarray(binary.sum(axis=0)).ravel()
        token_rank = np.argsort(np.argsort(token_counts, kind="stable"), kind="stable")

        # Records sorted by the global token order; record processing order by size.
        records: list[np.ndarray] = []
        for row in range(n_vectors):
            features = prepared.row_features(row)
            order = np.argsort(token_rank[features], kind="stable")
            records.append(token_rank[features][order].astype(np.int64))
        sizes = np.array([len(tokens) for tokens in records], dtype=np.int64)
        processing_order = np.argsort(sizes, kind="stable")

        index: dict[int, list[tuple[int, int]]] = defaultdict(list)  # token -> [(row, position)]
        pairs: list[tuple[int, int]] = []
        n_prefix_collisions = 0
        n_filtered_positional = 0
        n_filtered_suffix = 0

        for x in processing_order:
            x = int(x)
            tokens_x = records[x]
            size_x = len(tokens_x)
            if size_x == 0:
                continue
            lower, _upper = self._length_bounds(size_x)
            prefix_x = self._prefix_length(size_x)

            scores: dict[int, bool] = {}
            for position_x in range(prefix_x):
                token = int(tokens_x[position_x])
                for y, position_y in index[token]:
                    if y in scores:
                        continue
                    size_y = len(records[y])
                    # Length filter: y was indexed earlier so size_y <= size_x;
                    # it must still be large enough.
                    if size_y < lower:
                        continue
                    n_prefix_collisions += 1
                    alpha = _minimum_overlap(self.measure.name, self._threshold, size_x, size_y)
                    if self._use_positional_filter:
                        overlap_bound = 1 + min(
                            size_x - position_x - 1, size_y - position_y - 1
                        )
                        if overlap_bound < alpha:
                            n_filtered_positional += 1
                            continue
                    if self._use_suffix_filter:
                        suffix_bound = 1 + self._suffix_overlap_bound(
                            tokens_x, records[y], position_x, position_y
                        )
                        if suffix_bound < alpha:
                            n_filtered_suffix += 1
                            continue
                    scores[y] = True
            for y in scores:
                pairs.append((x, y) if x < y else (y, x))

            # Index the prefix of x for later (larger) records.
            for position_x in range(prefix_x):
                index[int(tokens_x[position_x])].append((x, position_x))

        return CandidateSet.from_pairs(
            pairs,
            generator=self.name,
            n_prefix_collisions=n_prefix_collisions,
            n_filtered_positional=n_filtered_positional,
            n_filtered_suffix=n_filtered_suffix,
        )
