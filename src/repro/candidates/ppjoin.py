"""PPJoin / PPJoin+ style candidate generation (Xiao et al., WWW 2008).

PPJoin+ is an exact set-similarity join for **binary** vectors; the paper uses
it as a baseline for the binary Jaccard and binary cosine experiments.  The
algorithm's filters are reproduced here:

* **prefix filter** — records are sorted by a global token ordering (rarest
  token first); two records can only reach the similarity threshold if their
  *prefixes* (first ``|x| - ceil(alpha) + 1`` tokens, where ``alpha`` is the
  minimum required overlap) share a token;
* **length filter** — for Jaccard, ``t * |x| <= |y| <= |x| / t``; for binary
  cosine, ``t^2 * |x| <= |y| <= |x| / t^2``;
* **positional filter** — when a prefix token matches at positions ``p`` in
  ``x`` and ``q`` in ``y``, the overlap is at most
  ``1 + min(|x| - p - 1, |y| - q - 1)``, which must still reach ``alpha``.

The suffix filter of PPJoin+ (binary probing of the suffixes) is implemented
in a simplified single-level form and can be switched off to obtain plain
PPJoin behaviour.

As with the other generators, only the candidate pairs are produced here;
pair them with :class:`~repro.verification.exact.ExactVerifier` to obtain the
exact PPJoin+ baseline the paper times.

Array-based implementation
--------------------------
A record's probing prefix depends only on the record itself, so all prefix
entries are computed up front and laid out as a flat posting array sorted by
``(token, processing position)``; the sequential "only records processed
before ``x``" semantics is one ``searchsorted`` per probe.  For each record
the matching posting entries ("hits") are gathered into parallel arrays and
the length/positional/suffix filters are evaluated vectorised.  The
sequential algorithm stops examining a candidate once it is accepted, so the
filter counters are reproduced by finding each candidate's *first* passing
hit and discounting hits after it — pair set and counters are identical to
the scalar reference (:func:`repro.reference.ppjoin_candidates_reference`).
"""

from __future__ import annotations

import math

import numpy as np

from typing import Iterator

from repro.candidates.arrayops import budgeted_batches, ragged_arange
from repro.candidates.base import (
    UNBOUNDED_BLOCK,
    BlockStream,
    CandidateGenerator,
    CandidateSet,
)
from repro.similarity.vectors import VectorCollection

__all__ = ["PPJoinGenerator"]

#: cap on gathered posting hits materialised per probe batch
_HIT_BATCH = 4_000_000


def _minimum_overlap(measure_name: str, threshold: float, size_x: int, size_y: int) -> float:
    """Minimum overlap ``alpha`` two sets need to reach the similarity threshold."""
    if measure_name == "jaccard":
        return threshold / (1.0 + threshold) * (size_x + size_y)
    # binary cosine
    return threshold * math.sqrt(size_x * size_y)


class PPJoinGenerator(CandidateGenerator):
    """Prefix-filtering candidate generation for binary vectors.

    Parameters
    ----------
    measure:
        ``"jaccard"`` or ``"binary_cosine"`` — PPJoin+ is defined for sets.
    threshold:
        Similarity threshold ``t``.
    use_positional_filter:
        Apply the positional filter (PPJoin).  Default True.
    use_suffix_filter:
        Apply the simplified suffix filter (PPJoin+).  Default True.
    """

    name = "ppjoin"

    def __init__(
        self,
        measure="jaccard",
        threshold: float = 0.5,
        use_positional_filter: bool = True,
        use_suffix_filter: bool = True,
    ):
        super().__init__(measure, threshold)
        if self.measure.name not in ("jaccard", "binary_cosine"):
            raise ValueError(
                f"PPJoin supports jaccard and binary_cosine only; got {self.measure.name!r}"
            )
        self._use_positional_filter = bool(use_positional_filter)
        self._use_suffix_filter = bool(use_suffix_filter)

    def generate_blocks(self, collection: VectorCollection, block_size: int) -> BlockStream:
        """Stream candidate pairs probe-batch by probe-batch.

        Probe batches respect record boundaries (the accept-skip accounting
        needs a record's hits together) and their gathered-hit budget scales
        with ``block_size``; accepted pairs are yielded in ``block_size``
        chunks.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        hit_budget = int(min(_HIT_BATCH, max(block_size, 4096)))
        return self._stream(collection, hit_budget, block_size)

    def generate(self, collection: VectorCollection) -> CandidateSet:
        """All candidate pairs at once (the streamed path with one unbounded block).

        Deterministic in the collection alone — no randomness is involved,
        and the accept-skip accounting makes the counters exact.
        """
        return CandidateSet.from_stream(
            self._stream(collection, _HIT_BATCH, UNBOUNDED_BLOCK)
        )

    def _stream(
        self, collection: VectorCollection, hit_budget: int, block_size: int
    ) -> BlockStream:
        prepared = self.measure.prepare(collection)
        n_vectors = prepared.n_vectors
        if n_vectors < 2:
            return BlockStream(iter(()), {"generator": self.name})

        # Global token order: increasing document frequency (rarest first).
        binary = prepared.binarized().matrix
        token_counts = np.asarray(binary.sum(axis=0)).ravel()
        token_rank = np.argsort(np.argsort(token_counts, kind="stable"), kind="stable")
        n_features = prepared.n_features
        #: sentinel larger than every token rank (for "no next token")
        no_token = np.int64(n_features)

        # Flat records: ranked tokens sorted ascending inside each row.
        matrix = prepared.matrix
        indptr = matrix.indptr
        row_nnz = prepared.row_nnz
        sizes = row_nnz.astype(np.int64)
        rows_of_entries = np.repeat(np.arange(n_vectors, dtype=np.int64), row_nnz)
        entry_order = np.lexsort((token_rank[matrix.indices], rows_of_entries))
        tokens = token_rank[matrix.indices][entry_order].astype(np.int64)

        # Record processing order: by size (stable), as in the reference.
        processing_order = np.argsort(sizes, kind="stable")
        processing_position = np.empty(n_vectors, dtype=np.int64)
        processing_position[processing_order] = np.arange(n_vectors)

        # Per-record prefix lengths (empty records produce nothing).
        t = self._threshold
        if self.measure.name == "jaccard":
            min_overlap_self = np.ceil(t * sizes)
        else:
            min_overlap_self = np.ceil(t * t * sizes)
        prefix_lengths = np.maximum(1, sizes - min_overlap_self.astype(np.int64) + 1)
        prefix_lengths[sizes == 0] = 0

        # Per-entry helpers for the suffix filter: the token after each
        # position, and each record's last token.
        total = len(tokens)
        local_positions = (
            np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], row_nnz)
        )
        next_tokens = np.full(total, no_token, dtype=np.int64)
        has_next = local_positions + 1 < sizes[rows_of_entries]
        next_tokens[has_next] = tokens[np.flatnonzero(has_next) + 1]
        last_tokens = np.full(n_vectors, no_token, dtype=np.int64)
        nonempty = sizes > 0
        last_tokens[nonempty] = tokens[indptr[1:][nonempty] - 1]

        # Prefix postings sorted by (token, processing position): the entries
        # visible to record x probing token tk are the prefix of tk's posting
        # group below x's processing position.
        in_prefix = local_positions < prefix_lengths[rows_of_entries]
        prefix_entries = np.flatnonzero(in_prefix)
        entry_tokens = tokens[prefix_entries]
        entry_rows = rows_of_entries[prefix_entries]
        posting_order = np.lexsort(
            (processing_position[entry_rows], entry_tokens)
        )
        posting_token = entry_tokens[posting_order]
        posting_row = entry_rows[posting_order]
        posting_local = local_positions[prefix_entries][posting_order]
        posting_next = next_tokens[prefix_entries][posting_order]
        posting_position = processing_position[entry_rows][posting_order]
        token_offsets = np.searchsorted(
            posting_token, np.arange(n_features + 1, dtype=np.int64)
        )
        posting_key = posting_token * n_vectors + posting_position

        use_positional = self._use_positional_filter
        use_suffix = self._use_suffix_filter
        measure_name = self.measure.name

        # One batched probe over every prefix entry.  Entries are in row-major
        # order, so each record's hits stay contiguous and ordered by probing
        # position (major) and posting order (minor) — the reference's
        # examination order, which the accept-skip accounting below relies on.
        probe_starts = token_offsets[entry_tokens]
        probe_ends = np.searchsorted(
            posting_key, entry_tokens * n_vectors + processing_position[entry_rows]
        )
        hit_counts = probe_ends - probe_starts
        entry_local = local_positions[prefix_entries]

        metadata = {
            "generator": self.name,
            "n_prefix_collisions": 0,
            "n_filtered_positional": 0,
            "n_filtered_suffix": 0,
        }

        def blocks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            # Batch on record boundaries (a record's hits must be examined
            # together) with a bound on gathered hits per batch.
            for entry_start, entry_end in budgeted_batches(
                hit_counts, hit_budget, group_ids=entry_rows
            ):
                batch = slice(entry_start, entry_end)
                gathered = ragged_arange(probe_starts[batch], hit_counts[batch])
                n_hits = len(gathered)
                if n_hits == 0:
                    continue

                x = np.repeat(entry_rows[batch], hit_counts[batch])
                position_x = np.repeat(entry_local[batch], hit_counts[batch])
                y = posting_row[gathered]
                position_y = posting_local[gathered]
                size_x = sizes[x]
                size_y = sizes[y]

                # Length filter (y was indexed earlier so size_y <= size_x; it
                # must still be large enough).
                if measure_name == "jaccard":
                    lower = t * size_x
                    alpha = t / (1.0 + t) * (size_x + size_y)
                else:
                    lower = t * t * size_x
                    alpha = t * np.sqrt((size_x * size_y).astype(np.float64))
                passes_length = size_y >= lower
                if use_positional:
                    overlap_bound = 1 + np.minimum(
                        size_x - position_x - 1, size_y - position_y - 1
                    )
                    passes_positional = overlap_bound >= alpha
                else:
                    passes_positional = np.ones(n_hits, dtype=bool)
                if use_suffix:
                    suffix_x_lengths = size_x - position_x - 1
                    suffix_y_lengths = size_y - position_y - 1
                    x_first = next_tokens[indptr[x] + position_x]
                    x_last = last_tokens[x]
                    y_first = posting_next[gathered]
                    y_last = last_tokens[y]
                    disjoint = (x_last < y_first) | (y_last < x_first)
                    suffix_bound = np.where(
                        (suffix_x_lengths == 0) | (suffix_y_lengths == 0),
                        0,
                        np.where(
                            disjoint, 0, np.minimum(suffix_x_lengths, suffix_y_lengths)
                        ),
                    )
                    passes_suffix = 1 + suffix_bound >= alpha
                else:
                    passes_suffix = np.ones(n_hits, dtype=bool)

                passes_all = passes_length & passes_positional & passes_suffix

                # The reference stops examining y once (x, y) is accepted:
                # only hits up to (and including) the pair's first passing hit
                # count towards the counters; later hits are skipped.
                # Correctness relies only on batch-global hit indices
                # preserving the reference's examination order *within each
                # record's contiguous hit range* (probing position major,
                # posting order minor) — a pair's hits may be interleaved
                # with other pairs' hits, and the first_pass/counted
                # comparison never assumes otherwise.
                pair_keys = x * n_vectors + y
                unique_pairs, inverse = np.unique(pair_keys, return_inverse=True)
                first_pass = np.full(len(unique_pairs), n_hits, dtype=np.int64)
                passing_hits = np.flatnonzero(passes_all)
                if len(passing_hits):
                    np.minimum.at(first_pass, inverse[passing_hits], passing_hits)
                counted = np.arange(n_hits, dtype=np.int64) <= first_pass[inverse]
                examined = passes_length & counted
                metadata["n_prefix_collisions"] += int(np.count_nonzero(examined))
                if use_positional:
                    metadata["n_filtered_positional"] += int(
                        np.count_nonzero(examined & ~passes_positional)
                    )
                if use_suffix:
                    metadata["n_filtered_suffix"] += int(
                        np.count_nonzero(examined & passes_positional & ~passes_suffix)
                    )

                accepted = unique_pairs[first_pass < n_hits]
                for start in range(0, len(accepted), block_size):
                    chunk = accepted[start : start + block_size]
                    yield chunk // n_vectors, chunk % n_vectors

        return BlockStream(blocks(), metadata)
