"""AllPairs candidate generation (Bayardo, Ma & Srikant, WWW 2007).

AllPairs is an exact inverted-index algorithm for cosine similarity over
non-negative vectors.  The key ideas reproduced here:

* vectors are L2-normalised and processed in **decreasing order of their
  maximum weight**;
* features (dimensions) are processed in **decreasing order of density**
  (number of vectors containing the feature), which concentrates the
  "unindexed" portion of each vector on the densest dimensions and keeps the
  inverted index small;
* while indexing a vector, features are added to the inverted index only once
  the accumulated upper bound ``b = sum x[f] * min(maxweight_dim(f),
  maxweight(x))`` reaches the threshold — the prefix of the vector before
  that point can never by itself push a similarity above ``t`` against
  *later* (smaller max-weight) vectors, so it is left unindexed;
* candidate generation for a new vector scans the inverted lists of its
  features, accumulating partial dot products; every vector with a non-zero
  accumulated score becomes a candidate.

The partial-indexing bound is the part of AllPairs that matters for this
reproduction: it is what keeps the candidate set complete (no true pair is
missed) while still producing the large false-positive counts the paper
reports (e.g. 5e9 candidates versus a 2.2e5-pair result set on
WikiWords100K).  The further Find-Matches heuristics of All-Pairs-1/2
(remscore, minsize) only shave constants off candidate generation and are
not reproduced.  Combined with
:class:`~repro.verification.exact.ExactVerifier` this generator gives the
exact AllPairs baseline; combined with BayesLSH it gives ``AP+BayesLSH``.

Only the cosine measures are supported — the algorithm's bounds rely on the
dot-product form of the similarity.  For binary cosine the binary view of the
data is used, matching the paper's binary-cosine experiments.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.base import CandidateGenerator, CandidateSet
from repro.similarity.vectors import VectorCollection

__all__ = ["AllPairsGenerator"]


class AllPairsGenerator(CandidateGenerator):
    """Inverted-index candidate generation with AllPairs' indexing bounds.

    Parameters
    ----------
    measure:
        ``"cosine"`` or ``"binary_cosine"`` (Jaccard search uses PPJoin or
        LSH in the paper).
    threshold:
        Cosine similarity threshold ``t``.
    """

    name = "allpairs"

    def __init__(self, measure="cosine", threshold: float = 0.5):
        super().__init__(measure, threshold)
        if self.measure.name not in ("cosine", "binary_cosine"):
            raise ValueError(
                "AllPairs supports cosine and binary_cosine only; "
                f"got {self.measure.name!r}"
            )

    def generate(self, collection: VectorCollection) -> CandidateSet:
        prepared = self.measure.prepare(collection).normalized()
        n_vectors = prepared.n_vectors
        if n_vectors < 2:
            return CandidateSet.from_pairs([], generator=self.name)

        matrix = prepared.matrix
        n_features = prepared.n_features
        threshold = self._threshold

        # Feature order: decreasing density.  feature_rank[f] = position in order.
        feature_counts = np.asarray((matrix != 0).sum(axis=0)).ravel()
        feature_order = np.argsort(-feature_counts, kind="stable")
        feature_rank = np.empty(n_features, dtype=np.int64)
        feature_rank[feature_order] = np.arange(n_features)

        # Per-dimension maximum weight over the whole dataset.
        max_weight_dim = np.zeros(n_features, dtype=np.float64)
        coo = matrix.tocoo()
        np.maximum.at(max_weight_dim, coo.col, coo.data)

        # Vector order: decreasing maximum weight.
        vector_order = np.argsort(-prepared.max_weights, kind="stable")

        # Inverted index: for each feature, parallel lists of (vector id, weight).
        index_rows: list[list[int]] = [[] for _ in range(n_features)]
        index_weights: list[list[float]] = [[] for _ in range(n_features)]

        pairs: list[tuple[int, int]] = []
        n_score_accumulations = 0

        for x in vector_order:
            x = int(x)
            features = prepared.row_features(x)
            weights = prepared.row_values(x)
            if len(features) == 0:
                continue
            # Sort this vector's features by the global feature order.
            order = np.argsort(feature_rank[features], kind="stable")
            features = features[order]
            weights = weights[order]

            # ---------------- candidate generation (Find-Matches) ----------
            scores: dict[int, float] = {}
            for feature, weight in zip(features, weights):
                rows = index_rows[feature]
                if rows:
                    row_weights = index_weights[feature]
                    for y, y_weight in zip(rows, row_weights):
                        scores[y] = scores.get(y, 0.0) + weight * y_weight
                        n_score_accumulations += 1
            for y in scores:
                pairs.append((x, y) if x < y else (y, x))

            # ---------------- partial indexing of x -----------------------
            bound = 0.0
            x_max_weight = float(prepared.max_weights[x])
            for feature, weight in zip(features, weights):
                bound += float(weight) * min(float(max_weight_dim[feature]), x_max_weight)
                if bound >= threshold:
                    index_rows[feature].append(x)
                    index_weights[feature].append(float(weight))

        return CandidateSet.from_pairs(
            pairs,
            generator=self.name,
            n_score_accumulations=n_score_accumulations,
            index_entries=int(sum(len(rows) for rows in index_rows)),
        )
