"""AllPairs candidate generation (Bayardo, Ma & Srikant, WWW 2007).

AllPairs is an exact inverted-index algorithm for cosine similarity over
non-negative vectors.  The key ideas reproduced here:

* vectors are L2-normalised and processed in **decreasing order of their
  maximum weight**;
* features (dimensions) are processed in **decreasing order of density**
  (number of vectors containing the feature), which concentrates the
  "unindexed" portion of each vector on the densest dimensions and keeps the
  inverted index small;
* while indexing a vector, features are added to the inverted index only once
  the accumulated upper bound ``b = sum x[f] * min(maxweight_dim(f),
  maxweight(x))`` reaches the threshold — the prefix of the vector before
  that point can never by itself push a similarity above ``t`` against
  *later* (smaller max-weight) vectors, so it is left unindexed;
* candidate generation for a new vector scans the inverted lists of its
  features, accumulating partial dot products; every vector with a non-zero
  accumulated score becomes a candidate.

The partial-indexing bound is the part of AllPairs that matters for this
reproduction: it is what keeps the candidate set complete (no true pair is
missed) while still producing the large false-positive counts the paper
reports (e.g. 5e9 candidates versus a 2.2e5-pair result set on
WikiWords100K).  The further Find-Matches heuristics of All-Pairs-1/2
(remscore, minsize) only shave constants off candidate generation and are
not reproduced.  Combined with
:class:`~repro.verification.exact.ExactVerifier` this generator gives the
exact AllPairs baseline; combined with BayesLSH it gives ``AP+BayesLSH``.

Only the cosine measures are supported — the algorithm's bounds rely on the
dot-product form of the similarity.  For binary cosine the binary view of the
data is used, matching the paper's binary-cosine experiments.

Array-based implementation
--------------------------
The classic formulation interleaves probing and indexing in one sequential
pass with per-feature Python lists.  The implementation here exploits the
fact that whether vector ``x`` indexes feature ``f`` depends only on ``x``
itself (its own cumulative bound) and global statistics — never on the other
vectors.  All index entries are therefore computed up front (one vectorised
cumulative-weight pass per vector), laid out as a flat posting array sorted
by ``(feature, processing position)``, and the sequential "only vectors
processed before ``x``" semantics is recovered by slicing each feature's
posting list at ``x``'s processing position with one ``searchsorted``.
Per-vector work is then a handful of NumPy calls; candidate pairs, counters
and the emitted pair set are identical to the sequential reference
(:func:`repro.reference.allpairs_candidates_reference`), because every score
accumulation the reference performs corresponds to exactly one gathered
posting entry here (all stored weights are strictly positive).
"""

from __future__ import annotations

import numpy as np

from typing import Iterator

from repro.candidates.arrayops import budgeted_batches, ragged_arange
from repro.candidates.base import (
    UNBOUNDED_BLOCK,
    BlockStream,
    CandidateGenerator,
    CandidateSet,
)
from repro.similarity.vectors import VectorCollection

__all__ = ["AllPairsGenerator"]

#: cap on gathered posting hits materialised per probe batch
_HIT_BATCH = 4_000_000


class AllPairsGenerator(CandidateGenerator):
    """Inverted-index candidate generation with AllPairs' indexing bounds.

    Parameters
    ----------
    measure:
        ``"cosine"`` or ``"binary_cosine"`` (Jaccard search uses PPJoin or
        LSH in the paper).
    threshold:
        Cosine similarity threshold ``t``.
    """

    name = "allpairs"

    def __init__(self, measure="cosine", threshold: float = 0.5):
        super().__init__(measure, threshold)
        if self.measure.name not in ("cosine", "binary_cosine"):
            raise ValueError(
                "AllPairs supports cosine and binary_cosine only; "
                f"got {self.measure.name!r}"
            )

    def generate_blocks(self, collection: VectorCollection, block_size: int) -> BlockStream:
        """Stream candidate pairs probe-batch by probe-batch.

        The inverted-index probe over all entries proceeds in hit-budgeted
        batches (the budget scales with ``block_size``); each batch's pairs
        are deduplicated within the batch and yielded in ``block_size``
        chunks, so the peak pair-array footprint is bounded by the batch
        budget instead of the total candidate count.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        hit_budget = int(min(_HIT_BATCH, max(block_size, 4096)))
        return self._stream(collection, hit_budget, block_size)

    def generate(self, collection: VectorCollection) -> CandidateSet:
        """All candidate pairs at once (the streamed path with one unbounded block).

        Deterministic in the collection alone: the index-then-probe sweep
        involves no randomness, so repeated calls yield identical pairs,
        counts and metadata.
        """
        return CandidateSet.from_stream(
            self._stream(collection, _HIT_BATCH, UNBOUNDED_BLOCK)
        )

    def _stream(
        self, collection: VectorCollection, hit_budget: int, block_size: int
    ) -> BlockStream:
        prepared = self.measure.prepare(collection).normalized()
        n_vectors = prepared.n_vectors
        if n_vectors < 2:
            return BlockStream(iter(()), {"generator": self.name})

        matrix = prepared.matrix
        n_features = prepared.n_features
        threshold = self._threshold

        # Feature order: decreasing density.  feature_rank[f] = position in order.
        feature_counts = np.asarray((matrix != 0).sum(axis=0)).ravel()
        feature_order = np.argsort(-feature_counts, kind="stable")
        feature_rank = np.empty(n_features, dtype=np.int64)
        feature_rank[feature_order] = np.arange(n_features)

        # Per-dimension maximum weight over the whole dataset.
        max_weight_dim = np.zeros(n_features, dtype=np.float64)
        coo = matrix.tocoo()
        np.maximum.at(max_weight_dim, coo.col, coo.data)

        # Vector order: decreasing maximum weight; position = processing index.
        vector_order = np.argsort(-prepared.max_weights, kind="stable")
        position = np.empty(n_vectors, dtype=np.int64)
        position[vector_order] = np.arange(n_vectors)

        # Flat row-major entry layout with features rank-sorted inside each
        # row (the same order the sequential algorithm visits them in).
        indptr = matrix.indptr
        row_nnz = prepared.row_nnz
        rows_of_entries = np.repeat(np.arange(n_vectors, dtype=np.int64), row_nnz)
        entry_order = np.lexsort((feature_rank[matrix.indices], rows_of_entries))
        sorted_features = matrix.indices[entry_order].astype(np.int64)
        sorted_weights = matrix.data[entry_order]

        # ---------------- phase 1: the partial-indexing bound ----------------
        # b = cumsum(w * min(maxweight_dim(f), maxweight(x))) per row; entry
        # (x, f) is indexed once the running bound reaches the threshold.
        # np.cumsum accumulates left to right, so each row's bound sequence is
        # bit-identical to the sequential scalar accumulation.
        terms = sorted_weights * np.minimum(
            max_weight_dim[sorted_features], np.repeat(prepared.max_weights, row_nnz)
        )
        indexed_flat = np.zeros(len(sorted_features), dtype=bool)
        for x in range(n_vectors):
            start, end = indptr[x], indptr[x + 1]
            if end > start:
                indexed_flat[start:end] = np.cumsum(terms[start:end]) >= threshold

        # ---------------- phase 2: posting lists ----------------------------
        # Flat inverted index over the indexed entries, grouped by feature and
        # ordered by processing position inside each group, so "the vectors
        # indexed before x" is the prefix of a feature's postings below
        # position[x].
        indexed_positions = np.flatnonzero(indexed_flat)
        posting_feature = sorted_features[indexed_positions]
        posting_row = rows_of_entries[indexed_positions]
        posting_position = position[posting_row]
        posting_order = np.lexsort((posting_position, posting_feature))
        posting_row = posting_row[posting_order]
        posting_feature = posting_feature[posting_order]
        posting_position = posting_position[posting_order]
        feature_offsets = np.searchsorted(
            posting_feature, np.arange(n_features + 1, dtype=np.int64)
        )
        # Composite key (feature, position) for one-shot prefix boundaries.
        posting_key = posting_feature * n_vectors + posting_position

        # ---------------- phase 3: candidate generation ----------------------
        # One batched probe over every entry: the postings visible to entry
        # (x, f) are the prefix of f's posting group below x's processing
        # position, located with a single searchsorted over all entries.
        # Gathered hits are materialised in budget-bounded batches; duplicate
        # (x, y) pairs across batches are removed by from_arrays.
        prefix_starts = feature_offsets[sorted_features]
        prefix_ends = np.searchsorted(
            posting_key, sorted_features * n_vectors + position[rows_of_entries]
        )
        hit_counts = prefix_ends - prefix_starts
        n_score_accumulations = int(hit_counts.sum())
        metadata = {
            "generator": self.name,
            "n_score_accumulations": n_score_accumulations,
            "index_entries": int(len(indexed_positions)),
        }

        def blocks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for entry_start, entry_end in budgeted_batches(hit_counts, hit_budget):
                batch = slice(entry_start, entry_end)
                gathered = ragged_arange(prefix_starts[batch], hit_counts[batch])
                if not len(gathered):
                    continue
                ys = posting_row[gathered]
                xs = np.repeat(rows_of_entries[batch], hit_counts[batch])
                pair_keys = np.unique(xs * n_vectors + ys)
                for start in range(0, len(pair_keys), block_size):
                    chunk = pair_keys[start : start + block_size]
                    yield chunk // n_vectors, chunk % n_vectors

        return BlockStream(blocks(), metadata)
