"""Brute-force candidate generation.

Generates every pair ``(i, j)`` with ``i < j`` — or, with
``require_shared_feature=True`` (the default), every pair whose supports
intersect, since pairs with disjoint supports have similarity zero under all
three measures the library supports.  Used as the reference generator for
ground truth and in tests; quadratic, so only suitable for small collections.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.base import CandidateGenerator, CandidateSet
from repro.similarity.vectors import VectorCollection

__all__ = ["BruteForceGenerator"]


class BruteForceGenerator(CandidateGenerator):
    """Every pair of vectors (optionally only pairs sharing a feature)."""

    name = "brute_force"

    def __init__(
        self,
        measure="cosine",
        threshold: float = 0.5,
        require_shared_feature: bool = True,
    ):
        super().__init__(measure, threshold)
        self._require_shared_feature = bool(require_shared_feature)

    def generate(self, collection: VectorCollection) -> CandidateSet:
        """Every pair (optionally restricted to pairs sharing a feature)."""
        n = collection.n_vectors
        if n < 2:
            return CandidateSet.from_pairs([], generator=self.name)
        if not self._require_shared_feature:
            left, right = np.triu_indices(n, k=1)
            return CandidateSet(
                left=left.astype(np.int64),
                right=right.astype(np.int64),
                metadata={"generator": self.name, "n_raw": len(left)},
            )
        # Pairs sharing at least one feature: non-zeros of the co-occurrence
        # matrix B @ B.T where B is the binary view of the data.
        binary = collection.binarized().matrix
        co_occurrence = (binary @ binary.T).tocoo()
        mask = co_occurrence.row < co_occurrence.col
        left = co_occurrence.row[mask].astype(np.int64)
        right = co_occurrence.col[mask].astype(np.int64)
        return CandidateSet(
            left=left,
            right=right,
            metadata={"generator": self.name, "n_raw": len(left)},
        )
