"""Candidate generator interface and the candidate-set container."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.similarity.measures import SimilarityMeasure, get_measure
from repro.similarity.vectors import VectorCollection

__all__ = ["BlockStream", "CandidateGenerator", "CandidateSet", "UNBOUNDED_BLOCK"]

#: block size that never splits: a monolithic generate() consuming its own
#: block stream passes this so every natural block arrives whole
UNBOUNDED_BLOCK = 1 << 62


class BlockStream:
    """A stream of raw candidate-pair blocks with late-bound metadata.

    Iterating yields ``(left, right)`` parallel index-array blocks.  Blocks
    are *raw*: pairs may repeat across blocks (LSH emits one copy per band
    collision) and are not canonicalised; consumers deduplicate incrementally
    (see :class:`repro.search.executor.StreamExecutor`) or via
    :meth:`CandidateSet.from_arrays`.  ``metadata`` is filled in by the
    producing generator as the stream is consumed and is only complete once
    iteration has finished.
    """

    def __init__(self, blocks: Iterator[tuple[np.ndarray, np.ndarray]], metadata: dict):
        self._blocks = blocks
        self.metadata = metadata

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return self._blocks


@dataclass
class CandidateSet:
    """A deduplicated set of candidate pairs ``(i, j)`` with ``i < j``.

    Attributes
    ----------
    left, right:
        Parallel index arrays; ``left[k] < right[k]`` for every ``k``.
    metadata:
        Free-form statistics recorded by the generator (index size, number of
        raw collisions before deduplication, and so on).
    """

    left: np.ndarray
    right: np.ndarray
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]], **metadata) -> "CandidateSet":
        """Build a candidate set from an iterable of ``(i, j)`` pairs.

        Pairs are canonicalised to ``i < j``, self-pairs are dropped and
        duplicates removed.
        """
        unique: set[tuple[int, int]] = set()
        for i, j in pairs:
            if i == j:
                continue
            unique.add((int(i), int(j)) if i < j else (int(j), int(i)))
        if unique:
            ordered = sorted(unique)
            left = np.array([p[0] for p in ordered], dtype=np.int64)
            right = np.array([p[1] for p in ordered], dtype=np.int64)
        else:
            left = np.zeros(0, dtype=np.int64)
            right = np.zeros(0, dtype=np.int64)
        return cls(left=left, right=right, metadata=dict(metadata))

    @classmethod
    def from_stream(cls, stream: "BlockStream") -> "CandidateSet":
        """Collect a fully-consumed :class:`BlockStream` into a candidate set.

        Concatenates every raw block and canonicalises/deduplicates via
        :meth:`from_arrays` with the stream's (then complete) metadata — the
        shared tail of every generator's monolithic :meth:`generate`.
        """
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        for left, right in stream:
            left_parts.append(left)
            right_parts.append(right)
        left = np.concatenate(left_parts) if left_parts else np.zeros(0, dtype=np.int64)
        right = np.concatenate(right_parts) if right_parts else np.zeros(0, dtype=np.int64)
        return cls.from_arrays(left, right, **stream.metadata)

    @classmethod
    def from_arrays(cls, left, right, **metadata) -> "CandidateSet":
        """Build a candidate set from parallel index arrays (canonicalising/deduplicating)."""
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if left.shape != right.shape:
            raise ValueError("left and right must have the same shape")
        keep = left != right
        low = np.minimum(left[keep], right[keep])
        high = np.maximum(left[keep], right[keep])
        if len(low):
            # Deduplicate via a composite integer key: one flat int64 sort
            # instead of np.unique's lexicographic row sort.
            span = int(high.max()) + 1
            if span >= (1 << 31):  # key would overflow int64; take the slow path
                stacked = np.unique(np.stack([low, high], axis=1), axis=0)
                return cls(left=stacked[:, 0], right=stacked[:, 1], metadata=dict(metadata))
            keys = np.unique(low * span + high)
            return cls(left=keys // span, right=keys % span, metadata=dict(metadata))
        return cls(
            left=np.zeros(0, dtype=np.int64),
            right=np.zeros(0, dtype=np.int64),
            metadata=dict(metadata),
        )

    def __len__(self) -> int:
        return len(self.left)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for i, j in zip(self.left, self.right):
            yield int(i), int(j)

    def as_set(self) -> set[tuple[int, int]]:
        """The candidate pairs as a Python set of ``(i, j)`` tuples."""
        return {(int(i), int(j)) for i, j in zip(self.left, self.right)}

    def __repr__(self) -> str:
        return f"CandidateSet(n_pairs={len(self)})"


class CandidateGenerator(ABC):
    """Base class of all candidate generation algorithms.

    A generator is constructed with a similarity measure and a threshold and
    produces a :class:`CandidateSet` from a vector collection.  Generators
    are free to miss pairs (LSH misses with a controlled false-negative rate)
    or to produce false positives (all of them do); the verification phase is
    responsible for the final answer.
    """

    #: machine-readable name used by pipelines and reports
    name: str = ""

    def __init__(self, measure: str | SimilarityMeasure, threshold: float):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        self._measure = get_measure(measure)
        self._threshold = float(threshold)

    @property
    def measure(self) -> SimilarityMeasure:
        """The similarity measure candidates are generated for."""
        return self._measure

    @property
    def threshold(self) -> float:
        """The similarity threshold the candidate set targets."""
        return self._threshold

    @abstractmethod
    def generate(self, collection: VectorCollection) -> CandidateSet:
        """Produce candidate pairs for the given collection."""

    def generate_blocks(self, collection: VectorCollection, block_size: int) -> BlockStream:
        """Stream candidate pairs in bounded-size raw blocks.

        The union of the yielded blocks (canonicalised and deduplicated)
        equals :meth:`generate`'s pair set, and the stream's final metadata
        equals the generated candidate set's metadata.  Generators with a
        naturally streaming structure (LSH bands, inverted-index probe
        batches) override this so no monolithic pair array is ever
        materialised; the base implementation falls back to chunking a full
        :meth:`generate` run.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        candidates = self.generate(collection)

        def blocks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for start in range(0, len(candidates), block_size):
                end = start + block_size
                yield candidates.left[start:end], candidates.right[start:end]

        return BlockStream(blocks(), dict(candidates.metadata))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(measure={self._measure.name!r}, "
            f"threshold={self._threshold})"
        )
