"""Canonical in-memory representation of a vector collection.

Every algorithm in the library (hashing, candidate generation, verification)
operates on a :class:`VectorCollection`, a thin immutable wrapper around a
``scipy.sparse.csr_matrix`` that pre-computes the per-row statistics the
algorithms need over and over again: L2 norms, number of non-zeros,
maximum weights, and (lazily) the binary version of the data.

The wrapper exists for three reasons:

* the paper's algorithms mix *weighted* and *binary* views of the same data
  (AllPairs works on L2-normalised weighted vectors, PPJoin+ and minhash work
  on the binary token sets), and keeping both views coherent in one object
  avoids a whole class of bugs;
* per-row statistics such as ``max_weights`` and ``norms`` are needed by the
  pruning bounds of AllPairs and by TF-IDF construction, and computing them
  once is markedly cheaper than recomputing inside inner loops;
* the class normalises the many accepted input formats (dense arrays, CSR
  matrices, lists of token iterables, lists of ``{feature: weight}`` dicts)
  into one predictable shape.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["VectorCollection"]


def _as_csr(matrix) -> sp.csr_matrix:
    """Convert ``matrix`` to a canonical float64 CSR matrix."""
    if sp.issparse(matrix):
        csr = matrix.tocsr()
    else:
        array = np.asarray(matrix, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"expected a 2-D array of shape (n_vectors, n_features), got ndim={array.ndim}"
            )
        csr = sp.csr_matrix(array)
    csr = csr.astype(np.float64)
    csr.sort_indices()
    csr.eliminate_zeros()
    return csr


class VectorCollection:
    """An immutable collection of sparse vectors with cached row statistics.

    Parameters
    ----------
    matrix:
        Anything convertible to a CSR matrix of shape
        ``(n_vectors, n_features)``.  Negative weights are rejected: every
        similarity measure in the paper (cosine on TF-IDF data, Jaccard on
        sets) assumes non-negative data, and the cosine LSH posterior relies
        on the collision probability living in ``[0.5, 1]``, which requires
        non-negative vectors.
    ids:
        Optional external identifiers, one per vector.  Defaults to
        ``0..n_vectors-1``.
    """

    def __init__(self, matrix, ids: Sequence | None = None):
        self._matrix = _as_csr(matrix)
        if self._matrix.nnz and self._matrix.data.min() < 0:
            raise ValueError(
                "VectorCollection requires non-negative weights; "
                "cosine-LSH pruning assumes similarities in [0, 1]"
            )
        n = self._matrix.shape[0]
        if ids is None:
            self._ids = np.arange(n, dtype=np.int64)
        else:
            self._ids = np.asarray(list(ids))
            if len(self._ids) != n:
                raise ValueError(
                    f"ids has length {len(self._ids)} but the matrix has {n} rows"
                )
        self._norms: np.ndarray | None = None
        self._row_nnz: np.ndarray | None = None
        self._max_weights: np.ndarray | None = None
        self._binary: VectorCollection | None = None
        self._normalized: VectorCollection | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array, ids: Sequence | None = None) -> "VectorCollection":
        """Build a collection from a dense 2-D array."""
        return cls(np.asarray(array, dtype=np.float64), ids=ids)

    @classmethod
    def restored(
        cls,
        components: tuple[np.ndarray, np.ndarray, np.ndarray],
        shape: tuple[int, int],
        ids: Sequence | None = None,
    ) -> "VectorCollection":
        """Adopt canonical CSR ``(data, indices, indptr)`` components as-is.

        The snapshot-restore twin of the constructor: the components must
        have been produced by this class (so they are already float64,
        index-sorted, zero-free and non-negative) and are adopted without
        re-canonicalisation or copies.  That is what keeps memory-mapped
        snapshot components *lazy* — the validating constructor would fault
        in and copy every page.  Never pass untrusted input here.
        """
        instance = cls.__new__(cls)
        instance._matrix = sp.csr_matrix(components, shape=shape, copy=False)
        n = instance._matrix.shape[0]
        if ids is None:
            instance._ids = np.arange(n, dtype=np.int64)
        else:
            instance._ids = np.asarray(ids)
            if len(instance._ids) != n:
                raise ValueError(
                    f"ids has length {len(instance._ids)} but the matrix has {n} rows"
                )
        instance._norms = None
        instance._row_nnz = None
        instance._max_weights = None
        instance._binary = None
        instance._normalized = None
        return instance

    @classmethod
    def from_sets(
        cls,
        sets: Iterable[Iterable[int]],
        n_features: int | None = None,
        ids: Sequence | None = None,
    ) -> "VectorCollection":
        """Build a binary collection from an iterable of token-id sets."""
        rows: list[int] = []
        cols: list[int] = []
        n_rows = 0
        max_feature = -1
        for row_index, tokens in enumerate(sets):
            n_rows = row_index + 1
            for token in set(tokens):
                token = int(token)
                if token < 0:
                    raise ValueError("token ids must be non-negative integers")
                rows.append(row_index)
                cols.append(token)
                max_feature = max(max_feature, token)
        if n_features is None:
            n_features = max_feature + 1 if max_feature >= 0 else 0
        elif max_feature >= n_features:
            raise ValueError(
                f"token id {max_feature} out of range for n_features={n_features}"
            )
        data = np.ones(len(rows), dtype=np.float64)
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(n_rows, n_features), dtype=np.float64
        )
        return cls(matrix, ids=ids)

    @classmethod
    def from_dicts(
        cls,
        dicts: Iterable[Mapping[int, float]],
        n_features: int | None = None,
        ids: Sequence | None = None,
    ) -> "VectorCollection":
        """Build a weighted collection from ``{feature_id: weight}`` mappings."""
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        n_rows = 0
        max_feature = -1
        for row_index, mapping in enumerate(dicts):
            n_rows = row_index + 1
            for token, weight in mapping.items():
                token = int(token)
                rows.append(row_index)
                cols.append(token)
                vals.append(float(weight))
                max_feature = max(max_feature, token)
        if n_features is None:
            n_features = max_feature + 1 if max_feature >= 0 else 0
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n_rows, n_features), dtype=np.float64
        )
        return cls(matrix, ids=ids)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> sp.csr_matrix:
        """The underlying CSR matrix (do not mutate)."""
        return self._matrix

    @property
    def ids(self) -> np.ndarray:
        """External identifiers, one per row."""
        return self._ids

    @property
    def n_vectors(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self._matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Total number of stored non-zero entries."""
        return int(self._matrix.nnz)

    def __len__(self) -> int:
        return self.n_vectors

    def __repr__(self) -> str:
        return (
            f"VectorCollection(n_vectors={self.n_vectors}, "
            f"n_features={self.n_features}, nnz={self.nnz})"
        )

    # ------------------------------------------------------------------ #
    # cached row statistics
    # ------------------------------------------------------------------ #
    @property
    def norms(self) -> np.ndarray:
        """Per-row L2 norms."""
        if self._norms is None:
            squared = np.asarray(self._matrix.multiply(self._matrix).sum(axis=1)).ravel()
            self._norms = np.sqrt(squared)
        return self._norms

    @property
    def row_nnz(self) -> np.ndarray:
        """Per-row number of non-zero features (the "length" in the paper)."""
        if self._row_nnz is None:
            self._row_nnz = np.diff(self._matrix.indptr).astype(np.int64)
        return self._row_nnz

    @property
    def max_weights(self) -> np.ndarray:
        """Per-row maximum weight (0 for empty rows); used by AllPairs bounds."""
        if self._max_weights is None:
            result = np.zeros(self.n_vectors, dtype=np.float64)
            matrix = self._matrix
            nonempty = np.flatnonzero(np.diff(matrix.indptr) > 0)
            if len(nonempty):
                # One segmented reduction over the non-empty rows; consecutive
                # non-empty starts bound each row's data segment exactly.
                result[nonempty] = np.maximum.reduceat(
                    matrix.data, matrix.indptr[nonempty]
                )
            self._max_weights = result
        return self._max_weights

    @property
    def average_length(self) -> float:
        """Average number of non-zeros per vector (Table 1's "Avg. len")."""
        if self.n_vectors == 0:
            return 0.0
        return float(self.row_nnz.mean())

    @property
    def is_binary(self) -> bool:
        """True when every stored value equals 1."""
        if self._matrix.nnz == 0:
            return True
        return bool(np.all(self._matrix.data == 1.0))

    # ------------------------------------------------------------------ #
    # row access
    # ------------------------------------------------------------------ #
    def row(self, index: int) -> sp.csr_matrix:
        """The ``index``-th vector as a 1 x n_features CSR matrix."""
        return self._matrix.getrow(index)

    def row_features(self, index: int) -> np.ndarray:
        """Feature ids of the non-zero entries of row ``index`` (sorted)."""
        start, end = self._matrix.indptr[index], self._matrix.indptr[index + 1]
        return self._matrix.indices[start:end]

    def row_values(self, index: int) -> np.ndarray:
        """Weights of the non-zero entries of row ``index``."""
        start, end = self._matrix.indptr[index], self._matrix.indptr[index + 1]
        return self._matrix.data[start:end]

    def row_set(self, index: int) -> frozenset:
        """The feature ids of row ``index`` as a frozenset (for Jaccard)."""
        return frozenset(int(f) for f in self.row_features(index))

    def subset(self, indices: Sequence[int]) -> "VectorCollection":
        """A new collection containing only the given row indices, in order."""
        indices = np.asarray(indices, dtype=np.int64)
        return VectorCollection(self._matrix[indices], ids=self._ids[indices])

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def binarized(self) -> "VectorCollection":
        """Binary view of this collection (all non-zero weights become 1)."""
        if self.is_binary:
            return self
        if self._binary is None:
            binary = self._matrix.copy()
            binary.data = np.ones_like(binary.data)
            self._binary = VectorCollection(binary, ids=self._ids)
        return self._binary

    def normalized(self) -> "VectorCollection":
        """L2-normalised view (rows with zero norm are left untouched)."""
        if self._normalized is None:
            norms = self.norms.copy()
            norms[norms == 0.0] = 1.0
            scale = sp.diags(1.0 / norms)
            self._normalized = VectorCollection(scale @ self._matrix, ids=self._ids)
        return self._normalized
