"""Similarity measures used throughout the paper.

Three measures appear in the evaluation:

* **Cosine** on TF-IDF weighted real-valued vectors (the primary setting),
* **Jaccard** on binary vectors / sets,
* **Binary cosine**, i.e. cosine similarity after binarising the vectors.

Each measure is exposed both as a plain function operating on a
:class:`~repro.similarity.vectors.VectorCollection` and a pair of row indices,
and as a small strategy object (:class:`SimilarityMeasure`) that algorithms
hold on to.  The strategy objects also know which LSH family estimates them
(``"minhash"`` for Jaccard, ``"simhash"`` for the two cosine variants), which
is what lets the verification layer pick the right posterior model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection

__all__ = [
    "SimilarityMeasure",
    "CosineSimilarity",
    "JaccardSimilarity",
    "BinaryCosineSimilarity",
    "get_measure",
    "cosine_similarity",
    "jaccard_similarity",
    "binary_cosine_similarity",
]


def _sparse_dot(a: sp.csr_matrix, b: sp.csr_matrix) -> float:
    """Dot product of two 1 x d CSR rows."""
    return float(a.multiply(b).sum())


def cosine_similarity(collection: VectorCollection, i: int, j: int) -> float:
    """Exact cosine similarity between rows ``i`` and ``j``."""
    norm_i = collection.norms[i]
    norm_j = collection.norms[j]
    if norm_i == 0.0 or norm_j == 0.0:
        return 0.0
    dot = _sparse_dot(collection.row(i), collection.row(j))
    return min(1.0, dot / (norm_i * norm_j))


def jaccard_similarity(collection: VectorCollection, i: int, j: int) -> float:
    """Exact Jaccard similarity between the supports of rows ``i`` and ``j``."""
    features_i = collection.row_features(i)
    features_j = collection.row_features(j)
    if len(features_i) == 0 and len(features_j) == 0:
        return 0.0
    intersection = np.intersect1d(features_i, features_j, assume_unique=True).size
    union = len(features_i) + len(features_j) - intersection
    if union == 0:
        return 0.0
    return intersection / union


def binary_cosine_similarity(collection: VectorCollection, i: int, j: int) -> float:
    """Exact cosine similarity between the *binarised* rows ``i`` and ``j``."""
    features_i = collection.row_features(i)
    features_j = collection.row_features(j)
    if len(features_i) == 0 or len(features_j) == 0:
        return 0.0
    intersection = np.intersect1d(features_i, features_j, assume_unique=True).size
    return intersection / float(np.sqrt(len(features_i) * len(features_j)))


class SimilarityMeasure(ABC):
    """A similarity measure with an associated LSH family.

    Subclasses provide exact pairwise computation, dataset-level preparation
    (e.g. cosine wants the L2-normalised view, the binary measures want the
    binarised view), and the name of the LSH family whose collision
    probability estimates them.
    """

    #: short machine-readable name ("cosine", "jaccard", "binary_cosine")
    name: str = ""
    #: LSH family used for this measure ("simhash" or "minhash")
    lsh_family: str = ""

    @abstractmethod
    def prepare(self, collection: VectorCollection) -> VectorCollection:
        """Return the view of ``collection`` this measure operates on."""

    @abstractmethod
    def exact(self, collection: VectorCollection, i: int, j: int) -> float:
        """Exact similarity between rows ``i`` and ``j`` of a *prepared* collection."""

    def pairwise_matrix(self, collection: VectorCollection) -> np.ndarray:
        """Dense ``n x n`` matrix of exact similarities (for ground truth / tests).

        Quadratic in the number of vectors; only intended for the evaluation
        harness and for small collections.
        """
        prepared = self.prepare(collection)
        n = prepared.n_vectors
        result = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            result[i, i] = 1.0 if prepared.row_nnz[i] > 0 else 0.0
            for j in range(i + 1, n):
                sim = self.exact(prepared, i, j)
                result[i, j] = sim
                result[j, i] = sim
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CosineSimilarity(SimilarityMeasure):
    """Cosine similarity on real-valued (typically TF-IDF weighted) vectors."""

    name = "cosine"
    lsh_family = "simhash"

    def prepare(self, collection: VectorCollection) -> VectorCollection:
        return collection.normalized()

    def exact(self, collection: VectorCollection, i: int, j: int) -> float:
        return cosine_similarity(collection, i, j)


class JaccardSimilarity(SimilarityMeasure):
    """Jaccard similarity on binary vectors (sets of feature ids)."""

    name = "jaccard"
    lsh_family = "minhash"

    def prepare(self, collection: VectorCollection) -> VectorCollection:
        return collection.binarized()

    def exact(self, collection: VectorCollection, i: int, j: int) -> float:
        return jaccard_similarity(collection, i, j)


class BinaryCosineSimilarity(SimilarityMeasure):
    """Cosine similarity computed on the binarised vectors."""

    name = "binary_cosine"
    lsh_family = "simhash"

    def prepare(self, collection: VectorCollection) -> VectorCollection:
        return collection.binarized()

    def exact(self, collection: VectorCollection, i: int, j: int) -> float:
        return binary_cosine_similarity(collection, i, j)


_MEASURES: dict[str, type[SimilarityMeasure]] = {
    "cosine": CosineSimilarity,
    "jaccard": JaccardSimilarity,
    "binary_cosine": BinaryCosineSimilarity,
}


def get_measure(name: str | SimilarityMeasure) -> SimilarityMeasure:
    """Resolve a measure name (or pass an instance through).

    Accepts ``"cosine"``, ``"jaccard"`` and ``"binary_cosine"``.
    """
    if isinstance(name, SimilarityMeasure):
        return name
    try:
        return _MEASURES[name]()
    except KeyError:
        known = ", ".join(sorted(_MEASURES))
        raise ValueError(f"unknown similarity measure {name!r}; expected one of: {known}") from None
