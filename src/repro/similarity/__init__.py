"""Similarity measures and sparse-vector utilities.

This subpackage is the substrate shared by every algorithm in the library:
it owns the canonical in-memory representation of a vector collection
(:class:`repro.similarity.vectors.VectorCollection`), the similarity
measures the paper evaluates (cosine, Jaccard, binary cosine), and the
pre-processing transforms the paper applies to its datasets (TF-IDF
weighting, binarisation, L2 normalisation).
"""

from repro.similarity.measures import (
    SimilarityMeasure,
    CosineSimilarity,
    JaccardSimilarity,
    BinaryCosineSimilarity,
    get_measure,
    cosine_similarity,
    jaccard_similarity,
    binary_cosine_similarity,
)
from repro.similarity.transforms import (
    tfidf_weighting,
    binarize,
    l2_normalize,
)
from repro.similarity.vectors import VectorCollection

__all__ = [
    "BinaryCosineSimilarity",
    "CosineSimilarity",
    "JaccardSimilarity",
    "SimilarityMeasure",
    "VectorCollection",
    "binarize",
    "binary_cosine_similarity",
    "cosine_similarity",
    "get_measure",
    "jaccard_similarity",
    "l2_normalize",
    "tfidf_weighting",
]
