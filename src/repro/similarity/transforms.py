"""Dataset pre-processing transforms used by the paper.

The paper pre-processes every corpus the same way: TF-IDF weighting for the
weighted experiments, plain binarisation for the binary (Jaccard / binary
cosine) experiments, and L2 normalisation before cosine similarity search.
These transforms are pure functions from :class:`VectorCollection` to
:class:`VectorCollection`; they never mutate their input.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection

__all__ = ["tfidf_weighting", "binarize", "l2_normalize", "document_frequencies"]


def document_frequencies(collection: VectorCollection) -> np.ndarray:
    """Number of vectors in which each feature occurs (length ``n_features``)."""
    binary = collection.binarized()
    return np.asarray(binary.matrix.sum(axis=0)).ravel().astype(np.int64)


def tfidf_weighting(
    collection: VectorCollection,
    smooth: bool = True,
    sublinear_tf: bool = False,
) -> VectorCollection:
    """Apply TF-IDF weighting, mirroring the paper's corpus preparation.

    Parameters
    ----------
    collection:
        Raw term-frequency (or adjacency) vectors.
    smooth:
        Use the smoothed inverse document frequency
        ``log((1 + n) / (1 + df)) + 1`` which avoids division by zero for
        features that appear in every vector.
    sublinear_tf:
        Replace raw term frequency ``tf`` with ``1 + log(tf)``.
    """
    matrix = collection.matrix.copy().astype(np.float64)
    n_vectors = collection.n_vectors
    df = document_frequencies(collection).astype(np.float64)
    if smooth:
        idf = np.log((1.0 + n_vectors) / (1.0 + df)) + 1.0
    else:
        with np.errstate(divide="ignore"):
            idf = np.log(np.where(df > 0, n_vectors / np.maximum(df, 1), 1.0)) + 1.0
    if sublinear_tf and matrix.nnz:
        matrix.data = 1.0 + np.log(matrix.data)
    weighted = matrix @ sp.diags(idf)
    return VectorCollection(weighted, ids=collection.ids)


def binarize(collection: VectorCollection) -> VectorCollection:
    """Binary view: every non-zero weight becomes 1."""
    return collection.binarized()


def l2_normalize(collection: VectorCollection) -> VectorCollection:
    """L2-normalised view (unit-norm rows; empty rows stay empty)."""
    return collection.normalized()
