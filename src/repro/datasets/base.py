"""The :class:`Dataset` container: a named vector collection plus metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.similarity.vectors import VectorCollection

__all__ = ["Dataset", "DatasetStatistics"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The per-dataset statistics reported in Table 1 of the paper."""

    n_vectors: int
    n_features: int
    average_length: float
    nnz: int

    def as_row(self) -> tuple[int, int, float, int]:
        return (self.n_vectors, self.n_features, self.average_length, self.nnz)


@dataclass
class Dataset:
    """A named collection of vectors, the unit every algorithm operates on.

    Attributes
    ----------
    collection:
        The underlying :class:`VectorCollection` (weighted view).
    name:
        Human-readable name (used in reports and benchmark output).
    description:
        Free-form description, e.g. which paper dataset this stands in for.
    metadata:
        Generator parameters and other provenance.
    """

    collection: VectorCollection
    name: str = "dataset"
    description: str = ""
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array, name: str = "dataset", **metadata) -> "Dataset":
        """Build a dataset from a dense 2-D array."""
        return cls(VectorCollection.from_dense(array), name=name, metadata=metadata)

    @classmethod
    def from_sparse(cls, matrix, name: str = "dataset", **metadata) -> "Dataset":
        """Build a dataset from any scipy sparse matrix."""
        return cls(VectorCollection(matrix), name=name, metadata=metadata)

    @classmethod
    def from_sets(
        cls,
        sets: Iterable[Iterable[int]],
        n_features: int | None = None,
        name: str = "dataset",
        **metadata,
    ) -> "Dataset":
        """Build a binary dataset from an iterable of token-id sets."""
        return cls(
            VectorCollection.from_sets(sets, n_features=n_features),
            name=name,
            metadata=metadata,
        )

    @classmethod
    def from_dicts(
        cls,
        dicts: Iterable[Mapping[int, float]],
        n_features: int | None = None,
        name: str = "dataset",
        **metadata,
    ) -> "Dataset":
        """Build a weighted dataset from ``{feature: weight}`` mappings."""
        return cls(
            VectorCollection.from_dicts(dicts, n_features=n_features),
            name=name,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # views and statistics
    # ------------------------------------------------------------------ #
    @property
    def n_vectors(self) -> int:
        return self.collection.n_vectors

    @property
    def n_features(self) -> int:
        return self.collection.n_features

    @property
    def nnz(self) -> int:
        return self.collection.nnz

    def __len__(self) -> int:
        return self.n_vectors

    def statistics(self) -> DatasetStatistics:
        """Table-1 style statistics of this dataset."""
        return DatasetStatistics(
            n_vectors=self.n_vectors,
            n_features=self.n_features,
            average_length=round(self.collection.average_length, 1),
            nnz=self.nnz,
        )

    def binarized(self) -> "Dataset":
        """A binary view of this dataset (for the Jaccard / binary-cosine experiments)."""
        return Dataset(
            self.collection.binarized(),
            name=f"{self.name} (binary)",
            description=self.description,
            metadata=dict(self.metadata, binary=True),
        )

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A dataset restricted to the given row indices."""
        return Dataset(
            self.collection.subset(indices),
            name=f"{self.name} (subset)",
            description=self.description,
            metadata=dict(self.metadata, subset_size=len(list(indices))),
        )

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_vectors={self.n_vectors}, "
            f"n_features={self.n_features}, nnz={self.nnz})"
        )
