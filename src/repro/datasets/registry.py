"""Registry of the paper's six evaluation datasets (synthetic stand-ins).

The paper's corpora (Table 1) range from 100K to 3M vectors and up to 233M
non-zeros; they are neither redistributable nor practical for a pure-Python
laptop reproduction.  The registry therefore maps each dataset name to a
synthetic generator configuration that mirrors its *shape*:

* text corpora (RCV1, WikiWords100K, WikiWords500K) become Zipf bag-of-words
  corpora with planted near-duplicate clusters, with relative average lengths
  preserved (WikiWords100K has the longest documents, RCV1 the shortest);
* graph datasets (WikiLinks, Orkut, Twitter) become community-structured
  graphs; WikiLinks/Orkut keep short adjacency lists with high variance
  (which is what makes AllPairs shine on them in the paper), Twitter keeps
  long adjacency lists (which is what makes LSH shine).

``PAPER_STATISTICS`` records the original Table 1 numbers so reports can show
paper-vs-reproduction side by side.  The ``scale`` argument of
:func:`load_dataset` grows or shrinks the synthetic stand-ins uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.base import Dataset, DatasetStatistics
from repro.datasets.synthetic import synthetic_graph, synthetic_text_corpus
from repro.similarity.transforms import tfidf_weighting

__all__ = ["DATASET_NAMES", "PAPER_STATISTICS", "dataset_spec", "load_dataset"]


#: Table 1 of the paper.
PAPER_STATISTICS: dict[str, DatasetStatistics] = {
    "rcv1": DatasetStatistics(804_414, 47_236, 76.0, 61_000_000),
    "wikiwords100k": DatasetStatistics(100_528, 344_352, 786.0, 79_000_000),
    "wikiwords500k": DatasetStatistics(494_244, 344_352, 398.0, 196_000_000),
    "wikilinks": DatasetStatistics(1_815_914, 1_815_914, 24.0, 44_000_000),
    "orkut": DatasetStatistics(3_072_626, 3_072_626, 76.0, 233_000_000),
    "twitter": DatasetStatistics(146_170, 146_170, 1369.0, 200_000_000),
}


@dataclass(frozen=True)
class DatasetSpec:
    """Generator configuration for one registry dataset."""

    name: str
    kind: str  # "text" or "graph"
    stands_in_for: str
    params: dict = field(default_factory=dict)

    def build(self, scale: float = 1.0, seed: int = 0) -> Dataset:
        """Instantiate the synthetic stand-in at the given scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        params = dict(self.params)
        if self.kind == "text":
            params["n_documents"] = max(16, int(params["n_documents"] * scale))
            params["vocabulary_size"] = max(64, int(params["vocabulary_size"] * scale))
            dataset = synthetic_text_corpus(seed=seed, name=self.name, **params)
            weighted = tfidf_weighting(dataset.collection)
            return Dataset(
                weighted,
                name=self.name,
                description=(
                    f"synthetic stand-in for {self.stands_in_for} "
                    "(Zipf TF-IDF corpus with planted near-duplicates)"
                ),
                metadata=dict(dataset.metadata, stands_in_for=self.stands_in_for),
            )
        if self.kind == "graph":
            params["n_nodes"] = max(32, int(params["n_nodes"] * scale))
            params["n_communities"] = max(4, int(params["n_communities"] * scale))
            dataset = synthetic_graph(seed=seed, name=self.name, **params)
            weighted = tfidf_weighting(dataset.collection)
            return Dataset(
                weighted,
                name=self.name,
                description=(
                    f"synthetic stand-in for {self.stands_in_for} "
                    "(community graph adjacency vectors with TF-IDF weighting)"
                ),
                metadata=dict(dataset.metadata, stands_in_for=self.stands_in_for),
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")


_REGISTRY: dict[str, DatasetSpec] = {
    "rcv1": DatasetSpec(
        name="rcv1",
        kind="text",
        stands_in_for="RCV1 (Reuters text corpus)",
        params={
            "n_documents": 800,
            "vocabulary_size": 4000,
            "average_length": 50,
            "duplicate_fraction": 0.35,
            "cluster_size": 4,
            "mutation_rate": 0.12,
        },
    ),
    "wikiwords100k": DatasetSpec(
        name="wikiwords100k",
        kind="text",
        stands_in_for="WikiWords100K (long Wikipedia articles)",
        params={
            "n_documents": 600,
            "vocabulary_size": 6000,
            "average_length": 150,
            "duplicate_fraction": 0.35,
            "cluster_size": 4,
            "mutation_rate": 0.1,
        },
    ),
    "wikiwords500k": DatasetSpec(
        name="wikiwords500k",
        kind="text",
        stands_in_for="WikiWords500K (Wikipedia articles, medium length)",
        params={
            "n_documents": 1000,
            "vocabulary_size": 6000,
            "average_length": 90,
            "duplicate_fraction": 0.3,
            "cluster_size": 4,
            "mutation_rate": 0.12,
        },
    ),
    "wikilinks": DatasetSpec(
        name="wikilinks",
        kind="graph",
        stands_in_for="WikiLinks (Wikipedia hyperlink graph)",
        params={
            "n_nodes": 1200,
            "average_degree": 12,
            "n_communities": 40,
            "within_community_fraction": 0.85,
            "degree_exponent": 2.0,
        },
    ),
    "orkut": DatasetSpec(
        name="orkut",
        kind="graph",
        stands_in_for="Orkut (friendship graph)",
        params={
            "n_nodes": 1500,
            "average_degree": 20,
            "n_communities": 50,
            "within_community_fraction": 0.85,
            "degree_exponent": 2.2,
        },
    ),
    "twitter": DatasetSpec(
        name="twitter",
        kind="graph",
        stands_in_for="Twitter (follower graph, high average degree)",
        params={
            "n_nodes": 500,
            "average_degree": 120,
            "n_communities": 15,
            "within_community_fraction": 0.85,
            "degree_exponent": 2.2,
        },
    ),
}

DATASET_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """The generator configuration registered under ``name``."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise ValueError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Build the synthetic stand-in registered under ``name``.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (case-insensitive).
    scale:
        Uniform scale factor on the number of vectors (and vocabulary /
        node count); 1.0 is the default laptop-scale configuration, smaller
        values are used by the test-suite and quick benchmarks.
    seed:
        Random seed; combined with the per-dataset defaults the result is
        fully reproducible.
    """
    return dataset_spec(name).build(scale=scale, seed=seed)
