"""Saving and loading vector collections to ``.npz`` files.

The synthetic generators are fast enough that persistence is rarely needed,
but the benchmark harness caches generated datasets between runs and users
may want to run the library on their own data exported from another system;
the CSR components are stored directly so round-trips are loss-less.

The low-level helpers :func:`collection_arrays` / :func:`collection_from_arrays`
pack a collection into a flat ``name -> array`` mapping (and back) so other
persistence layers — notably the serving snapshots in
:mod:`repro.serving.snapshot` — serialise collections with exactly the same
keys and dtypes as the standalone files written here.

This module also owns the **shared atomic writer**: every on-disk artefact
the library publishes (collection archives, ``.npz`` snapshots, flat-layout
member files and manifests) goes through :func:`atomic_writer` — a temp file
in the destination directory, fully written and fsynced, then renamed over
the target with ``os.replace`` and the directory entry fsynced.  A crash at
any point leaves either the previous file or the new one, never a torn
write.  Temp files created by in-flight writers are tracked in a registry
(:func:`pending_temp_files`) so the test suite's leak audit can prove no
code path abandons one (deliberate leftovers from injected crashes are
exempt — a real crash would not clean up either).
"""

from __future__ import annotations

import os
import zipfile
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection
from repro.testing import faults as _faults
from repro.testing.faults import InjectedCrash

__all__ = [
    "CollectionArchiveError",
    "atomic_writer",
    "collection_arrays",
    "collection_from_arrays",
    "fsync_directory",
    "load_collection",
    "pending_temp_files",
    "save_collection",
]


class CollectionArchiveError(ValueError):
    """A collection archive failed structural verification on load.

    Raised by :func:`load_collection` for every malformed-archive path —
    truncated or bit-flipped zip data, missing members, non-archive files —
    so callers catch one typed error instead of the raw
    ``zipfile``/``zlib``/``KeyError`` zoo.  The offending ``path`` and a
    ``detail`` string are attached.  Subclasses :class:`ValueError` so
    callers catching the historical error type keep working.
    """

    def __init__(self, path, detail: str):
        self.path = Path(path)
        self.detail = str(detail)
        super().__init__(f"corrupt collection archive {self.path}: {self.detail}")


def fsync_directory(directory) -> None:
    """Flush a directory entry so a rename survives power loss (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: temp files of in-flight atomic writers; the test suite audits this after
#: every test to prove no code path abandons a temp file.
_LIVE_TEMPS: set[Path] = set()


def pending_temp_files() -> set[Path]:
    """Temp files registered by writers that have neither committed nor
    cleaned up (a copy; empty unless a writer is mid-flight or leaked)."""
    return set(_LIVE_TEMPS)


@contextmanager
def atomic_writer(path: Path, event: str | None = None):
    """Write ``path`` atomically: temp file + fsync + ``os.replace``.

    Yields a binary file handle open on a temp file in ``path``'s directory.
    On normal exit the temp file is fsynced and renamed over ``path`` (and
    the directory entry fsynced); on error it is removed and the destination
    is never touched.  ``event`` optionally names a fault-injection seam
    fired between the fsync and the rename (``tmp``/``path`` in the info
    dict) — the window crash-safety tests target.  An
    :class:`~repro.testing.faults.InjectedCrash` escaping that seam
    deliberately leaves the temp file behind, exactly like a real crash.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    _LIVE_TEMPS.add(tmp)
    try:
        with open(tmp, "wb") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        if event is not None:
            _faults.fire(event, tmp=tmp, path=path)
        os.replace(tmp, path)
        fsync_directory(path.parent)
    except InjectedCrash:
        # A real crash would not clean its temp file up either; the leftover
        # is intentional, not a leak, so the registry drops it.
        _LIVE_TEMPS.discard(tmp)
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        _LIVE_TEMPS.discard(tmp)
        raise
    _LIVE_TEMPS.discard(tmp)


def collection_arrays(collection: VectorCollection, prefix: str = "") -> dict[str, np.ndarray]:
    """Pack a collection's CSR components into ``{prefix+name: array}``."""
    matrix = collection.matrix
    return {
        f"{prefix}data": matrix.data,
        f"{prefix}indices": matrix.indices,
        f"{prefix}indptr": matrix.indptr,
        f"{prefix}shape": np.asarray(matrix.shape, dtype=np.int64),
        f"{prefix}ids": collection.ids,
    }


def collection_from_arrays(
    arrays: Mapping[str, np.ndarray], prefix: str = "", trusted: bool = False
) -> VectorCollection:
    """Rebuild a collection from arrays packed by :func:`collection_arrays`.

    With ``trusted=True`` the CSR components are adopted as-is through
    :meth:`VectorCollection.restored` — no re-canonicalisation, no copies —
    which is what lets snapshot loads keep memory-mapped components lazy.
    Only pass it for arrays this module's writers produced (they are already
    canonical); untrusted input must go through the validating constructor.
    """
    components = (
        arrays[f"{prefix}data"],
        arrays[f"{prefix}indices"],
        arrays[f"{prefix}indptr"],
    )
    shape = tuple(int(n) for n in arrays[f"{prefix}shape"])
    if trusted:
        return VectorCollection.restored(components, shape, ids=arrays[f"{prefix}ids"])
    return VectorCollection(
        sp.csr_matrix(components, shape=shape), ids=arrays[f"{prefix}ids"]
    )


def save_collection(collection: VectorCollection, path: str | Path) -> Path:
    """Save a collection to ``path`` (``.npz`` appended if missing), atomically.

    The archive goes through :func:`atomic_writer`, so a crash mid-save
    leaves either the previous file or the new one — never a torn archive
    that :func:`load_collection` would have to reject.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with atomic_writer(path, event="snapshot_replace") as handle:
        np.savez_compressed(handle, **collection_arrays(collection))
    return path


def load_collection(path: str | Path) -> VectorCollection:
    """Load a collection previously written by :func:`save_collection`.

    Any malformed archive — truncated or bit-flipped zip data, missing
    members, a non-archive file — raises :class:`CollectionArchiveError`
    naming the path; wrong data is never returned silently.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: np.asarray(archive[name]) for name in archive.files}
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, ValueError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise CollectionArchiveError(path, f"unreadable archive ({exc})") from exc
    try:
        return collection_from_arrays(arrays)
    except KeyError as exc:
        raise CollectionArchiveError(path, f"missing member ({exc})") from exc
