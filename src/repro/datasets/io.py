"""Saving and loading vector collections to ``.npz`` files.

The synthetic generators are fast enough that persistence is rarely needed,
but the benchmark harness caches generated datasets between runs and users
may want to run the library on their own data exported from another system;
the CSR components are stored directly so round-trips are loss-less.

The low-level helpers :func:`collection_arrays` / :func:`collection_from_arrays`
pack a collection into a flat ``name -> array`` mapping (and back) so other
persistence layers — notably the serving snapshots in
:mod:`repro.serving.snapshot` — serialise collections with exactly the same
keys and dtypes as the standalone files written here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection

__all__ = [
    "collection_arrays",
    "collection_from_arrays",
    "save_collection",
    "load_collection",
]


def collection_arrays(collection: VectorCollection, prefix: str = "") -> dict[str, np.ndarray]:
    """Pack a collection's CSR components into ``{prefix+name: array}``."""
    matrix = collection.matrix
    return {
        f"{prefix}data": matrix.data,
        f"{prefix}indices": matrix.indices,
        f"{prefix}indptr": matrix.indptr,
        f"{prefix}shape": np.asarray(matrix.shape, dtype=np.int64),
        f"{prefix}ids": collection.ids,
    }


def collection_from_arrays(
    arrays: Mapping[str, np.ndarray], prefix: str = ""
) -> VectorCollection:
    """Rebuild a collection from arrays packed by :func:`collection_arrays`."""
    matrix = sp.csr_matrix(
        (
            arrays[f"{prefix}data"],
            arrays[f"{prefix}indices"],
            arrays[f"{prefix}indptr"],
        ),
        shape=tuple(arrays[f"{prefix}shape"]),
    )
    return VectorCollection(matrix, ids=arrays[f"{prefix}ids"])


def save_collection(collection: VectorCollection, path: str | Path) -> Path:
    """Save a collection to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(path, **collection_arrays(collection))
    return path


def load_collection(path: str | Path) -> VectorCollection:
    """Load a collection previously written by :func:`save_collection`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        return collection_from_arrays(archive)
