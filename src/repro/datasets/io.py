"""Saving and loading vector collections to ``.npz`` files.

The synthetic generators are fast enough that persistence is rarely needed,
but the benchmark harness caches generated datasets between runs and users
may want to run the library on their own data exported from another system;
the CSR components are stored directly so round-trips are loss-less.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.similarity.vectors import VectorCollection

__all__ = ["save_collection", "load_collection"]


def save_collection(collection: VectorCollection, path: str | Path) -> Path:
    """Save a collection to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    matrix = collection.matrix
    np.savez_compressed(
        path,
        data=matrix.data,
        indices=matrix.indices,
        indptr=matrix.indptr,
        shape=np.asarray(matrix.shape, dtype=np.int64),
        ids=collection.ids,
    )
    return path


def load_collection(path: str | Path) -> VectorCollection:
    """Load a collection previously written by :func:`save_collection`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        matrix = sp.csr_matrix(
            (archive["data"], archive["indices"], archive["indptr"]),
            shape=tuple(archive["shape"]),
        )
        ids = archive["ids"]
    return VectorCollection(matrix, ids=ids)
