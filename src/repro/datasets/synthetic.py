"""Synthetic dataset generators mirroring the paper's corpora.

Two generators cover the two families of datasets in the evaluation:

* :func:`synthetic_text_corpus` — a bag-of-words corpus with Zipf-distributed
  term frequencies, log-normal document lengths and *planted near-duplicate
  clusters* (groups of documents derived from a common template with token
  swaps), mimicking RCV1 and the WikiWords corpora.  The planted clusters
  guarantee that thresholds as high as 0.9 still have true positives, just as
  real text corpora contain near-duplicates.
* :func:`synthetic_graph` — adjacency vectors of a graph with community
  structure and a heavy-tailed degree distribution, mimicking WikiLinks,
  Orkut and Twitter.  Nodes in the same community draw most of their
  neighbours from a shared pool, so their adjacency vectors are similar — the
  property link-prediction and friendship-recommendation workloads rely on.

Both generators return *raw counts*; apply
:func:`repro.similarity.transforms.tfidf_weighting` for the weighted
experiments (the registry does this) or binarise for the set experiments.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.datasets.base import Dataset
from repro.similarity.vectors import VectorCollection

__all__ = ["synthetic_text_corpus", "synthetic_graph"]


def _zipf_weights(vocabulary_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _sample_document(
    rng: np.random.Generator,
    length: int,
    token_probabilities: np.ndarray,
) -> dict[int, float]:
    """One document as a ``{token: count}`` mapping."""
    if length <= 0:
        return {}
    tokens = rng.choice(len(token_probabilities), size=length, p=token_probabilities)
    unique, counts = np.unique(tokens, return_counts=True)
    return {int(t): float(c) for t, c in zip(unique, counts)}


def _perturb_document(
    rng: np.random.Generator,
    document: dict[int, float],
    token_probabilities: np.ndarray,
    mutation_rate: float,
) -> dict[int, float]:
    """A near-duplicate of ``document``: a fraction of tokens swapped for fresh ones."""
    result = dict(document)
    tokens = list(result.keys())
    n_mutations = int(round(mutation_rate * len(tokens)))
    if n_mutations == 0:
        return result
    removed = rng.choice(len(tokens), size=min(n_mutations, len(tokens)), replace=False)
    for index in removed:
        result.pop(tokens[int(index)], None)
    replacement_tokens = rng.choice(
        len(token_probabilities), size=n_mutations, p=token_probabilities
    )
    for token in replacement_tokens:
        result[int(token)] = result.get(int(token), 0.0) + 1.0
    return result


def synthetic_text_corpus(
    n_documents: int = 1000,
    vocabulary_size: int = 5000,
    average_length: int = 60,
    zipf_exponent: float = 1.05,
    duplicate_fraction: float = 0.3,
    cluster_size: int = 4,
    mutation_rate: float = 0.1,
    seed: int = 0,
    name: str = "synthetic-text",
) -> Dataset:
    """A Zipf bag-of-words corpus with planted near-duplicate clusters.

    Parameters
    ----------
    n_documents:
        Total number of documents.
    vocabulary_size:
        Number of distinct tokens.
    average_length:
        Mean number of token occurrences per document (lengths are
        log-normally distributed around this mean, as in real corpora).
    zipf_exponent:
        Exponent of the Zipf token-frequency distribution.
    duplicate_fraction:
        Fraction of the corpus that belongs to near-duplicate clusters.
    cluster_size:
        Number of documents per near-duplicate cluster.
    mutation_rate:
        Fraction of a template's tokens replaced when deriving each cluster
        member; smaller values produce higher intra-cluster similarity.
    seed:
        Random seed; corpora are fully reproducible.
    name:
        Dataset name used in reports.
    """
    if n_documents <= 0 or vocabulary_size <= 0:
        raise ValueError("n_documents and vocabulary_size must be positive")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError(f"duplicate_fraction must lie in [0, 1], got {duplicate_fraction}")
    if cluster_size < 2:
        raise ValueError(f"cluster_size must be at least 2, got {cluster_size}")
    rng = np.random.default_rng(seed)
    token_probabilities = _zipf_weights(vocabulary_size, zipf_exponent)

    n_clustered = int(round(duplicate_fraction * n_documents))
    n_clusters = n_clustered // cluster_size
    n_clustered = n_clusters * cluster_size
    n_background = n_documents - n_clustered

    # Log-normal lengths calibrated so that the mean is ``average_length``.
    sigma = 0.6
    mu = np.log(average_length) - 0.5 * sigma**2

    documents: list[dict[int, float]] = []
    cluster_labels = np.full(n_documents, -1, dtype=np.int64)

    for _ in range(n_background):
        length = max(1, int(rng.lognormal(mu, sigma)))
        documents.append(_sample_document(rng, length, token_probabilities))

    for cluster_index in range(n_clusters):
        length = max(4, int(rng.lognormal(mu, sigma)))
        template = _sample_document(rng, length, token_probabilities)
        for _ in range(cluster_size):
            cluster_labels[len(documents)] = cluster_index
            documents.append(
                _perturb_document(rng, template, token_probabilities, mutation_rate)
            )

    collection = VectorCollection.from_dicts(documents, n_features=vocabulary_size)
    return Dataset(
        collection,
        name=name,
        description="synthetic Zipf bag-of-words corpus with planted near-duplicate clusters",
        metadata={
            "kind": "text",
            "seed": seed,
            "zipf_exponent": zipf_exponent,
            "duplicate_fraction": duplicate_fraction,
            "cluster_size": cluster_size,
            "mutation_rate": mutation_rate,
            "cluster_labels": cluster_labels,
        },
    )


def synthetic_graph(
    n_nodes: int = 1000,
    average_degree: int = 20,
    n_communities: int = 25,
    within_community_fraction: float = 0.8,
    degree_exponent: float = 2.0,
    seed: int = 0,
    name: str = "synthetic-graph",
) -> Dataset:
    """Adjacency vectors of a community-structured graph with heavy-tailed degrees.

    Each node's row is the (binary count) vector of its out-neighbours.  Nodes
    in the same community draw ``within_community_fraction`` of their
    neighbours from a shared community-specific pool of popular targets, so
    same-community nodes have similar rows — this mirrors the WikiLinks /
    Orkut / Twitter datasets, where similarity search finds nodes with
    overlapping neighbourhoods.

    Parameters
    ----------
    n_nodes:
        Number of nodes (rows); the feature space is also ``n_nodes`` wide,
        as in the paper's graph datasets.
    average_degree:
        Mean out-degree; individual degrees follow a truncated power law with
        exponent ``degree_exponent``.
    n_communities:
        Number of planted communities.
    within_community_fraction:
        Fraction of each node's edges that point inside its community pool.
    degree_exponent:
        Power-law exponent of the degree distribution (2.0-2.5 matches social
        graphs).
    seed, name:
        Reproducibility seed and report name.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if n_communities <= 0 or n_communities > n_nodes:
        raise ValueError(
            f"n_communities must lie in [1, n_nodes], got {n_communities} for {n_nodes} nodes"
        )
    if not 0.0 <= within_community_fraction <= 1.0:
        raise ValueError(
            f"within_community_fraction must lie in [0, 1], got {within_community_fraction}"
        )
    rng = np.random.default_rng(seed)
    communities = rng.integers(0, n_communities, size=n_nodes)

    # Heavy-tailed degrees: Pareto with the requested mean, clipped to [2, n_nodes/4].
    raw = (rng.pareto(degree_exponent, size=n_nodes) + 1.0)
    degrees = np.clip(raw / raw.mean() * average_degree, 2, max(4, n_nodes // 4)).astype(int)

    # Popularity of target nodes (preferential attachment flavour).
    popularity = _zipf_weights(n_nodes, 1.0)
    permuted = rng.permutation(n_nodes)
    popularity = popularity[np.argsort(permuted)]  # shuffle which nodes are popular

    # Per-community target pools: popular nodes of that community.
    community_members: list[np.ndarray] = [
        np.flatnonzero(communities == c) for c in range(n_communities)
    ]

    rows: list[int] = []
    cols: list[int] = []
    for node in range(n_nodes):
        degree = int(degrees[node])
        community = int(communities[node])
        members = community_members[community]
        n_within = int(round(within_community_fraction * degree))
        n_within = min(n_within, len(members))
        targets: list[int] = []
        if n_within > 0 and len(members) > 0:
            member_popularity = popularity[members]
            member_popularity = member_popularity / member_popularity.sum()
            chosen = rng.choice(
                members, size=n_within, replace=False, p=member_popularity
            ) if n_within < len(members) else members
            targets.extend(int(t) for t in np.atleast_1d(chosen))
        n_global = degree - len(targets)
        if n_global > 0:
            chosen = rng.choice(n_nodes, size=n_global, replace=False, p=popularity)
            targets.extend(int(t) for t in np.atleast_1d(chosen))
        for target in set(targets):
            if target != node:
                rows.append(node)
                cols.append(target)

    matrix = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
    )
    return Dataset(
        VectorCollection(matrix),
        name=name,
        description="synthetic community graph; rows are adjacency vectors",
        metadata={
            "kind": "graph",
            "seed": seed,
            "n_communities": n_communities,
            "within_community_fraction": within_community_fraction,
            "degree_exponent": degree_exponent,
            "communities": communities,
        },
    )
