"""Datasets: the :class:`Dataset` container, synthetic generators and the registry.

The paper evaluates on six real corpora (RCV1, two Wikipedia text corpora,
the Wikipedia link graph, Orkut and Twitter follower graphs) totalling
hundreds of millions of non-zeros.  Those corpora are not redistributable
and far exceed a laptop-scale reproduction, so this package provides
synthetic generators that reproduce the *relevant characteristics* of each:
Zipf-distributed feature frequencies, TF-IDF weighting, matched
average-length / length-variance regimes, and planted groups of similar
vectors so that every threshold in the evaluation has true positives.

``registry.load_dataset("rcv1")`` and friends return scaled-down synthetic
stand-ins configured to mirror each paper dataset's shape (see
``registry.PAPER_STATISTICS`` for the original numbers reported in Table 1).
"""

from repro.datasets.base import Dataset
from repro.datasets.synthetic import synthetic_text_corpus, synthetic_graph
from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    dataset_spec,
    load_dataset,
)
from repro.datasets.io import save_collection, load_collection

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "PAPER_STATISTICS",
    "dataset_spec",
    "load_collection",
    "load_dataset",
    "save_collection",
    "synthetic_graph",
    "synthetic_text_corpus",
]
