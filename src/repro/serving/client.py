"""Synchronous client for the resident serving daemon.

:class:`DaemonClient` speaks the JSON-lines protocol of
:class:`~repro.serving.daemon.ServingDaemon` over a unix-domain socket:
one request object per line out, one response object per line back.
Failures the daemon reports are re-raised as the daemon's typed errors
(:class:`~repro.serving.daemon.Overloaded`,
:class:`~repro.serving.daemon.DeadlineExceeded`,
:class:`~repro.serving.daemon.Draining`) so callers can branch on
exception type instead of parsing messages.

Transient transport failures — refused connects while the daemon is
(re)starting, resets and broken pipes when it is killed mid-exchange —
are retried with capped exponential backoff plus jitter, reconnecting
each time.  Retrying is always safe here: queries are read-only, and
every mutating request carries an ``idempotency_key`` (generated once
per logical call, resent verbatim on each retry) that the daemon uses
to apply the mutation at most once.  When the retry budget runs out the
client raises the typed :class:`RetriesExhausted`, chaining the last
transport error.

The client is deliberately small and dependency-free: one socket, one
buffered reader, blocking calls.  Drive concurrency by giving each thread
its own client — the daemon coalesces across connections, not within one.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid

from repro.serving.daemon import (
    DaemonError,
    DeadlineExceeded,
    Draining,
    Overloaded,
    encode_vector,
)

__all__ = ["DaemonClient", "RetriesExhausted"]

_ERRORS = {
    "overloaded": Overloaded,
    "deadline": DeadlineExceeded,
    "draining": Draining,
}

# Transport errors worth retrying: the daemon was unreachable or the
# connection died.  Socket *timeouts* are deliberately excluded — a
# timeout is the caller's transport guard firing, not a signal that
# reconnecting would help.
_TRANSIENT = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    FileNotFoundError,
)


class RetriesExhausted(DaemonError):
    """Every transport retry failed; the daemon stayed unreachable.

    Raised after the configured attempt budget is spent on transient
    connect/reset errors.  The final underlying error is chained as
    ``__cause__``.  Mutations carry idempotency keys, so a request that
    *did* reach the daemon before the connection died was applied at
    most once regardless of how many retries followed.
    """


class DaemonClient:
    """Blocking unix-socket client for :class:`ServingDaemon`.

    Parameters
    ----------
    socket_path:
        The daemon's unix-domain socket path.
    timeout:
        Socket timeout in seconds for connect and each round trip
        (``None`` blocks forever).  This is a transport guard, distinct
        from the daemon-enforced per-request ``deadline_ms``.
    retries:
        How many times a transient transport failure (refused connect,
        reset, broken pipe) is retried before :class:`RetriesExhausted`;
        ``0`` disables retrying.
    backoff_ms / backoff_cap_ms:
        Exponential backoff schedule between retries: attempt *n* sleeps
        ``min(backoff_ms * 2**(n-1), backoff_cap_ms)`` milliseconds,
        jittered to a uniform fraction in [0.5, 1.0] of that bound so
        synchronised clients do not reconnect in lockstep.

    The last full response object is kept on :attr:`last_response` so
    callers can inspect fields beyond the result — most usefully the
    ``degraded`` flag set when the daemon shed an exact ranking request
    to estimate ranking under load.  :attr:`retry_stats` counts the
    transport retries and reconnects this client has performed.
    """

    def __init__(
        self,
        socket_path,
        timeout: float | None = 30.0,
        retries: int = 4,
        backoff_ms: float = 20.0,
        backoff_cap_ms: float = 500.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self._socket_path = str(socket_path)
        self._timeout = timeout
        self._retries = int(retries)
        self._backoff = float(backoff_ms) / 1000.0
        self._backoff_cap = float(backoff_cap_ms) / 1000.0
        self._socket: socket.socket | None = None
        self._reader = None
        self.last_response: dict | None = None
        self.retry_stats = {"retries": 0, "reconnects": 0}
        self._with_retries(self._connect)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        """(Re)connect the socket; transient failures propagate to _call."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self._socket_path)
        except BaseException:
            sock.close()
            raise
        self._socket = sock
        self._reader = sock.makefile("rb")

    def _disconnect(self) -> None:
        """Drop the current connection so the next call reconnects."""
        if self._reader is not None:
            try:
                self._reader.close()
            except Exception:
                pass
            self._reader = None
        if self._socket is not None:
            try:
                self._socket.close()
            except Exception:
                pass
            self._socket = None

    def _call(self, request: dict) -> dict:
        """One request/response exchange with transparent retry.

        Transient transport errors reconnect and resend the *same*
        request object (idempotency keys included) under the backoff
        schedule; daemon-reported failures are raised as typed errors
        without retrying — the daemon answered, so the transport is fine
        and the rejection (overloaded, draining, bad request) is the
        caller's to handle.
        """
        payload = json.dumps(request).encode() + b"\n"
        return self._with_retries(lambda: self._exchange(payload))

    def _with_retries(self, fn):
        """Run ``fn`` under the transient-error retry/backoff schedule."""
        attempt = 0
        while True:
            try:
                return fn()
            except _TRANSIENT as exc:
                self._disconnect()
                attempt += 1
                if attempt > self._retries:
                    raise RetriesExhausted(
                        f"daemon unreachable after {attempt} attempt(s): {exc}"
                    ) from exc
                self.retry_stats["retries"] += 1
                bound = min(self._backoff * 2 ** (attempt - 1), self._backoff_cap)
                time.sleep(bound * (0.5 + random.random() / 2.0))

    def _exchange(self, payload: bytes) -> dict:
        """Send one encoded line, read one response line, raise typed errors."""
        if self._socket is None:
            self._connect()
            self.retry_stats["reconnects"] += 1
        self._socket.sendall(payload)
        line = self._reader.readline()
        if not line:
            raise ConnectionResetError("connection closed by daemon")
        response = json.loads(line)
        self.last_response = response
        if not response.get("ok", False) and "error" in response:
            error_cls = _ERRORS.get(response["error"], DaemonError)
            raise error_cls(response.get("message", response["error"]))
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._disconnect()

    def __enter__(self) -> "DaemonClient":
        """Context-manager entry: returns the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, vector, threshold=None, deadline_ms=None):
        """All-pairs matches for one vector: ``[[row, similarity], ...]``.

        Bit-identical to ``QueryIndex.query`` on the same vector.  Raises
        :class:`Overloaded`, :class:`DeadlineExceeded` or :class:`Draining`
        when the daemon rejects or misses the request.
        """
        request = {"op": "query", "vector": encode_vector(vector)}
        if threshold is not None:
            request["threshold"] = float(threshold)
        if deadline_ms is not None:
            request["deadline_ms"] = float(deadline_ms)
        return self._call(request)["result"]

    def top_k(
        self,
        vector,
        k: int = 10,
        floor_threshold: float = 0.1,
        rank_by: str = "exact",
        deadline_ms=None,
    ):
        """Top-k neighbours for one vector: ``[[row, similarity], ...]``.

        Mirrors ``QueryIndex.top_k``; under daemon load the request may be
        shed from exact to estimate ranking, flagged by
        ``last_response["degraded"]``.
        """
        request = {
            "op": "top_k",
            "vector": encode_vector(vector),
            "k": int(k),
            "floor_threshold": float(floor_threshold),
            "rank_by": rank_by,
        }
        if deadline_ms is not None:
            request["deadline_ms"] = float(deadline_ms)
        return self._call(request)["result"]

    # ------------------------------------------------------------------ #
    # durable ingest
    # ------------------------------------------------------------------ #
    def insert(self, vectors, ids=None) -> list:
        """Insert a batch of vectors; returns their assigned row indices.

        ``vectors`` is any iterable of single vectors
        :func:`~repro.serving.daemon.encode_vector` accepts (a list of
        dense rows / token sets / 1-row sparse matrices, a 2-D array, or
        a sparse matrix — both iterate row-wise).  ``ids`` optionally
        assigns external identifiers, exactly as ``QueryIndex.insert``.

        The request carries a fresh ``idempotency_key``, so transport
        retries (daemon restarting, connection reset mid-ack) apply the
        batch at most once.
        """
        request: dict = {
            "op": "insert",
            "vectors": [encode_vector(v) for v in vectors],
            "idempotency_key": uuid.uuid4().hex,
        }
        if ids is not None:
            request["ids"] = [int(i) for i in ids]
        return self._call(request)["rows"]

    def delete(self, rows) -> int:
        """Tombstone indexed rows; returns how many were live.

        Mirrors ``QueryIndex.delete`` (idempotent per row).  Carries an
        ``idempotency_key`` so a retried delete is applied at most once —
        the returned live-count is the first execution's, replayed from
        the daemon's response cache on retry.
        """
        request = {
            "op": "delete",
            "rows": [int(r) for r in rows],
            "idempotency_key": uuid.uuid4().hex,
        }
        return self._call(request)["deleted"]

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Liveness probe: serving/draining/replaying flags.

        ``serving`` is false while the daemon drains *or* while a WAL
        replay is still recovering the index.
        """
        return self._call({"op": "health"})

    def ready(self) -> dict:
        """Readiness probe: ok iff the batcher accepts work and no replay runs."""
        return self._call({"op": "ready"})

    def stats(self) -> dict:
        """The daemon's counters, config, pool health and durability block."""
        return self._call({"op": "stats"})["stats"]

    def wal_stats(self) -> dict | None:
        """The served index's write-ahead-log stats (``None`` if no WAL)."""
        return self._call({"op": "wal_stats"})["wal"]

    def snapshot(self, layout: str | None = None) -> str:
        """Trigger a crash-safe snapshot; returns the snapshot path.

        ``layout`` optionally picks the on-disk layout (``"npz"`` or
        ``"flat"``); ``None`` leaves the choice to the daemon's snapshot
        store (the ``REPRO_STORAGE`` environment default).
        """
        request: dict = {"op": "snapshot"}
        if layout is not None:
            request["layout"] = layout
        return self._call(request)["path"]

    def checkpoint(self, layout: str | None = None) -> dict:
        """Snapshot + seal-and-prune the WAL; returns ``{"path", "wal"}``.

        Requires a WAL-attached index and a configured snapshot store.
        The returned ``wal`` dict is the post-checkpoint view — segments
        older than every retained snapshot are already pruned.
        """
        request: dict = {"op": "checkpoint"}
        if layout is not None:
            request["layout"] = layout
        response = self._call(request)
        return {"path": response["path"], "wal": response["wal"]}

    def drain(self) -> dict:
        """Graceful shutdown: finish admitted work, then stop the daemon.

        New requests are rejected with :class:`Draining` from the moment
        this is called; the call returns once every admitted request has
        been answered and the daemon has begun shutting down.
        """
        return self._call({"op": "drain"})
