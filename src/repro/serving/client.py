"""Synchronous client for the resident serving daemon.

:class:`DaemonClient` speaks the JSON-lines protocol of
:class:`~repro.serving.daemon.ServingDaemon` over a unix-domain socket:
one request object per line out, one response object per line back.
Failures the daemon reports are re-raised as the daemon's typed errors
(:class:`~repro.serving.daemon.Overloaded`,
:class:`~repro.serving.daemon.DeadlineExceeded`,
:class:`~repro.serving.daemon.Draining`) so callers can branch on
exception type instead of parsing messages.

The client is deliberately small and dependency-free: one socket, one
buffered reader, blocking calls.  Drive concurrency by giving each thread
its own client — the daemon coalesces across connections, not within one.
"""

from __future__ import annotations

import json
import socket

from repro.serving.daemon import (
    DaemonError,
    DeadlineExceeded,
    Draining,
    Overloaded,
    encode_vector,
)

__all__ = ["DaemonClient"]

_ERRORS = {
    "overloaded": Overloaded,
    "deadline": DeadlineExceeded,
    "draining": Draining,
}


class DaemonClient:
    """Blocking unix-socket client for :class:`ServingDaemon`.

    Parameters
    ----------
    socket_path:
        The daemon's unix-domain socket path.
    timeout:
        Socket timeout in seconds for connect and each round trip
        (``None`` blocks forever).  This is a transport guard, distinct
        from the daemon-enforced per-request ``deadline_ms``.

    The last full response object is kept on :attr:`last_response` so
    callers can inspect fields beyond the result — most usefully the
    ``degraded`` flag set when the daemon shed an exact ranking request
    to estimate ranking under load.
    """

    def __init__(self, socket_path, timeout: float | None = 30.0):
        self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._socket.settimeout(timeout)
        self._socket.connect(str(socket_path))
        self._reader = self._socket.makefile("rb")
        self.last_response: dict | None = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _call(self, request: dict) -> dict:
        """One request/response round trip; raises typed daemon errors."""
        self._socket.sendall(json.dumps(request).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            raise DaemonError("connection closed by daemon")
        response = json.loads(line)
        self.last_response = response
        if not response.get("ok", False) and "error" in response:
            error_cls = _ERRORS.get(response["error"], DaemonError)
            raise error_cls(response.get("message", response["error"]))
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except Exception:
            pass
        try:
            self._socket.close()
        except Exception:
            pass

    def __enter__(self) -> "DaemonClient":
        """Context-manager entry: returns the connected client."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, vector, threshold=None, deadline_ms=None):
        """All-pairs matches for one vector: ``[[row, similarity], ...]``.

        Bit-identical to ``QueryIndex.query`` on the same vector.  Raises
        :class:`Overloaded`, :class:`DeadlineExceeded` or :class:`Draining`
        when the daemon rejects or misses the request.
        """
        request = {"op": "query", "vector": encode_vector(vector)}
        if threshold is not None:
            request["threshold"] = float(threshold)
        if deadline_ms is not None:
            request["deadline_ms"] = float(deadline_ms)
        return self._call(request)["result"]

    def top_k(
        self,
        vector,
        k: int = 10,
        floor_threshold: float = 0.1,
        rank_by: str = "exact",
        deadline_ms=None,
    ):
        """Top-k neighbours for one vector: ``[[row, similarity], ...]``.

        Mirrors ``QueryIndex.top_k``; under daemon load the request may be
        shed from exact to estimate ranking, flagged by
        ``last_response["degraded"]``.
        """
        request = {
            "op": "top_k",
            "vector": encode_vector(vector),
            "k": int(k),
            "floor_threshold": float(floor_threshold),
            "rank_by": rank_by,
        }
        if deadline_ms is not None:
            request["deadline_ms"] = float(deadline_ms)
        return self._call(request)["result"]

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Liveness probe: ``{"ok": true, "serving": ..., "draining": ...}``."""
        return self._call({"op": "health"})

    def ready(self) -> dict:
        """Readiness probe: ok iff the batcher is accepting work."""
        return self._call({"op": "ready"})

    def stats(self) -> dict:
        """The daemon's serving counters, config and pool health dict."""
        return self._call({"op": "stats"})["stats"]

    def snapshot(self, layout: str | None = None) -> str:
        """Trigger a crash-safe snapshot; returns the snapshot path.

        ``layout`` optionally picks the on-disk layout (``"npz"`` or
        ``"flat"``); ``None`` leaves the choice to the daemon's snapshot
        store (the ``REPRO_STORAGE`` environment default).
        """
        request: dict = {"op": "snapshot"}
        if layout is not None:
            request["layout"] = layout
        return self._call(request)["path"]

    def drain(self) -> dict:
        """Graceful shutdown: finish admitted work, then stop the daemon.

        New requests are rejected with :class:`Draining` from the moment
        this is called; the call returns once every admitted request has
        been answered and the daemon has begun shutting down.
        """
        return self._call({"op": "drain"})
