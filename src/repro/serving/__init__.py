"""Serving-layer persistence for query indices.

The serving subsystem turns the in-memory :class:`~repro.search.query.QueryIndex`
into something a long-running process can operate: versioned on-disk
snapshots (:mod:`repro.serving.snapshot`) plus the incremental
``insert``/``delete`` and batched ``query_many``/``top_k_many`` entry points
on the index itself.
"""

from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_query_index,
    save_query_index,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "load_query_index",
    "save_query_index",
]
