"""Serving-layer storage and persistence for query indices.

The serving subsystem turns the in-memory :class:`~repro.search.query.QueryIndex`
into something a long-running process can operate:

* **segmented collection storage** (:mod:`repro.serving.segments`) — the
  corpus is an append-only sequence of sealed segments, so incremental
  ``insert`` costs O(batch) instead of an O(N) re-concatenation, while every
  query kernel routes global rows segment-wise with bit-identical results;
* **versioned snapshots** (:mod:`repro.serving.snapshot`) — pickle-free
  archives that round-trip the whole index including the hash family's RNG
  stream position, with optional compaction (merge segments, drop
  tombstoned rows) at save time.  Two on-disk layouts carry the same state:
  the compressed ``.npz`` archive and the **flat layout**
  (:mod:`repro.serving.storage`), a directory of raw array files plus a
  CRC-manifested header that loads either into RAM or as read-only memory
  maps (``storage="mmap"``) for out-of-core serving and millisecond cold
  starts.  Writes are atomic (temp file + fsync + rename; the flat layout
  commits through its manifest) and every array member is
  CRC32-checksummed; malformed archives raise
  :class:`~repro.serving.snapshot.SnapshotCorruptError` instead of loading
  wrong data, and :class:`~repro.serving.snapshot.SnapshotStore` adds a
  rolling directory with a ``LATEST`` pointer and load-time rollback past
  corrupt files;
* **resident daemon** (:mod:`repro.serving.daemon` /
  :mod:`repro.serving.client`) — a unix-socket server that coalesces
  concurrent single-query requests into batched index calls under a
  latency window, with bounded-queue admission control (typed
  :class:`~repro.serving.daemon.Overloaded` rejection), per-request
  deadlines propagated into ``round_timeout``, exact→estimate shedding
  under pressure, and health/readiness/stats/snapshot/drain ops endpoints;
* **durable ingest** (:mod:`repro.serving.wal`) — a write-ahead log of
  CRC-framed insert/delete records appended under the index's update lock
  before each mutation, so a crash between snapshots loses nothing: a
  restart replays the tail on top of the latest snapshot bit-identically.
  Checkpoints (snapshot + segment roll) bound replay; the daemon speaks
  the same log through ``insert``/``delete``/``checkpoint``/``wal_stats``
  ops, and :class:`~repro.serving.client.DaemonClient` retries transient
  transport failures with idempotency-keyed (at-most-once) mutations,
  raising :class:`~repro.serving.client.RetriesExhausted` past the budget.

See ``docs/serving.md`` for the operational guide (snapshot format and
version history, staleness budget, compaction semantics, the batched-query
API, the estimate-vs-exact top-k trade-off, the operational-robustness
contract, and the daemon runbook).
"""

from repro.serving.client import DaemonClient, RetriesExhausted
from repro.serving.daemon import (
    DaemonError,
    DeadlineExceeded,
    Draining,
    Overloaded,
    ServingDaemon,
)
from repro.serving.segments import CollectionSegment, SegmentedCollection
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotCorruptError,
    SnapshotStore,
    load_query_index,
    save_query_index,
)
from repro.serving.storage import (
    FLAT_FORMAT,
    FLAT_VERSION,
    STORAGE_ENV,
    default_layout,
    default_storage,
    is_flat_snapshot,
    read_flat,
    write_flat,
)
from repro.serving.wal import WriteAheadLog

__all__ = [
    "CollectionSegment",
    "DaemonClient",
    "DaemonError",
    "DeadlineExceeded",
    "Draining",
    "FLAT_FORMAT",
    "FLAT_VERSION",
    "Overloaded",
    "RetriesExhausted",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "STORAGE_ENV",
    "SegmentedCollection",
    "ServingDaemon",
    "SnapshotCorruptError",
    "SnapshotStore",
    "WriteAheadLog",
    "default_layout",
    "default_storage",
    "is_flat_snapshot",
    "load_query_index",
    "read_flat",
    "save_query_index",
    "write_flat",
]
