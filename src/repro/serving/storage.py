"""Flat on-disk snapshot layout with RAM and mmap storage backends.

The ``.npz`` snapshot format (:mod:`repro.serving.snapshot`) deserialises
the whole index into RAM: every array is decompressed and copied before the
first query can run, so cold start is O(corpus) and corpus size is bounded
by memory.  This module adds the **flat layout** — the same logical payload
written as one raw binary file per array plus a CRC-manifested JSON header —
and the **storage backend seam** that decides how those files come back:

``storage="ram"``
    Every member file is read into memory and verified against its CRC32,
    exactly like the ``.npz`` audit.  Bit-identical to an ``.npz`` load.
``storage="mmap"``
    Member files are opened as read-only ``np.memmap`` views: the load
    touches only the manifest and each file's size, and array pages fault
    in lazily as the serving kernels slice them (the chunk-map reads the
    executor already does).  Cold start becomes milliseconds, and corpus
    size is bounded by address space, not RAM.  Integrity on this path is
    structural — manifest self-CRC plus exact per-file size checks — since
    hashing every data byte would fault the whole corpus in and forfeit the
    lazy load (run a ``storage="ram"`` load when full verification of the
    data bytes is required).

On-disk layout (a *directory*)::

    index.flat/
      MANIFEST.json            # the atomic commit point
      deleted.g3.bin           # one raw C-order file per array, stamped
      seg0_store.g3.bin        # with the generation that wrote it
      ...

``MANIFEST.json`` is two sections in one file: a first line of header JSON
(format magic, flat-layout version, CRC32 and size of the payload section)
followed by the payload JSON (snapshot version, generation, the same
``meta`` document the ``.npz`` format stores — including its per-array
``checksums`` manifest — and the member table mapping each array to its
file, dtype, shape and byte size).  A bit flip anywhere in the manifest
breaks the header parse, the magic, or the payload CRC; a bit flip in the
header's own CRC field breaks the comparison — the manifest is
self-validating, and every such failure raises
:class:`~repro.serving.snapshot.SnapshotCorruptError` naming the path.

Crash safety mirrors the ``.npz`` writer, adapted to a multi-file layout
where no single ``os.replace`` can swap a directory: data files are written
first (each atomically, under a fresh generation stamp so an interrupted
writer can never tear the files a *previous* manifest references), the
directory is fsynced, and then the manifest is replaced atomically — the
single commit point, carrying the ``flat_replace`` fault seam in its
write→rename window.  A crash anywhere before the manifest rename leaves
the previous generation fully intact and loadable; stale generations are
garbage-collected only after a successful commit.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path

import numpy as np

from repro.datasets.io import atomic_writer, fsync_directory

__all__ = [
    "FLAT_FORMAT",
    "FLAT_VERSION",
    "MANIFEST_NAME",
    "default_layout",
    "default_storage",
    "is_flat_snapshot",
    "read_flat",
    "write_flat",
]

#: magic string identifying flat-layout snapshot manifests
FLAT_FORMAT = "repro-query-index-flat"
#: current flat-layout version (the *snapshot* version is carried separately)
FLAT_VERSION = 1
#: file name of the manifest — the layout's atomic commit point
MANIFEST_NAME = "MANIFEST.json"
#: environment variable selecting the default save layout / load backend
STORAGE_ENV = "REPRO_STORAGE"

_GENERATION_RE = re.compile(r"\.g(\d+)\.bin$")


def _corrupt(path, detail: str):
    """The serving layer's typed snapshot error (imported lazily — this
    module is below :mod:`repro.serving.snapshot` in the import order)."""
    from repro.serving.snapshot import SnapshotCorruptError

    return SnapshotCorruptError(path, detail)


def default_layout() -> str:
    """The save layout the environment selects: ``"flat"`` under
    ``REPRO_STORAGE=mmap``, ``"npz"`` otherwise."""
    return "flat" if os.environ.get(STORAGE_ENV, "").lower() == "mmap" else "npz"


def default_storage() -> str:
    """The flat-layout load backend the environment selects (``"ram"``
    unless ``REPRO_STORAGE=mmap``)."""
    return "mmap" if os.environ.get(STORAGE_ENV, "").lower() == "mmap" else "ram"


def is_flat_snapshot(path) -> bool:
    """True when ``path`` is a flat-layout snapshot directory."""
    return Path(path).is_dir()


def _array_bytes_crc(value: np.ndarray) -> int:
    """CRC32 over an array's raw bytes — must match the ``.npz`` manifest's
    :func:`~repro.serving.snapshot._array_crc` so the two layouts share one
    ``checksums`` document."""
    return int(zlib.crc32(np.ascontiguousarray(value).tobytes()))


def _next_generation(path: Path) -> int:
    """One past the largest generation any existing file in ``path`` carries.

    Scanning file names (rather than trusting the manifest) means a crashed
    writer's orphaned data files are never reused under the same name — they
    are simply superseded and garbage-collected by the next commit.
    """
    latest = 0
    if path.is_dir():
        for entry in path.iterdir():
            match = _GENERATION_RE.search(entry.name)
            if match:
                latest = max(latest, int(match.group(1)))
    return latest + 1


def write_flat(path, version: int, meta: dict, arrays: dict) -> Path:
    """Write ``arrays`` + ``meta`` as a flat-layout snapshot directory.

    Every data file is written atomically under a fresh generation stamp,
    the directory is fsynced, and the manifest — the single commit point —
    is replaced last (firing the ``flat_replace`` fault seam in its
    write→rename window).  A crash at any earlier point leaves the previous
    manifest and the files it references untouched; files the new manifest
    does not reference are removed only after the commit succeeds.
    """
    path = Path(path)
    generation = _next_generation(path)
    path.mkdir(parents=True, exist_ok=True)

    members: dict[str, dict] = {}
    for name, value in arrays.items():
        value = np.ascontiguousarray(value)
        file_name = f"{name}.g{generation}.bin"
        with atomic_writer(path / file_name) as handle:
            if value.nbytes:
                handle.write(memoryview(value).cast("B"))
        members[name] = {
            "file": file_name,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
            "nbytes": int(value.nbytes),
        }
    fsync_directory(path)

    payload = json.dumps(
        {
            "version": int(version),
            "generation": generation,
            "meta": meta,
            "members": members,
        }
    ).encode("utf-8")
    header = json.dumps(
        {
            "format": FLAT_FORMAT,
            "flat_version": FLAT_VERSION,
            "payload_crc": int(zlib.crc32(payload)),
            "payload_size": len(payload),
        }
    ).encode("utf-8")
    with atomic_writer(path / MANIFEST_NAME, event="flat_replace") as handle:
        handle.write(header + b"\n" + payload)

    _collect_stale(path, keep={entry["file"] for entry in members.values()})
    return path


def _collect_stale(path: Path, keep: set[str]) -> None:
    """Drop data files the just-committed manifest does not reference.

    Covers superseded generations and any temp files a *crashed* earlier
    writer left behind (a live writer's temps never coexist with a commit).
    Best effort — a file that cannot be removed only wastes space; the
    manifest alone decides what a load reads.
    """
    for entry in path.iterdir():
        stale_data = _GENERATION_RE.search(entry.name) and entry.name not in keep
        stale_temp = ".tmp." in entry.name
        if stale_data or stale_temp:
            try:
                entry.unlink()
            except OSError:
                pass


def _parse_manifest(path: Path) -> dict:
    """Read and self-verify ``MANIFEST.json``; returns the payload document."""
    manifest_path = path / MANIFEST_NAME
    try:
        raw = manifest_path.read_bytes()
    except FileNotFoundError:
        raise _corrupt(path, "missing MANIFEST.json — not a flat-layout snapshot") from None
    except OSError as exc:
        raise _corrupt(path, f"unreadable manifest ({exc})") from exc
    head, _, body = raw.partition(b"\n")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _corrupt(path, f"unreadable manifest header ({exc})") from exc
    if not isinstance(header, dict) or header.get("format") != FLAT_FORMAT:
        raise _corrupt(path, "missing format magic — not a QueryIndex snapshot")
    flat_version = header.get("flat_version")
    if flat_version != FLAT_VERSION:
        # An intact manifest of a flat-layout version this build does not
        # speak is not corrupt — mirror the snapshot-version policy.
        raise ValueError(
            f"flat layout version {flat_version} is not supported "
            f"(this build reads version {FLAT_VERSION})"
        )
    try:
        declared_crc = int(header["payload_crc"])
        declared_size = int(header["payload_size"])
    except (KeyError, TypeError, ValueError) as exc:
        raise _corrupt(path, f"malformed manifest header ({exc})") from exc
    if len(body) != declared_size:
        raise _corrupt(
            path,
            f"manifest payload is {len(body)} bytes, header declares {declared_size} — truncated",
        )
    actual_crc = int(zlib.crc32(body))
    if actual_crc != declared_crc:
        raise _corrupt(
            path,
            f"manifest payload checksum mismatch (stored {declared_crc}, computed {actual_crc})",
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _corrupt(path, f"unreadable manifest payload ({exc})") from exc
    if not isinstance(payload, dict):
        raise _corrupt(path, "manifest payload is not a JSON object")
    return payload


def _member_file(path: Path, name: str, entry) -> tuple[Path, np.dtype, tuple, int]:
    """Validate one member-table entry and return its resolved parts."""
    if not isinstance(entry, dict):
        raise _corrupt(path, f"member {name!r} has a malformed manifest entry")
    try:
        file_name = str(entry["file"])
        dtype = np.dtype(str(entry["dtype"]))
        shape = tuple(int(n) for n in entry["shape"])
        nbytes = int(entry["nbytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise _corrupt(path, f"member {name!r} has a malformed manifest entry ({exc})") from exc
    if os.sep in file_name or file_name != os.path.basename(file_name):
        raise _corrupt(path, f"member {name!r} names a file outside the snapshot directory")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if expected != nbytes:
        raise _corrupt(
            path,
            f"member {name!r} declares {nbytes} bytes but shape {shape} of "
            f"dtype {dtype} needs {expected}",
        )
    return path / file_name, dtype, shape, nbytes


def read_flat(path, storage: str = "ram", readable_versions=(1, 2, 3)) -> tuple[int, dict, dict]:
    """Read a flat-layout snapshot; returns ``(version, meta, arrays)``.

    With ``storage="ram"`` every member is loaded into memory and verified
    against the CRC32 manifest (the ``.npz``-equivalent full audit); with
    ``storage="mmap"`` members come back as read-only ``np.memmap`` views
    after structural verification only — manifest self-CRC, member-table
    consistency and exact file sizes — so the load cost is independent of
    the corpus size.  Every malformed layout raises
    :class:`~repro.serving.snapshot.SnapshotCorruptError` naming the path;
    an intact manifest of an unsupported version raises plain
    ``ValueError``, mirroring the ``.npz`` loader.
    """
    if storage not in ("ram", "mmap"):
        raise ValueError(f"storage must be 'ram' or 'mmap', got {storage!r}")
    path = Path(path)
    payload = _parse_manifest(path)
    try:
        version = int(payload["version"])
    except (KeyError, TypeError, ValueError) as exc:
        raise _corrupt(path, f"unreadable version field ({exc})") from exc
    if version not in tuple(readable_versions):
        raise ValueError(
            f"snapshot version {version} is not supported "
            f"(this build reads versions {list(readable_versions)})"
        )
    meta = payload.get("meta")
    members = payload.get("members")
    if not isinstance(meta, dict) or not isinstance(members, dict):
        raise _corrupt(path, "manifest payload is missing its meta/member tables")
    checksums = meta.get("checksums")
    if not isinstance(checksums, dict):
        raise _corrupt(path, "manifest is missing its per-array checksum document")
    for name in sorted(set(checksums) - set(members)):
        raise _corrupt(path, f"array {name!r} is in the checksum manifest but absent")
    for name in sorted(set(members) - set(checksums)):
        raise _corrupt(path, f"array {name!r} has no entry in the checksum manifest")

    arrays: dict[str, np.ndarray] = {}
    for name, entry in members.items():
        file_path, dtype, shape, nbytes = _member_file(path, name, entry)
        try:
            actual_size = file_path.stat().st_size
        except FileNotFoundError:
            raise _corrupt(path, f"missing member file {file_path.name!r}") from None
        if actual_size != nbytes:
            raise _corrupt(
                path,
                f"member file {file_path.name!r} is {actual_size} bytes, "
                f"manifest declares {nbytes} — truncated or torn",
            )
        if nbytes == 0:
            arrays[name] = np.zeros(shape, dtype=dtype)
        elif storage == "mmap":
            arrays[name] = np.memmap(file_path, dtype=dtype, mode="r", shape=shape)
        else:
            value = np.fromfile(file_path, dtype=dtype).reshape(shape)
            actual_crc = _array_bytes_crc(value)
            if actual_crc != int(checksums[name]):
                raise _corrupt(
                    path,
                    f"checksum mismatch for array {name!r} "
                    f"(stored {int(checksums[name])}, computed {actual_crc})",
                )
            arrays[name] = value
    return version, meta, arrays
