"""Versioned on-disk snapshots of a :class:`~repro.search.query.QueryIndex`.

A snapshot is a single ``.npz`` archive (no pickling anywhere) holding every
piece of state the index cannot re-derive bit-identically on its own:

``format`` / ``version``
    The magic string ``"repro-query-index"`` and the integer format version.
    Loaders reject archives whose magic is missing or whose version they do
    not understand, so the format can evolve without silent misreads.
``meta``
    A JSON document with the index's scalar configuration (measure,
    threshold, verification mode, BayesLSH parameters, seed, staleness
    budget and counters) plus the hash family's scalar state — including the
    JSON-encoded RNG bit-generator state.
``collection_*``
    The raw indexed collection as CSR components plus external ids, packed
    by :func:`repro.datasets.io.collection_arrays` (the exact layout
    ``save_collection`` writes to standalone files).
``family_*``
    The hash family's array state: drawn minhash coefficients, or the
    (quantised) simhash projection matrix.  Together with the RNG state in
    ``meta`` this makes hash generation *resume* identically after a round
    trip — hash function ``i`` is the same before and after, whether it was
    drawn before the save or after the load.
``store_matrix``
    The signature store contents (packed ``uint32`` words for the bit store,
    the raw integer matrix for the minhash store).
``deleted`` / ``postings_members``
    The tombstone mask and the band postings' member sequence in insertion
    order — replaying that sequence rebuilds every posting list in the exact
    order incremental inserts created it, so probe results (and hence query
    answers) are bit-identical to the saved instance's.

What is *not* serialised is exactly the state that is a deterministic
function of the above: the measure's prepared view, the BayesLSH decision
tables and the posting dictionaries themselves are rebuilt on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.datasets.io import collection_arrays, collection_from_arrays
from repro.hashing.signatures import BitSignatures, IntSignatures

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "save_query_index", "load_query_index"]

#: magic string identifying QueryIndex snapshot archives
SNAPSHOT_FORMAT = "repro-query-index"
#: current snapshot format version
SNAPSHOT_VERSION = 1


def _snapshot_path(path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path


def save_query_index(index, path) -> Path:
    """Write ``index`` to ``path`` (``.npz`` appended if missing)."""
    from repro.search.query import QueryIndex

    if not isinstance(index, QueryIndex):
        raise TypeError(f"expected a QueryIndex, got {type(index).__name__}")
    path = _snapshot_path(path)

    family_state = index._family.state_dict()
    family_arrays: dict[str, np.ndarray] = {}
    family_scalars: dict[str, object] = {}
    for key, value in family_state.items():
        if isinstance(value, np.ndarray):
            family_arrays[f"family_{key}"] = value
        else:
            family_scalars[key] = value
    # Constructor arguments a fresh family needs *before* restore_state can
    # validate against them (currently just the simhash quantisation flag).
    family_kwargs = (
        {"quantize": bool(family_state["quantize"])} if "quantize" in family_state else {}
    )

    store = index._store
    if isinstance(store, BitSignatures):
        store_kind, store_matrix = "bits", store.words
    elif isinstance(store, IntSignatures):
        store_kind, store_matrix = "ints", store.values
    else:
        raise TypeError(f"cannot snapshot a {type(store).__name__} signature store")

    params = index._params
    meta = {
        "measure": index._measure.name,
        "threshold": index._threshold,
        "false_negative_rate": index._false_negative_rate,
        "signature_width": index._signature_width,
        "n_signatures": index._n_signatures,
        "verification": index._verification,
        "epsilon": params.epsilon,
        "delta": params.delta,
        "gamma": params.gamma,
        "k": params.k,
        "max_hashes": params.max_hashes,
        "seed": index._seed,
        "staleness_budget": index._staleness_budget,
        "n_stale_postings": index._n_stale_postings,
        "family": index._family.name,
        "family_scalars": family_scalars,
        "family_kwargs": family_kwargs,
        "store_kind": store_kind,
        "store_n_hashes": store.n_hashes,
    }
    np.savez_compressed(
        path,
        format=np.array(SNAPSHOT_FORMAT),
        version=np.array(SNAPSHOT_VERSION, dtype=np.int64),
        meta=np.array(json.dumps(meta)),
        deleted=index._deleted,
        postings_members=index._postings.members,
        store_matrix=store_matrix,
        **collection_arrays(index._collection, prefix="collection_"),
        **family_arrays,
    )
    return path


def load_query_index(path):
    """Load an index snapshot written by :func:`save_query_index`."""
    from repro.search.query import QueryIndex

    path = _snapshot_path(path)
    with np.load(path, allow_pickle=False) as archive:
        names = set(archive.files)
        if "format" not in names or str(archive["format"][()]) != SNAPSHOT_FORMAT:
            raise ValueError(f"{path} is not a QueryIndex snapshot")
        version = int(archive["version"][()])
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {version} is not supported "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        meta = json.loads(str(archive["meta"][()]))
        collection = collection_from_arrays(archive, prefix="collection_")
        deleted = np.asarray(archive["deleted"], dtype=bool)
        postings_members = np.asarray(archive["postings_members"], dtype=np.int64)
        store_matrix = archive["store_matrix"]

        family_state: dict[str, object] = dict(meta["family_scalars"])
        for name in names:
            if name.startswith("family_"):
                family_state[name[len("family_"):]] = archive[name]

        if meta["store_kind"] == "bits":
            store = BitSignatures.from_words(store_matrix, int(meta["store_n_hashes"]))
        elif meta["store_kind"] == "ints":
            store = IntSignatures.from_values(store_matrix)
            if store.n_hashes != int(meta["store_n_hashes"]):
                raise ValueError(
                    f"snapshot declares {meta['store_n_hashes']} hashes but the "
                    f"store matrix holds {store.n_hashes}"
                )
        else:
            raise ValueError(f"unknown signature store kind {meta['store_kind']!r}")

    return QueryIndex._from_snapshot(
        collection=collection,
        meta=meta,
        family_state=family_state,
        store=store,
        deleted=deleted,
        postings_members=postings_members,
    )
