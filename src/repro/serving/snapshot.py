"""Versioned on-disk snapshots of a :class:`~repro.search.query.QueryIndex`.

A snapshot is a single ``.npz`` archive (no pickling anywhere) holding every
piece of state the index cannot re-derive bit-identically on its own:

``format`` / ``version``
    The magic string ``"repro-query-index"`` and the integer format version.
    Loaders reject archives whose magic is missing or whose version they do
    not understand, so the format can evolve without silent misreads.
``meta``
    A JSON document with the index's scalar configuration (measure,
    threshold, verification mode, BayesLSH parameters, seed, staleness
    budget and counters), the segment layout (``n_segments``, per-segment
    ``store_n_hashes``) plus the hash family's scalar state — including the
    JSON-encoded RNG bit-generator state.
``seg{i}_collection_*``
    Each sealed segment's raw collection as CSR components plus external
    ids, packed by :func:`repro.datasets.io.collection_arrays` (the exact
    layout ``save_collection`` writes to standalone files).
``seg{i}_store``
    Each segment's signature store contents (packed ``uint32`` words for the
    bit store, the raw integer matrix for the minhash store).  Segments
    extend their stores independently, so widths may differ; the per-segment
    ``store_n_hashes`` list in ``meta`` records each width.
``family_*``
    The *master* hash family's array state: drawn minhash coefficients, or
    the (quantised) simhash projection matrix.  Together with the RNG state
    in ``meta`` this makes hash generation *resume* identically after a
    round trip — hash function ``i`` is the same before and after, whether
    it was drawn before the save or after the load (clones of the master
    re-draw any missing coefficients from the same deterministic stream).
``deleted`` / ``postings_members``
    The global tombstone mask and the band postings' member sequence in
    insertion order — replaying that sequence rebuilds every posting list in
    the exact order incremental inserts created it.

What is *not* serialised is exactly the state that is a deterministic
function of the above: the measures' prepared views, the per-segment family
clones, the BayesLSH decision tables and the posting dictionaries themselves
are rebuilt on load.

Version history
---------------
* **v1** — monolithic layout: one ``collection_*`` group and one
  ``store_matrix``.  Still readable; loads as a single-segment index.
* **v2** — segmented layout as described above, plus **compaction**:
  :func:`save_query_index` with ``compact=True`` merges all segments into
  one and physically drops tombstoned rows.  Surviving rows are renumbered
  (order and external ids preserved), the postings member sequence is
  remapped accordingly, and the written tombstone mask is empty.
* **v3** (current) — crash safety: ``meta`` gains a mandatory ``checksums``
  document mapping every array member to its CRC32, verified on load, and
  the writer goes through a temp file + ``fsync`` + atomic ``os.replace``
  so a crash mid-save can never tear an existing snapshot.

Layouts and storage backends
----------------------------
The logical payload above can be written in two **layouts** and read back
through two **storage backends** (see :mod:`repro.serving.storage`):

* ``layout="npz"`` (default) — the single compressed archive described
  above; always deserialises fully into RAM.
* ``layout="flat"`` — a directory with one raw binary file per array plus
  a self-validating CRC-manifested JSON header.  Loading accepts
  ``storage="ram"`` (full checksum audit, bit-identical to an ``.npz``
  load) or ``storage="mmap"`` (read-only ``np.memmap`` views faulted in
  lazily by the serving kernels' chunk-map reads — millisecond cold start,
  out-of-core corpora).

``save``/``load`` pick layouts automatically: :func:`save_query_index`
defaults to the layout the ``REPRO_STORAGE`` environment variable selects,
and :func:`load_query_index` detects the layout on disk (a directory is a
flat snapshot, a file is an archive).  Both layouts carry the same ``meta``
document and the same array members, so a load from either is bit-identical
— proven by ``tests/property/test_storage_backends.py``.

Durability contract
-------------------
:func:`save_query_index` either publishes a complete, checksummed snapshot
or leaves the previous one loadable — the ``.npz`` archive is fully written
and fsynced under a temporary name first, then renamed into place
atomically (and the directory entry fsynced); the flat layout writes its
data files first and commits them by atomically replacing the manifest
(see :mod:`repro.serving.storage` for the generation scheme).
:func:`load_query_index` re-reads every array's CRC32 against the manifest
(structural + size verification on the ``mmap`` backend); any torn,
truncated or bit-flipped snapshot — and any snapshot missing the magic or
expected members — raises :class:`SnapshotCorruptError` naming the
offending path.  Wrong data is never returned silently, and no raw
``zipfile.BadZipFile``/``KeyError`` escapes.  :class:`SnapshotStore` layers
a rolling-directory convention on top: numbered snapshots, an atomically
updated ``LATEST`` pointer, and load-time rollback to the newest snapshot
that still verifies.

A snapshot of a WAL-attached index is additionally a **checkpoint**: the
save rolls the write-ahead log (:mod:`repro.serving.wal`) and records the
fresh segment number as ``meta["wal_segment"]``, so
:func:`load_query_index` with ``wal=`` replays exactly the mutations the
snapshot does not already contain.  :class:`SnapshotStore` prunes WAL
segments only past what its retained snapshots reference.
"""

from __future__ import annotations

import json
import shutil
import zipfile
import zlib
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.datasets.io import atomic_writer, collection_arrays, collection_from_arrays
from repro.hashing.signatures import BitSignatures, IntSignatures
from repro.similarity.vectors import VectorCollection

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotCorruptError",
    "SnapshotStore",
    "save_query_index",
    "load_query_index",
]

#: magic string identifying QueryIndex snapshot archives
SNAPSHOT_FORMAT = "repro-query-index"
#: current snapshot format version (see module docstring for the history)
SNAPSHOT_VERSION = 3
#: versions this build can read
_READABLE_VERSIONS = (1, 2, 3)


class SnapshotCorruptError(ValueError):
    """A snapshot archive failed structural or checksum verification.

    Raised by :func:`load_query_index` for every malformed-archive path —
    truncated or bit-flipped zip data, missing format magic, missing
    members, checksum mismatches — so callers can catch one typed error
    instead of the underlying ``zipfile``/``zlib``/``KeyError`` zoo.  The
    offending ``path`` and a ``detail`` string are attached.

    Subclasses :class:`ValueError` so pre-existing callers that caught the
    loader's historical ``ValueError`` keep working.
    """

    def __init__(self, path, detail: str):
        self.path = Path(path)
        self.detail = str(detail)
        super().__init__(f"corrupt QueryIndex snapshot {self.path}: {self.detail}")


def _snapshot_path(path, layout: str = "npz") -> Path:
    path = Path(path)
    suffix = ".flat" if layout == "flat" else ".npz"
    if path.suffix != suffix:
        path = path.with_suffix(suffix)
    return path


def _resolve_load_path(path) -> Path:
    """The on-disk snapshot ``path`` refers to, whichever layout wrote it.

    An exact match (file or flat-layout directory) wins; otherwise the
    conventional ``.npz`` and ``.flat`` suffixes are tried in turn, so
    ``load(p)`` finds whatever ``save(p)`` wrote regardless of the layout
    the environment selected at save time.
    """
    path = Path(path)
    if path.exists():
        return path
    for candidate in (path.with_suffix(".npz"), path.with_suffix(".flat")):
        if candidate.exists():
            return candidate
    return _snapshot_path(path)


def _store_parts(store) -> tuple[str, np.ndarray, int]:
    """``(kind, matrix, n_hashes)`` of a signature store for serialisation."""
    if isinstance(store, BitSignatures):
        return "bits", store.words, store.n_hashes
    if isinstance(store, IntSignatures):
        return "ints", store.values, store.n_hashes
    raise TypeError(f"cannot snapshot a {type(store).__name__} signature store")


def _store_from_parts(kind: str, matrix: np.ndarray, n_hashes: int):
    """Rebuild a signature store from its serialised parts."""
    if kind == "bits":
        return BitSignatures.from_words(matrix, int(n_hashes))
    if kind == "ints":
        store = IntSignatures.from_values(matrix)
        if store.n_hashes != int(n_hashes):
            raise ValueError(
                f"snapshot declares {n_hashes} hashes but the store matrix "
                f"holds {store.n_hashes}"
            )
        return store
    raise ValueError(f"unknown signature store kind {kind!r}")


def _segment_payload(index) -> tuple[list[dict], str, list[int], np.ndarray, np.ndarray]:
    """Per-segment arrays for a plain (non-compacted) v2 snapshot."""
    arrays: list[dict] = []
    kinds: set[str] = set()
    widths: list[int] = []
    for segment in index._segments.segments:
        kind, matrix, n_hashes = _store_parts(segment.store)
        kinds.add(kind)
        widths.append(int(n_hashes))
        packed = collection_arrays(
            VectorCollection(segment.collection.matrix, ids=segment.ids), prefix=""
        )
        packed["store"] = matrix
        arrays.append(packed)
    (kind,) = kinds or {"bits"}
    return arrays, kind, widths, index._deleted, index._postings_members()


def _store_matrix_at_width(segment, width: int) -> np.ndarray:
    """``segment``'s store matrix widened to ``width`` hashes, without
    mutating the segment.

    When the segment's store is already wide enough its matrix is returned
    as-is; otherwise the store contents are copied into a scratch store and
    a fresh family clone extends the *copy* — the extra hashes come from the
    regular deterministic stream, so they match what any future query would
    have materialised, but the live segment keeps its original width (and
    memory footprint).
    """
    store = segment.store
    if store.n_hashes >= width:
        return _store_parts(store)[1]
    if isinstance(store, BitSignatures):
        scratch = BitSignatures.from_words(store.words.copy(), store.n_hashes)
    else:
        scratch = IntSignatures.from_values(store.values.copy())
    family = segment.family.clone_for(segment.prepared)
    family.attach_store(scratch)
    family.signatures(width)
    return _store_parts(scratch)[1]


def _compacted_payload(index) -> tuple[list[dict], str, list[int], np.ndarray, np.ndarray]:
    """A single merged segment with tombstoned rows physically dropped.

    Surviving rows are renumbered monotonically (their relative order is
    preserved, so sorted query results map one-to-one) and the postings
    member sequence is remapped through the old-to-new row map.  The
    *written copies* of narrower segment stores are extended to the widest
    segment's hash count so the merged store has one uniform width; the
    in-memory index is not touched (see :func:`_store_matrix_at_width`).
    """
    segments = index._segments
    width = segments.max_store_hashes
    alive = ~index._deleted

    matrix_parts = []
    ids_parts = []
    store_parts = []
    kinds: set[str] = set()
    for segment in segments.segments:
        local_alive = np.flatnonzero(alive[segment.offset : segment.offset + segment.n_vectors])
        matrix_parts.append(segment.collection.matrix[local_alive])
        ids_parts.append(np.asarray(segment.ids)[local_alive])
        kinds.add(_store_parts(segment.store)[0])
        store_parts.append(_store_matrix_at_width(segment, width)[local_alive])
    (kind,) = kinds or {"bits"}

    if matrix_parts:
        merged_matrix = sp.vstack(matrix_parts, format="csr")
        merged_ids = np.concatenate(ids_parts)
        merged_store = np.concatenate(store_parts, axis=0)
    else:
        merged_matrix = sp.csr_matrix((0, segments.n_features), dtype=np.float64)
        merged_ids = np.zeros(0, dtype=np.int64)
        merged_store = np.zeros((0, 0), dtype=np.uint32 if kind == "bits" else np.int64)

    packed = collection_arrays(VectorCollection(merged_matrix, ids=merged_ids), prefix="")
    packed["store"] = merged_store

    # Old global row -> new compacted row (only defined for alive rows).
    new_index = np.cumsum(alive, dtype=np.int64) - 1
    members = index._postings_members()
    members = new_index[members[alive[members]]]

    deleted = np.zeros(int(alive.sum()), dtype=bool)
    return [packed], kind, [int(width)], deleted, members


def _array_crc(value: np.ndarray) -> int:
    """CRC32 over an array's raw bytes (C-contiguous view)."""
    return int(zlib.crc32(np.ascontiguousarray(value).tobytes()))


def _snapshot_payload(index, compact: bool) -> tuple[dict, dict]:
    """The layout-independent snapshot payload: ``(meta, arrays)``.

    Both the ``.npz`` archive and the flat layout serialise exactly this —
    the same meta document (checksums included) and the same array members —
    which is what makes a load from either layout bit-identical.
    """
    family_state = index._family.state_dict()
    family_arrays: dict[str, np.ndarray] = {}
    family_scalars: dict[str, object] = {}
    for key, value in family_state.items():
        if isinstance(value, np.ndarray):
            family_arrays[f"family_{key}"] = value
        else:
            family_scalars[key] = value
    # Constructor arguments a fresh family needs *before* restore_state can
    # validate against them (currently just the simhash quantisation flag).
    family_kwargs = (
        {"quantize": bool(family_state["quantize"])} if "quantize" in family_state else {}
    )

    if compact:
        segment_arrays, store_kind, store_widths, deleted, members = _compacted_payload(index)
        n_stale_postings = 0
    else:
        segment_arrays, store_kind, store_widths, deleted, members = _segment_payload(index)
        n_stale_postings = index._n_stale_postings

    params = index._params
    meta = {
        "measure": index._measure.name,
        "threshold": index._threshold,
        "false_negative_rate": index._false_negative_rate,
        "signature_width": index._signature_width,
        "n_signatures": index._n_signatures,
        "verification": index._verification,
        "epsilon": params.epsilon,
        "delta": params.delta,
        "gamma": params.gamma,
        "k": params.k,
        "max_hashes": params.max_hashes,
        "seed": index._seed,
        "staleness_budget": index._staleness_budget,
        "n_stale_postings": n_stale_postings,
        "family": index._family.name,
        "family_scalars": family_scalars,
        "family_kwargs": family_kwargs,
        "store_kind": store_kind,
        "store_n_hashes": store_widths,
        "n_features": index._segments.n_features,
        "n_segments": len(segment_arrays),
        "compacted": bool(compact),
    }
    payload: dict[str, np.ndarray] = {}
    for i, packed in enumerate(segment_arrays):
        for key, value in packed.items():
            prefix = f"seg{i}_store" if key == "store" else f"seg{i}_collection_{key}"
            payload[prefix] = value
    arrays: dict[str, np.ndarray] = {
        "deleted": deleted,
        "postings_members": members,
        **payload,
        **family_arrays,
    }
    meta["checksums"] = {name: _array_crc(value) for name, value in arrays.items()}
    return meta, arrays


def save_query_index(index, path, compact: bool = False, layout: str | None = None) -> Path:
    """Write ``index`` to ``path`` atomically; returns the written path.

    ``layout`` selects the on-disk format — ``"npz"`` (single compressed
    archive, the conventional ``.npz`` suffix appended if missing) or
    ``"flat"`` (a ``.flat`` directory of raw per-array files readable
    through the mmap backend; see :mod:`repro.serving.storage`).  ``None``
    defers first to an explicit layout suffix on ``path`` (``.npz`` /
    ``.flat`` — a caller naming the format gets that format), then to the
    ``REPRO_STORAGE`` environment variable (``npz`` unless it says
    ``mmap``).

    With ``compact=True`` the snapshot merges all segments and drops
    tombstoned rows (see :func:`_compacted_payload`); the in-memory index is
    left untouched either way.

    Both layouts publish atomically: the archive is fully written and
    fsynced under a temp name then renamed over ``path`` with
    ``os.replace``; the flat layout writes its data files the same way and
    commits them by atomically replacing its manifest.  A crash at any
    point leaves either the previous snapshot or the new one, never a torn
    snapshot under the destination name.  Every array member's CRC32 is
    recorded in ``meta["checksums"]`` and re-verified by
    :func:`load_query_index` (structurally, on the lazy mmap backend).
    """
    from repro.search.query import QueryIndex
    from repro.serving import storage as flat_storage

    if not isinstance(index, QueryIndex):
        raise TypeError(f"expected a QueryIndex, got {type(index).__name__}")
    if layout is None:
        suffix = Path(path).suffix
        if suffix in (".npz", ".flat"):
            layout = suffix[1:]
        else:
            layout = flat_storage.default_layout()
    if layout not in ("npz", "flat"):
        raise ValueError(f"layout must be 'npz' or 'flat', got {layout!r}")
    path = _snapshot_path(path, layout)
    wal = getattr(index, "_wal", None)
    if wal is not None:
        if compact:
            # Compaction renumbers rows; WAL delete records reference the
            # *old* numbering, so a compacted checkpoint could misapply a
            # replayed tail.  Detach the WAL (checkpoint + fresh log) to
            # compact.
            raise ValueError(
                "compact=True cannot checkpoint a WAL-attached index — "
                "row renumbering would invalidate the log's row references"
            )
        # Checkpoint: roll the log and capture the payload atomically with
        # respect to mutators, so the stamped segment number marks exactly
        # the boundary between state inside the snapshot and records that
        # must replay on top of it.  (If the save fails after the roll, the
        # previous snapshot's older position still covers the new segment.)
        with index._update_lock:
            wal_segment = wal.roll()
            meta, arrays = _snapshot_payload(index, compact)
        meta["wal_segment"] = int(wal_segment)
    else:
        meta, arrays = _snapshot_payload(index, compact)
    if layout == "flat":
        return flat_storage.write_flat(path, SNAPSHOT_VERSION, meta, arrays)
    with atomic_writer(path, event="snapshot_replace") as handle:
        np.savez_compressed(
            handle,
            format=np.array(SNAPSHOT_FORMAT),
            version=np.array(SNAPSHOT_VERSION, dtype=np.int64),
            meta=np.array(json.dumps(meta)),
            **arrays,
        )
    return path


def _load_segments_v1(archive, meta) -> list[tuple]:
    """Read the monolithic v1 layout as a single sealed segment."""
    collection = collection_from_arrays(archive, prefix="collection_", trusted=True)
    store = _store_from_parts(
        meta["store_kind"], archive["store_matrix"], int(meta["store_n_hashes"])
    )
    return [(collection, store, collection.ids)]


def _load_segments_v2(archive, meta) -> list[tuple]:
    """Read the segmented v2 layout.

    Collections are adopted through the trusted restore path — the arrays
    were canonical when written, and skipping re-canonicalisation is what
    keeps memory-mapped members lazy (nothing here forces a page in).
    """
    widths = meta["store_n_hashes"]
    segments = []
    for i in range(int(meta["n_segments"])):
        collection = collection_from_arrays(
            archive, prefix=f"seg{i}_collection_", trusted=True
        )
        store = _store_from_parts(
            meta["store_kind"], archive[f"seg{i}_store"], int(widths[i])
        )
        segments.append((collection, store, collection.ids))
    return segments


def _read_verified(path: Path) -> tuple[int, dict, dict]:
    """Read an archive fully, mapping every malformed path to a typed error.

    Returns ``(version, meta, arrays)`` with every member materialised in
    memory: reading everything up front forces the zip layer's per-member
    CRC checks, and lets v3's manifest checksums verify the raw bytes before
    any of them are interpreted.  An unsupported (but intact) version stays
    a plain ``ValueError`` — that archive is not corrupt, just newer/older
    than this build.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = {name: np.asarray(archive[name]) for name in archive.files}
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError, ValueError) as exc:
        raise SnapshotCorruptError(path, f"unreadable archive ({exc})") from exc
    if "format" not in raw or str(raw["format"][()]) != SNAPSHOT_FORMAT:
        raise SnapshotCorruptError(
            path, "missing format magic — not a QueryIndex snapshot"
        )
    try:
        version = int(raw["version"][()])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptError(path, f"unreadable version field ({exc})") from exc
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"snapshot version {version} is not supported "
            f"(this build reads versions {list(_READABLE_VERSIONS)})"
        )
    try:
        meta = json.loads(str(raw["meta"][()]))
    except (KeyError, ValueError) as exc:
        raise SnapshotCorruptError(path, f"unreadable meta document ({exc})") from exc
    arrays = {
        name: value
        for name, value in raw.items()
        if name not in ("format", "version", "meta")
    }
    if version >= 3:
        checksums = meta.get("checksums")
        if not isinstance(checksums, dict):
            raise SnapshotCorruptError(
                path, "v3 archive is missing its per-array checksum manifest"
            )
        for name in sorted(set(checksums) - set(arrays)):
            raise SnapshotCorruptError(
                path, f"array {name!r} is in the checksum manifest but absent"
            )
        for name in sorted(set(arrays) - set(checksums)):
            raise SnapshotCorruptError(
                path, f"array {name!r} has no entry in the checksum manifest"
            )
        for name, value in arrays.items():
            actual = _array_crc(value)
            if actual != int(checksums[name]):
                raise SnapshotCorruptError(
                    path,
                    f"checksum mismatch for array {name!r} "
                    f"(stored {int(checksums[name])}, computed {actual})",
                )
    return version, meta, arrays


def load_query_index(path, storage: str | None = None, wal=None):
    """Load an index snapshot written by :func:`save_query_index`.

    The layout is detected on disk — a directory is a flat-layout snapshot,
    a file is an ``.npz`` archive (the ``.npz``/``.flat`` suffixes are tried
    when ``path`` itself does not exist).  ``storage`` selects the flat
    layout's backend: ``"ram"`` deserialises and CRC-verifies every member
    (bit-identical to an archive load), ``"mmap"`` opens read-only
    ``np.memmap`` views whose pages fault in lazily — a millisecond cold
    start independent of corpus size.  ``None`` defers to ``REPRO_STORAGE``
    (``ram`` unless it says ``mmap``); archives always load into RAM.

    ``wal`` (a :class:`~repro.serving.wal.WriteAheadLog` or a directory
    path for one) replays the log's tail — every mutation logged at or
    after this snapshot's checkpoint — on top of the loaded index and
    attaches the log for continued writes; see
    :meth:`~repro.search.query.QueryIndex.recover`.  A torn trailing
    record is truncated; interior log corruption raises
    :class:`SnapshotCorruptError` like any other corrupt artefact.

    Reads the current checksummed v3 layout plus the legacy v2 (segmented,
    no checksums) and v1 (monolithic) layouts; anything else is rejected.
    Every malformed-snapshot path — missing magic, truncated or bit-flipped
    data, missing members, checksum mismatch — raises
    :class:`SnapshotCorruptError` with the offending path; an intact
    snapshot of an unsupported version raises a plain ``ValueError``.
    Wrong data is never returned silently.
    """
    from repro.search.query import QueryIndex
    from repro.serving import storage as flat_storage

    path = _resolve_load_path(path)
    if flat_storage.is_flat_snapshot(path):
        version, meta, arrays = flat_storage.read_flat(
            path,
            storage=storage or flat_storage.default_storage(),
            readable_versions=_READABLE_VERSIONS,
        )
    else:
        version, meta, arrays = _read_verified(path)
    try:
        # The tombstone mask is mutated in place by ``delete`` and the
        # family arrays may be grown by later draws — copy both out of any
        # read-only mmap backing (they are O(N) and O(hashes), not O(nnz)).
        deleted = np.array(arrays["deleted"], dtype=bool)
        postings_members = np.asarray(arrays["postings_members"], dtype=np.int64)

        family_state: dict[str, object] = dict(meta["family_scalars"])
        for name, value in arrays.items():
            if name.startswith("family_"):
                if isinstance(value, np.memmap):
                    value = np.array(value)
                family_state[name[len("family_"):]] = value

        if version == 1:
            segments_data = _load_segments_v1(arrays, meta)
        else:
            segments_data = _load_segments_v2(arrays, meta)
    except SnapshotCorruptError:
        raise
    except (KeyError, IndexError) as exc:
        raise SnapshotCorruptError(path, f"missing or malformed member ({exc})") from exc

    n_features = meta.get("n_features")
    if n_features is None:  # v1 archives predate the explicit field
        n_features = segments_data[0][0].n_features

    index = QueryIndex._from_snapshot(
        segments_data=segments_data,
        n_features=int(n_features),
        meta=meta,
        family_state=family_state,
        deleted=deleted,
        postings_members=postings_members,
    )
    if wal is not None:
        index.recover(wal)
    return index


def _snapshot_wal_segment(path) -> int | None:
    """Read just the ``wal_segment`` checkpoint position from a snapshot.

    Cheap by construction — the flat layout answers from its manifest, the
    archive from its ``meta`` member alone — because :class:`SnapshotStore`
    consults every retained snapshot on each checkpoint to compute the WAL
    prune cutoff.  ``None`` for snapshots saved without a WAL attached.
    """
    from repro.serving import storage as flat_storage

    path = Path(path)
    if flat_storage.is_flat_snapshot(path):
        meta = flat_storage._parse_manifest(path).get("meta")
        if not isinstance(meta, dict):
            raise SnapshotCorruptError(path, "manifest payload is missing its meta table")
    else:
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"][()]))
        except (zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError, ValueError) as exc:
            raise SnapshotCorruptError(path, f"unreadable meta document ({exc})") from exc
    position = meta.get("wal_segment")
    return None if position is None else int(position)


# --------------------------------------------------------------------- #
# rolling snapshot directories
# --------------------------------------------------------------------- #
class SnapshotStore:
    """A directory of rolling, numbered snapshots with a ``LATEST`` pointer.

    Layers the operational conventions on top of the single-file format:
    :meth:`save` writes ``snapshot-NNNNNNNN.npz`` (monotonically numbered,
    each via the atomic temp-write/rename path), then atomically updates the
    ``LATEST`` pointer file and prunes old snapshots beyond ``keep``.
    :meth:`load` tries the pointer target first and *rolls back* — newest to
    oldest — past any snapshot that fails checksum verification, so one torn
    or bit-flipped file (or a crash between temp-write and pointer update)
    never takes the service down with it.
    """

    #: name of the pointer file holding the latest snapshot's file name
    POINTER_NAME = "LATEST"

    def __init__(self, directory, keep: int = 2):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._keep = max(int(keep), 1)

    @property
    def directory(self) -> Path:
        """The directory holding the numbered snapshots and the pointer."""
        return self._directory

    @property
    def pointer_path(self) -> Path:
        """Path of the ``LATEST`` pointer file."""
        return self._directory / self.POINTER_NAME

    def snapshots(self) -> list[Path]:
        """The numbered snapshots (``.npz`` files and ``.flat`` directories),
        oldest first."""
        return sorted(
            path
            for path in self._directory.glob("snapshot-*")
            if path.suffix in (".npz", ".flat")
        )

    def _next_path(self, layout: str) -> Path:
        last = -1
        for existing in self.snapshots():
            stem = existing.stem  # snapshot-NNNNNNNN
            try:
                last = max(last, int(stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        suffix = ".flat" if layout == "flat" else ".npz"
        return self._directory / f"snapshot-{last + 1:08d}{suffix}"

    def save(self, index, compact: bool = False, layout: str | None = None) -> Path:
        """Snapshot ``index`` as the next numbered file; update the pointer.

        ``layout`` is forwarded to :func:`save_query_index` (``None`` defers
        to ``REPRO_STORAGE``); the rolling numbering is shared between the
        layouts, so a store may hold a mix of ``.npz`` and ``.flat``
        snapshots and still roll back across all of them.  The snapshot is
        fully committed before the pointer moves, so a crash anywhere in
        between leaves the previous pointer target intact and loadable.

        On a WAL-attached index this is the **checkpoint** operation: the
        save rolls the log (sealing everything the snapshot contains into
        segments before the stamped ``wal_segment``), and afterwards WAL
        segments older than what the *retained* snapshots reference are
        pruned — rollback to any snapshot still in the store always finds
        the log tail it needs.
        """
        from repro.serving import storage as flat_storage

        if layout is None:
            layout = flat_storage.default_layout()
        path = save_query_index(index, self._next_path(layout), compact=compact, layout=layout)
        with atomic_writer(self.pointer_path) as handle:
            handle.write((path.name + "\n").encode("utf-8"))
        self._prune(current=path)
        self._prune_wal(index)
        return path

    def _prune_wal(self, index) -> None:
        """Drop WAL segments no retained snapshot references.

        The cutoff is the minimum ``wal_segment`` across every snapshot
        still in the store; snapshots without a position (saved before a
        WAL was attached) do not constrain pruning — they cannot replay a
        tail anyway.  Best effort: an unreadable retained snapshot blocks
        pruning rather than risking a needed segment.
        """
        wal = getattr(index, "_wal", None)
        if wal is None:
            return
        positions: list[int] = []
        for path in self.snapshots():
            try:
                position = _snapshot_wal_segment(path)
            except Exception:
                return  # cannot prove the segment is unreferenced — keep it
            if position is not None:
                positions.append(position)
        if positions:
            wal.prune(min(positions))

    def _prune(self, current: Path) -> None:
        """Drop numbered snapshots beyond ``keep`` (never the current one)."""
        snapshots = self.snapshots()
        excess = len(snapshots) - self._keep
        for stale in snapshots[:max(excess, 0)]:
            if stale == current:
                continue
            if stale.is_dir():
                shutil.rmtree(stale, ignore_errors=True)
            else:
                stale.unlink(missing_ok=True)

    def _candidates(self) -> list[Path]:
        """Load order: pointer target first, then the rest newest-to-oldest."""
        ordered: list[Path] = []
        try:
            name = self.pointer_path.read_text(encoding="utf-8").strip()
        except OSError:
            name = ""
        if name:
            target = self._directory / name
            if target.exists():
                ordered.append(target)
        for path in reversed(self.snapshots()):
            if path not in ordered:
                ordered.append(path)
        return ordered

    def load(self, storage: str | None = None, wal=None):
        """Load the newest verifiable snapshot, rolling back past corrupt ones.

        ``storage`` and ``wal`` are forwarded to :func:`load_query_index`;
        with a ``wal``, whichever candidate verifies replays the log tail
        from *its own* checkpoint position — rollback to an older snapshot
        simply replays a longer tail (the prune policy keeps every segment
        a retained snapshot references).  Raises ``FileNotFoundError`` for
        an empty store and :class:`SnapshotCorruptError` when every
        candidate fails verification (the error lists each rejected file).
        """
        candidates = self._candidates()
        if not candidates:
            raise FileNotFoundError(f"no snapshots in {self._directory}")
        failures: list[str] = []
        for path in candidates:
            try:
                return load_query_index(path, storage=storage, wal=wal)
            except SnapshotCorruptError as exc:
                failures.append(f"{path.name}: {exc.detail}")
        raise SnapshotCorruptError(
            self._directory, "every snapshot failed verification — " + "; ".join(failures)
        )
