"""Segmented, ingest-friendly storage of an indexed collection.

The serving layer's original design held the corpus as one monolithic CSR
matrix plus one monolithic signature store, so every ``insert`` paid an
O(N) re-concatenation and re-preparation of the whole collection.  This
module replaces that with a *log-structured* layout: the collection is an
ordered list of immutable, sealed **segments**, and ingest appends a new
segment instead of rewriting the old ones — ``insert`` cost becomes
O(batch).

A :class:`CollectionSegment` bundles everything one ingest batch needs:

* the raw :class:`~repro.similarity.vectors.VectorCollection` slice,
* the measure's *prepared* view of it (normalised / binarised),
* a :class:`~repro.hashing.base.HashFamily` clone evaluating the index's
  hash functions on exactly these rows, and
* the segment's own :class:`~repro.hashing.signatures.SignatureStore`,
  extended lazily and independently of the other segments.

:class:`SegmentedCollection` presents the segments as one logical
collection addressed by **global row index**: segment ``s`` owns rows
``[offset_s, offset_s + n_s)``.  The batched kernels the serving layer
needs — band-key gathers for the LSH postings, cross-store hash-agreement
counts for BayesLSH verification, exact cross-similarities — are routed
segment-wise: global rows are grouped by owning segment with one
``searchsorted`` against the offset table, each segment runs the exact
same kernel the monolithic path ran (with local row indices), and results
are scattered back into pair order.

Bit-identity contract
---------------------
Every kernel routed through this class is **row-local**: a hash value, a
band key, an agreement count or an exact similarity depends only on the
vector(s) involved and on the hash functions, never on which rows happen
to share a matrix.  Hash functions themselves are deterministic in
``(seed, hash index)`` (the hashing layer's contract), so hashing a batch
inside its own segment produces the same signature rows a monolithic
re-hash would.  Consequently a segmented index answers every query
bit-identically to a monolithic scratch rebuild over the same rows —
enforced by ``tests/property/test_query_serving.py``.

RNG-stream authority
--------------------
The :attr:`SegmentedCollection.family` is the **master** family: it is
bound to an empty collection (it never hashes anything itself) and serves
as the single authority for hash-function state.  Per-segment families and
per-query-batch families are clones of it; a clone re-draws any
coefficients it is missing from the same seeded stream, which by the
determinism contract yields identical hash functions on every clone.
Snapshots serialise only the master's state.

Concurrency
-----------
The serving contract is *many reader threads, one writer thread*: queries may
run concurrently with each other and with one ``insert``/``delete`` stream.
Mutation points are guarded — lazy signature-store extension serialises
inside the hash families (see :meth:`CollectionSegment.ensure_hashes`), and
segment publication orders the offsets table after the segment list so any
global row a reader can observe already routes to a live segment.  Batched
reads are lock-free (per-store gather scratch is thread-local).  Stressed by
``tests/serving/test_concurrency.py``.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.hashing.base import HashFamily, get_hash_family
from repro.hashing.signatures import SignatureStore
from repro.similarity.measures import SimilarityMeasure
from repro.similarity.vectors import VectorCollection
from repro.verification.base import cross_similarities_for_pairs

__all__ = ["CollectionSegment", "SegmentedCollection"]


class CollectionSegment:
    """One sealed, immutable slice of a segmented collection.

    Segments are created by :meth:`SegmentedCollection.append` (ingest) or
    :meth:`SegmentedCollection.append_restored` (snapshot load) and are
    never mutated afterwards, except for lazily extending the signature
    store with more hash *columns* (never rows) via :meth:`ensure_hashes`.

    Restored segments may be built **deferred** (``prepared``/``family``
    passed as ``None`` with the measure and master family in ``deferred``):
    the prepared view and the family clone are then derived on first access
    instead of at load time.  Both are deterministic functions of the raw
    collection and the master's state — a clone taken later re-draws the
    same hash functions by the determinism contract — so deferral changes
    *when* the O(nnz) preparation cost is paid (first query touching the
    segment), never what any kernel computes.  This is what makes a
    memory-mapped snapshot load a millisecond cold start: nothing faults
    the raw vectors in until a query actually needs them.
    """

    def __init__(
        self,
        collection: VectorCollection,
        prepared: VectorCollection | None,
        family: HashFamily | None,
        store: SignatureStore,
        offset: int,
        ids: np.ndarray,
        deferred: tuple[SimilarityMeasure, HashFamily] | None = None,
    ):
        if (prepared is None or family is None) and deferred is None:
            raise ValueError(
                "a segment without a prepared view/family clone needs the "
                "(measure, master family) pair to derive them from"
            )
        self.collection = collection
        self._prepared = prepared
        self._family = family
        self._deferred = deferred
        self._materialize_lock = threading.Lock()
        self.store = store
        self.offset = int(offset)
        self.ids = ids

    @property
    def prepared(self) -> VectorCollection:
        """The measure's prepared view of this segment (derived on first use)."""
        prepared = self._prepared
        if prepared is None:
            self._materialize()
            prepared = self._prepared
        return prepared

    @property
    def family(self) -> HashFamily:
        """This segment's hash-family clone (derived on first use)."""
        family = self._family
        if family is None:
            self._materialize()
            family = self._family
        return family

    def _materialize(self) -> None:
        """Derive the deferred prepared view and family clone, exactly once.

        Thread-safe: concurrent readers serialise on the segment's
        materialisation lock, and the family is published after the prepared
        view so a lock-free reader of either attribute always sees it fully
        built.  The clone attaches the segment's restored store, resuming
        lazy hash extension exactly where the snapshot left off.
        """
        with self._materialize_lock:
            if self._family is not None:
                return
            measure, master = self._deferred
            prepared = measure.prepare(self.collection)
            family = master.clone_for(prepared)
            family.attach_store(self.store)
            self._prepared = prepared
            self._family = family

    def rebind_backing(
        self,
        components: tuple[np.ndarray, np.ndarray, np.ndarray],
        shape: tuple[int, int],
        ids: np.ndarray,
        store_backing: np.ndarray,
    ) -> None:
        """Swap this segment's raw arrays for equal-valued replacements.

        The spill path calls this after writing a flat snapshot: the CSR
        components, external ids and signature words are rebound to the
        read-only memory maps of the files just written, releasing the heap
        copies.  The replacements must be bit-identical to the current
        arrays (they were just serialised from them), so every kernel —
        verification gathers, band-key gathers, id lookups — reads the same
        values from the new backing.

        The prepared view and family clone, if already materialised, are
        intentionally left untouched: they are derived, query-hot state and
        keep serving from RAM (for binary collections the prepared view *is*
        the old collection object, which then stays resident — spill trades
        only the raw backing, not derived views).
        """
        n_before = self.collection.n_vectors
        self.collection = VectorCollection.restored(components, shape, ids=ids)
        if self.collection.n_vectors != n_before:
            raise ValueError(
                f"replacement backing has {self.collection.n_vectors} rows, "
                f"segment owns {n_before}"
            )
        self.ids = np.asarray(ids)
        self.store.rebind(store_backing)

    @property
    def n_vectors(self) -> int:
        """Number of rows this segment owns."""
        return self.collection.n_vectors

    @property
    def rows(self) -> np.ndarray:
        """The global row indices this segment owns, in order."""
        return np.arange(self.offset, self.offset + self.n_vectors, dtype=np.int64)

    def ensure_hashes(self, n_hashes: int) -> SignatureStore:
        """Extend this segment's store to hold at least ``n_hashes`` hashes.

        Extension draws hash functions through the segment's family clone;
        by the hashing layer's determinism contract the drawn functions are
        identical on every clone, so segments extended at different times
        (or after a snapshot round trip) still agree on hash function ``i``.

        Thread-safe: concurrent reader threads extending the same segment
        serialise inside :meth:`~repro.hashing.base.HashFamily.signatures`
        (and the shared simhash projection matrix serialises its own draws),
        so the store grows exactly once per missing column block.
        """
        if self.store.n_hashes < n_hashes:
            self.family.signatures(n_hashes)
        return self.store

    def __repr__(self) -> str:
        return (
            f"CollectionSegment(offset={self.offset}, n_vectors={self.n_vectors}, "
            f"n_hashes={self.store.n_hashes})"
        )


class SegmentedCollection:
    """An append-only sequence of segments behaving as one logical collection.

    Parameters
    ----------
    measure:
        The similarity measure whose ``prepare`` defines each segment's
        prepared view and whose ``lsh_family`` names the hash family.
    n_features:
        The fixed feature space every segment must live in.
    seed:
        Seed of the master hash family (ignored when ``family`` is given).
    family:
        Optionally a pre-built master family (the snapshot loader passes a
        restored one); it must be bound to an empty collection.
    family_kwargs:
        Extra constructor arguments for the master family (currently the
        simhash quantisation flag).

    Determinism contract: all mutating operations are appends; global row
    indices, once assigned, never change, and every batched read kernel
    (:meth:`band_keys_many`, :meth:`count_matches_cross`,
    :meth:`cross_similarities`) returns values bit-identical to the same
    kernel run over a monolithic concatenation of the segments.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        n_features: int,
        seed: int = 0,
        family: HashFamily | None = None,
        family_kwargs: dict | None = None,
    ):
        self._measure = measure
        self._n_features = int(n_features)
        if family is None:
            empty = VectorCollection(
                sp.csr_matrix((0, self._n_features), dtype=np.float64)
            )
            family = get_hash_family(
                measure.lsh_family,
                measure.prepare(empty),
                seed=seed,
                **(family_kwargs or {}),
            )
        self._family = family
        self._segments: list[CollectionSegment] = []
        #: cumulative row offsets; entry s is the first global row of segment s
        self._offsets = np.zeros(1, dtype=np.int64)
        # Memoised concatenations, keyed by the segment count they were built
        # from: a reader racing an ingest can at worst publish an entry for
        # the *old* segment count, which the key check discards instead of
        # serving it as current (lock-free readers, single writer).
        self._row_nnz_cache: tuple[int, np.ndarray] | None = None
        self._ids_cache: tuple[int, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def measure(self) -> SimilarityMeasure:
        """The similarity measure shared by every segment."""
        return self._measure

    @property
    def family(self) -> HashFamily:
        """The master hash family (RNG/coefficient authority; hashes nothing)."""
        return self._family

    @property
    def segments(self) -> Sequence[CollectionSegment]:
        """The sealed segments in append order (do not mutate)."""
        return self._segments

    @property
    def n_segments(self) -> int:
        """Number of sealed segments."""
        return len(self._segments)

    @property
    def n_vectors(self) -> int:
        """Total rows across all segments."""
        return int(self._offsets[-1])

    @property
    def n_features(self) -> int:
        """The fixed feature space every segment lives in."""
        return self._n_features

    @property
    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts of the *prepared* views, globally indexed."""
        cached = self._row_nnz_cache
        segments = self._segments[: len(self._segments)]
        if cached is not None and cached[0] == len(segments):
            return cached[1]
        if segments:
            values = np.concatenate([segment.prepared.row_nnz for segment in segments])
        else:
            values = np.zeros(0, dtype=np.int64)
        self._row_nnz_cache = (len(segments), values)
        return values

    @property
    def ids(self) -> np.ndarray:
        """External identifiers, one per global row."""
        cached = self._ids_cache
        segments = self._segments[: len(self._segments)]
        if cached is not None and cached[0] == len(segments):
            return cached[1]
        if segments:
            values = np.concatenate([np.asarray(segment.ids) for segment in segments])
        else:
            values = np.zeros(0, dtype=np.int64)
        self._ids_cache = (len(segments), values)
        return values

    @property
    def max_store_hashes(self) -> int:
        """The widest signature store across segments (0 when empty)."""
        if not self._segments:
            return 0
        return max(segment.store.n_hashes for segment in self._segments)

    def __len__(self) -> int:
        return self.n_vectors

    def __repr__(self) -> str:
        return (
            f"SegmentedCollection(n_segments={self.n_segments}, "
            f"n_vectors={self.n_vectors}, n_features={self.n_features})"
        )

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _seal(
        self,
        collection: VectorCollection,
        prepared: VectorCollection | None,
        family: HashFamily | None,
        store: SignatureStore,
        ids,
        deferred: tuple | None = None,
    ) -> CollectionSegment:
        ids = np.asarray(ids if ids is not None else collection.ids)
        if len(ids) != collection.n_vectors:
            raise ValueError(
                f"ids has length {len(ids)} but the segment has "
                f"{collection.n_vectors} rows"
            )
        segment = CollectionSegment(
            collection,
            prepared,
            family,
            store,
            offset=self.n_vectors,
            ids=ids,
            deferred=deferred,
        )
        # Publication order matters for lock-free readers: the offsets table
        # (which defines n_vectors and hence which global rows exist) is
        # replaced only after the owning segment is appended, so any global
        # row a reader can see routes to a segment that is already there.
        new_offsets = np.append(self._offsets, self.n_vectors + segment.n_vectors)
        self._segments.append(segment)
        self._offsets = new_offsets
        return segment

    def append(
        self, collection: VectorCollection, n_hashes: int, ids=None
    ) -> CollectionSegment:
        """Seal ``collection`` as a new segment hashed to ``n_hashes`` hashes.

        The cost is O(batch): the new rows are prepared and hashed in
        isolation; no existing segment is touched.  ``ids`` defaults to the
        collection's own identifiers.  Returns the sealed segment (its
        :attr:`~CollectionSegment.rows` are the assigned global indices).
        """
        if collection.n_features != self._n_features:
            raise ValueError(
                f"segment has {collection.n_features} features, collection "
                f"holds {self._n_features}"
            )
        prepared = self._measure.prepare(collection)
        family = self._family.clone_for(prepared)
        store = family.signatures(n_hashes)
        return self._seal(collection, prepared, family, store, ids)

    def append_restored(
        self,
        collection: VectorCollection,
        store: SignatureStore,
        ids=None,
        defer: bool = False,
    ) -> CollectionSegment:
        """Re-attach a deserialised segment (snapshot load path).

        ``store`` already holds this segment's signature rows; the family
        clone adopts it and keeps extending lazily from where it left off.
        With ``defer=True`` the O(nnz) preparation and the family clone are
        postponed to the segment's first use (see
        :class:`CollectionSegment`) — bit-identical either way, and the
        reason a memory-mapped snapshot load need not touch the raw
        vectors at all.
        """
        if collection.n_features != self._n_features:
            raise ValueError(
                f"segment has {collection.n_features} features, collection "
                f"holds {self._n_features}"
            )
        if defer:
            return self._seal(
                collection,
                None,
                None,
                store,
                ids,
                deferred=(self._measure, self._family),
            )
        prepared = self._measure.prepare(collection)
        family = self._family.clone_for(prepared)
        family.attach_store(store)
        return self._seal(collection, prepared, family, store, ids)

    # ------------------------------------------------------------------ #
    # segment routing
    # ------------------------------------------------------------------ #
    def segment_of(self, rows: np.ndarray) -> np.ndarray:
        """The owning segment index for each global row."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.n_vectors):
            raise IndexError(
                f"global row indices must lie in [0, {self.n_vectors})"
            )
        return np.searchsorted(self._offsets, rows, side="right") - 1

    def locate(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Route global rows to ``(segment index, local row)`` pairs.

        One ``searchsorted`` against the offset table; the parallel serving
        executor uses this to pre-route candidate pairs before sharding them
        across workers (workers then address per-segment stores with local
        indices directly).
        """
        rows = np.asarray(rows, dtype=np.int64)
        segment_ids = self.segment_of(rows)
        return segment_ids, rows - self._offsets[segment_ids]

    def _grouped(self, rows: np.ndarray) -> Iterable[tuple[CollectionSegment, np.ndarray]]:
        """Yield ``(segment, positions-into-rows)`` for each involved segment.

        One stable argsort groups equal segment ids into contiguous runs, so
        the routing cost is O(P log P) in the pair count and independent of
        how many segments exist (a per-segment mask scan would be O(P x S)).
        """
        if len(rows) == 0:
            return
        segment_ids = self.segment_of(rows)
        order = np.argsort(segment_ids, kind="stable")
        boundaries = np.flatnonzero(np.diff(segment_ids[order])) + 1
        for positions in np.split(order, boundaries):
            yield self._segments[segment_ids[positions[0]]], positions

    def ensure_hashes(self, n_hashes: int) -> None:
        """Extend every segment's store to at least ``n_hashes`` hashes."""
        for segment in self._segments:
            segment.ensure_hashes(n_hashes)

    # ------------------------------------------------------------------ #
    # batched kernels (segment-routed, bit-identical to monolithic)
    # ------------------------------------------------------------------ #
    def band_keys_many(
        self, rows: np.ndarray, band: int, band_width: int
    ) -> np.ndarray:
        """Band contents for global ``rows``, stitched across segments.

        The segment-routed twin of
        :meth:`~repro.hashing.signatures.SignatureStore.band_keys_many`:
        every segment gathers its own rows with the store kernel, and the
        parts are scattered back into argument order.  Because band keys
        are row-local, the result equals a monolithic store's gather bit
        for bit — which is what lets :class:`~repro.candidates.lsh_index.BandPostings`
        build and probe over a segmented store unchanged (this object is
        duck-typed as the postings' store).
        """
        rows = np.asarray(rows, dtype=np.int64)
        if not self._segments:
            raise ValueError(
                "cannot gather band keys from a segmented collection with no segments"
            )
        if len(rows) == 0:
            # Delegate to a segment so the empty gather has the store's real
            # shape and dtype (packed words for bit stores, ints for minhash).
            segment = self._segments[0]
            segment.ensure_hashes((band + 1) * band_width)
            return segment.store.band_keys_many(rows, band, band_width)
        result: np.ndarray | None = None
        for segment, positions in self._grouped(rows):
            segment.ensure_hashes((band + 1) * band_width)
            part = segment.store.band_keys_many(
                rows[positions] - segment.offset, band, band_width
            )
            if result is None:
                result = np.empty((len(rows), part.shape[1]), dtype=part.dtype)
            result[positions] = part
        assert result is not None
        return result

    def count_matches_cross(
        self,
        other_store: SignatureStore,
        other_rows: np.ndarray,
        rows: np.ndarray,
        start: int,
        end: int,
    ) -> np.ndarray:
        """Hash agreements between ``other_store`` rows and global ``rows`` here.

        The segment-offset-aware twin of
        :meth:`~repro.hashing.signatures.SignatureStore.count_matches_cross`:
        entry ``p`` counts hashes in ``[start, end)`` on which row
        ``other_rows[p]`` of ``other_store`` (typically a query batch's
        store) agrees with global row ``rows[p]`` of this collection.  Only
        segments that actually own pairs are extended to ``end`` hashes —
        the round-lazy hashing pattern of the BayesLSH verifier carries
        over per segment.  Counts are per-pair and row-local, hence
        independent of the segment layout.
        """
        other_rows = np.asarray(other_rows, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        result = np.zeros(len(rows), dtype=np.int64)
        for segment, positions in self._grouped(rows):
            store = segment.ensure_hashes(end)
            result[positions] = store.count_matches_cross(
                rows[positions] - segment.offset,
                other_store,
                other_rows[positions],
                start,
                end,
            )
        return result

    def cross_similarities(
        self,
        query_prepared: VectorCollection,
        query_rows: np.ndarray,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Exact similarities between query rows and global collection rows.

        Segment-routed :func:`~repro.verification.base.cross_similarities_for_pairs`:
        each segment runs the vectorised cross kernel on its own prepared
        view with local row indices.  Exact similarities are row-local, so
        the values equal the monolithic kernel's bit for bit.
        """
        query_rows = np.asarray(query_rows, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        result = np.zeros(len(rows), dtype=np.float64)
        for segment, positions in self._grouped(rows):
            result[positions] = cross_similarities_for_pairs(
                query_prepared,
                segment.prepared,
                self._measure,
                query_rows[positions],
                rows[positions] - segment.offset,
            )
        return result

    # ------------------------------------------------------------------ #
    # consolidation
    # ------------------------------------------------------------------ #
    def to_collection(self) -> VectorCollection:
        """The segments merged into one monolithic :class:`VectorCollection`.

        This is the O(N) operation ingest no longer performs; it exists for
        interoperability (handing the corpus to the all-pairs pipelines,
        compaction) and is never on the serving hot path.
        """
        if not self._segments:
            return VectorCollection(
                sp.csr_matrix((0, self._n_features), dtype=np.float64)
            )
        if len(self._segments) == 1:
            only = self._segments[0]
            return VectorCollection(only.collection.matrix, ids=self.ids)
        matrix = sp.vstack(
            [segment.collection.matrix for segment in self._segments], format="csr"
        )
        return VectorCollection(matrix, ids=self.ids)
