"""Write-ahead log for the serving index's mutation stream.

Snapshots (:mod:`repro.serving.snapshot`) make the index durable at
*checkpoint* granularity; every ``insert``/``delete`` accepted between
snapshots lives only in RAM, so a crash silently loses acknowledged
mutations.  This module closes that gap with a classic write-ahead log:
:class:`~repro.search.query.QueryIndex` appends one record per mutation
batch — under its update lock, **before** touching any in-memory state —
and recovery replays the log's tail on top of the newest snapshot.

Because the whole serving stack is deterministic (one RNG authority, the
mutation order serialised by the update lock, resolved ids logged rather
than re-derived), replay is **bit-identical**: the recovered index has the
same segment layout, the same hash-family RNG position and answers every
query with the same ``(id, similarity)`` pairs as the uncrashed original —
the snapshot bit-identity contract extended to the live mutation stream
(proven by ``tests/serving/test_wal.py`` and the SIGKILL matrix in
``tests/faults/test_wal_faults.py``).

On-disk format
--------------
A WAL is a directory of generation-numbered segment files::

    wal/
      wal-00000001.log
      wal-00000002.log        # the active segment (highest number)

Each segment starts with a fixed file header — magic ``REPROWAL``, format
version, and the segment's own number (cross-checked against the file name
so a renamed or misplaced file can never replay) — followed by a stream of
CRC-framed records.  A record is a little-endian header::

    4s  magic "WRL1"
    B   record type (1 = insert, 2 = delete)
    Q   sequence number (global, contiguous across segments)
    Q   payload length in bytes
    I   CRC32 of the payload
    I   CRC32 of the 25 header bytes above

followed by the payload: one JSON descriptor line (array names, dtypes,
shapes) and the arrays' raw C-order bytes.  Insert payloads carry the
batch's canonical CSR components plus the *resolved* external ids (so a
default-id insert replays to the same ids without consulting any counter);
delete payloads carry the validated row indices.  Each record is written
with a single unbuffered ``write`` call, so a crash leaves either a whole
record or a strict prefix of one.

Corruption taxonomy
-------------------
The two CRCs split every damage pattern into exactly two cases:

* **torn tail** — the *final* segment ends mid-record (partial header, or
  payload shorter than the validated header declares).  That is the
  expected residue of a crash mid-append: the record was never
  acknowledged, so recovery truncates it away (atomically, through the
  ``wal_replace`` seam) and replays the intact prefix.
* **interior corruption** — a bad record magic, a header- or payload-CRC
  mismatch, a sequence gap, or a torn record in a *sealed* segment.  No
  crash produces these; they mean the log itself is damaged, and replay
  refuses with the serving layer's typed
  :class:`~repro.serving.snapshot.SnapshotCorruptError` rather than
  recover wrong data.  (The header CRC is what keeps a bit-flipped length
  field from masquerading as a torn tail.)

Durability policy
-----------------
``fsync="always"`` fsyncs after every record — an acknowledged mutation
survives power loss (RPO = 0).  ``fsync="batch"`` fsyncs every
``sync_every`` records plus at every seal/roll — bounded loss on power
failure, nothing lost on a process crash (the page cache survives a
SIGKILL).  ``fsync="off"`` never fsyncs — process-crash durability only.
The measured ingest overhead of each policy is reported by
``benchmarks/multicore_smoke.py`` (``wal_recovery_smoke``) and tabulated
in ``docs/serving.md``.

Checkpoints
-----------
``save_query_index`` on a WAL-attached index first :meth:`rolls
<WriteAheadLog.roll>` the log — sealing the active segment and opening a
fresh one — and stamps the new segment number into the snapshot meta
(``wal_segment``).  Replay on top of that snapshot starts at the stamped
segment; :class:`~repro.serving.snapshot.SnapshotStore` prunes segments
older than what its *retained* snapshots reference, so rollback to any
kept snapshot always finds its tail.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path

import numpy as np

from repro.datasets.io import atomic_writer, collection_arrays, collection_from_arrays, fsync_directory
from repro.similarity.vectors import VectorCollection
from repro.testing import faults as _faults

__all__ = ["WAL_VERSION", "WriteAheadLog"]

#: magic bytes opening every WAL segment file
WAL_MAGIC = b"REPROWAL"
#: current WAL format version
WAL_VERSION = 1

#: segment file header: magic, format version, segment number
_FILE_HEADER = struct.Struct("<8sIQ")
#: record header *before* its own CRC: magic, type, seq, payload len, payload CRC
_RECORD_HEADER = struct.Struct("<4sBQQI")
_HEADER_CRC = struct.Struct("<I")
#: full framed header size (record header + header CRC)
_HEADER_SIZE = _RECORD_HEADER.size + _HEADER_CRC.size
_RECORD_MAGIC = b"WRL1"

#: record types
_INSERT, _DELETE = 1, 2


def _corrupt(path, detail: str):
    """The serving layer's typed snapshot error (imported lazily — this
    module sits below :mod:`repro.serving.snapshot` in the import order)."""
    from repro.serving.snapshot import SnapshotCorruptError

    return SnapshotCorruptError(path, detail)


def _segment_name(number: int) -> str:
    """File name of WAL segment ``number`` (``wal-NNNNNNNN.log``)."""
    return f"wal-{number:08d}.log"


def _segment_number(path: Path) -> int | None:
    """Parse a segment file's number from its name (``None`` if not a segment)."""
    name = path.name
    if not (name.startswith("wal-") and name.endswith(".log")):
        return None
    digits = name[len("wal-"):-len(".log")]
    if not digits.isdigit():
        return None
    return int(digits)


def _encode_arrays(kind: str, arrays: dict) -> bytes:
    """Pack named arrays as one payload: JSON descriptor line + raw bytes.

    Any fixed-width dtype round-trips (integers, floats, booleans,
    fixed-width unicode ids); ``object`` arrays have no defined byte layout
    and are rejected with ``ValueError`` at append time — before the record
    is written, so a failed append never leaves a half-logged mutation.
    """
    descriptors = []
    chunks = []
    for name, value in arrays.items():
        value = np.ascontiguousarray(value)
        if value.dtype.hasobject:
            raise ValueError(
                f"cannot WAL-encode {kind} array {name!r} with dtype object; "
                "use fixed-width ids (integers or strings)"
            )
        descriptors.append(
            {"name": name, "dtype": value.dtype.str, "shape": list(value.shape)}
        )
        chunks.append(value.tobytes())
    line = json.dumps({"kind": kind, "arrays": descriptors}).encode("utf-8")
    return line + b"\n" + b"".join(chunks)


def _decode_arrays(payload: bytes, path, seq: int) -> tuple[str, dict]:
    """Unpack a record payload back into ``(kind, {name: array})``.

    The payload CRC already verified the bytes; failures here mean a
    malformed descriptor (e.g. a record written by incompatible code) and
    raise the typed corruption error.
    """
    newline = payload.find(b"\n")
    if newline < 0:
        raise _corrupt(path, f"record {seq}: payload has no descriptor line")
    try:
        descriptor = json.loads(payload[:newline].decode("utf-8"))
        kind = descriptor["kind"]
        entries = descriptor["arrays"]
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise _corrupt(path, f"record {seq}: malformed payload descriptor ({exc})") from exc
    arrays: dict[str, np.ndarray] = {}
    offset = newline + 1
    for entry in entries:
        try:
            name = str(entry["name"])
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(n) for n in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _corrupt(path, f"record {seq}: malformed array entry ({exc})") from exc
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        chunk = payload[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise _corrupt(
                path,
                f"record {seq}: array {name!r} needs {nbytes} bytes, "
                f"{len(chunk)} remain in the payload",
            )
        arrays[name] = np.frombuffer(chunk, dtype=dtype).reshape(shape)
        offset += nbytes
    return kind, arrays


class WriteAheadLog:
    """An append-only, CRC-framed log of index mutations in a directory.

    Parameters
    ----------
    directory:
        Directory holding the segment files (created if missing).  Opening
        scans the existing segments — repairing a torn tail on the active
        one — and resumes the global sequence numbering where it left off.
    fsync:
        Durability policy: ``"always"`` (fsync per record — acknowledged
        means power-loss durable), ``"batch"`` (fsync every ``sync_every``
        records and at every seal/roll) or ``"off"`` (never; the OS page
        cache still makes records survive a process crash).
    sync_every:
        Batch-policy fsync interval in records.

    Thread safety: appends, rolls and prunes serialise on an internal lock
    (the index's update lock already serialises the mutators; the WAL lock
    additionally covers checkpoint rolls racing ``stats`` readers).
    """

    def __init__(self, directory, fsync: str = "always", sync_every: int = 64):
        if fsync not in ("always", "batch", "off"):
            raise ValueError(
                f"fsync must be 'always', 'batch' or 'off', got {fsync!r}"
            )
        if int(sync_every) < 1:
            raise ValueError(f"sync_every must be at least 1, got {sync_every}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._sync_every = int(sync_every)
        self._lock = threading.RLock()
        self._handle = None
        self._active_segment = 0
        self._next_seq = 1
        self._n_records = 0
        self._unsynced = 0
        self._counters = {
            "appends": 0,
            "syncs": 0,
            "rolls": 0,
            "pruned_segments": 0,
            "repaired_tails": 0,
        }
        self._open_active()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The directory holding the segment files."""
        return self._directory

    @property
    def fsync_policy(self) -> str:
        """The configured durability policy (``always``/``batch``/``off``)."""
        return self._fsync

    @property
    def active_segment(self) -> int:
        """Number of the segment currently receiving appends."""
        return self._active_segment

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when empty)."""
        return self._next_seq - 1

    def has_records(self) -> bool:
        """True when any segment holds at least one record."""
        return self._n_records > 0

    def stats(self) -> dict:
        """Durability counters: segment/record/byte totals and sync activity.

        ``bytes`` is the on-disk footprint of every live segment file;
        ``records`` counts records across all segments (scanned at open,
        maintained incrementally after); ``unsynced_records`` is the batch
        policy's current fsync debt.
        """
        with self._lock:
            paths = self._segment_paths()
            total_bytes = 0
            for path in paths:
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
            return {
                "directory": str(self._directory),
                "fsync": self._fsync,
                "sync_every": self._sync_every,
                "segments": len(paths),
                "active_segment": self._active_segment,
                "records": self._n_records,
                "bytes": total_bytes,
                "last_seq": self.last_seq,
                "unsynced_records": self._unsynced,
                **self._counters,
            }

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def append_insert(self, collection, ids) -> int:
        """Log one insert batch (canonical CSR + resolved ids); returns its seq.

        Called by ``QueryIndex.insert`` under the update lock *before* any
        in-memory state changes, with the ids already resolved — replay
        re-applies exactly these rows under exactly these ids, independent
        of any counter state.  An encoding or I/O failure propagates before
        the index mutates, so the log and the index can never disagree.
        """
        packed = collection_arrays(
            VectorCollection(collection.matrix, ids=np.asarray(ids)), prefix=""
        )
        return self._append(_INSERT, _encode_arrays("insert", packed))

    def append_delete(self, rows) -> int:
        """Log one delete batch (validated row indices); returns its seq."""
        arrays = {"rows": np.asarray(rows, dtype=np.int64)}
        return self._append(_DELETE, _encode_arrays("delete", arrays))

    def _append(self, record_type: int, payload: bytes) -> int:
        """Frame and write one record; fire the seams; apply the fsync policy."""
        with self._lock:
            if self._handle is None:
                raise ValueError("write-ahead log is closed")
            seq = self._next_seq
            header = _RECORD_HEADER.pack(
                _RECORD_MAGIC, record_type, seq, len(payload), zlib.crc32(payload)
            )
            record = header + _HEADER_CRC.pack(zlib.crc32(header)) + payload
            self._handle.write(record)
            self._next_seq = seq + 1
            self._n_records += 1
            self._counters["appends"] += 1
            self._unsynced += 1
            _faults.fire("wal_append", wal=self, path=self._active_path(), seq=seq)
            if self._fsync == "always" or (
                self._fsync == "batch" and self._unsynced >= self._sync_every
            ):
                self._sync_locked()
            return seq

    def sync(self) -> None:
        """Force an fsync of the active segment (a no-op when already clean)."""
        with self._lock:
            if self._handle is not None and self._unsynced:
                self._sync_locked()

    def _sync_locked(self) -> None:
        os.fsync(self._handle.fileno())
        self._counters["syncs"] += 1
        self._unsynced = 0
        _faults.fire(
            "wal_fsync", wal=self, path=self._active_path(), seq=self.last_seq
        )

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def roll(self) -> int:
        """Seal the active segment and open the next one; returns its number.

        The checkpoint primitive: ``save_query_index`` rolls first and
        stamps the returned number into the snapshot meta, so everything
        the snapshot already contains lives in segments *before* it and
        everything after the snapshot lands in segments *from* it.  The
        sealed segment gets a final fsync (unless the policy is ``off``)
        and the new segment's header is fsynced before the roll returns.
        """
        with self._lock:
            if self._handle is None:
                raise ValueError("write-ahead log is closed")
            if self._fsync != "off" and self._unsynced:
                self._sync_locked()
            self._handle.close()
            self._handle = None
            number = self._active_segment + 1
            self._create_segment(number)
            self._counters["rolls"] += 1
            return number

    def prune(self, keep_from_segment: int) -> int:
        """Unlink segments numbered below ``keep_from_segment``; returns count.

        Never touches the active segment.  :class:`SnapshotStore` calls
        this after a successful save with the minimum ``wal_segment`` its
        retained snapshots reference, so every snapshot that can still be
        rolled back to keeps its replay tail.
        """
        with self._lock:
            cutoff = min(int(keep_from_segment), self._active_segment)
            removed = 0
            for path in self._segment_paths():
                number = _segment_number(path)
                if number is not None and number < cutoff:
                    records, _ = self._read_segment(path, final=False, repair=False)
                    self._n_records -= len(records)
                    path.unlink()
                    removed += 1
            if removed:
                fsync_directory(self._directory)
                self._counters["pruned_segments"] += removed
            return removed

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def records(self, start_segment: int = 1):
        """Yield ``(seq, kind, arrays)`` for every record from ``start_segment`` on.

        ``kind`` is ``"insert"`` (arrays: the canonical CSR components and
        ``ids``) or ``"delete"`` (arrays: ``rows``).  A torn tail on the
        final segment is truncated — physically repaired through the
        ``wal_replace`` atomic-writer seam — before its records are
        yielded; any interior corruption (CRC mismatch, bad magic, a
        sequence gap, a torn *sealed* segment) raises
        :class:`~repro.serving.snapshot.SnapshotCorruptError`.
        """
        with self._lock:
            paths = [
                path
                for path in self._segment_paths()
                if _segment_number(path) >= int(start_segment)
            ]
        previous_seq = None
        for position, path in enumerate(paths):
            final = position == len(paths) - 1
            records, _ = self._read_segment(path, final=final, repair=final)
            for seq, record_type, payload in records:
                if previous_seq is not None and seq != previous_seq + 1:
                    raise _corrupt(
                        path,
                        f"sequence gap: record {seq} follows {previous_seq}",
                    )
                previous_seq = seq
                kind, arrays = _decode_arrays(payload, path, seq)
                expected = "insert" if record_type == _INSERT else "delete"
                if kind != expected:
                    raise _corrupt(
                        path,
                        f"record {seq}: type byte says {expected!r} but the "
                        f"payload descriptor says {kind!r}",
                    )
                yield seq, kind, arrays

    def replay_collection(self, arrays) -> VectorCollection:
        """Rebuild an insert record's collection from its decoded arrays.

        Uses the trusted restore path — the components were canonical when
        logged — so replay inserts exactly the matrix the original insert
        sealed.
        """
        return collection_from_arrays(arrays, prefix="", trusted=True)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush (per policy), fsync and close the active segment (idempotent)."""
        with self._lock:
            handle = self._handle
            self._handle = None
            if handle is not None:
                if self._fsync != "off" and self._unsynced:
                    os.fsync(handle.fileno())
                    self._counters["syncs"] += 1
                    self._unsynced = 0
                handle.close()

    def __enter__(self) -> "WriteAheadLog":
        """Context-manager entry: the opened log."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------ #
    # segment files
    # ------------------------------------------------------------------ #
    def _segment_paths(self) -> list[Path]:
        """Live segment files, ordered by segment number."""
        paths = [
            path
            for path in self._directory.iterdir()
            if _segment_number(path) is not None
        ]
        return sorted(paths, key=_segment_number)

    def _active_path(self) -> Path:
        return self._directory / _segment_name(self._active_segment)

    def _create_segment(self, number: int) -> None:
        """Write and fsync a fresh segment's file header; open it for append."""
        path = self._directory / _segment_name(number)
        with open(path, "wb") as handle:
            handle.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION, number))
            handle.flush()
            os.fsync(handle.fileno())
        fsync_directory(self._directory)
        self._handle = open(path, "ab", buffering=0)
        self._active_segment = number
        self._unsynced = 0

    def _open_active(self) -> None:
        """Scan existing segments, repair the active tail, resume numbering."""
        paths = self._segment_paths()
        if not paths:
            self._create_segment(1)
            return
        last_seq = 0
        total = 0
        for position, path in enumerate(paths):
            final = position == len(paths) - 1
            records, _ = self._read_segment(path, final=final, repair=final)
            total += len(records)
            if records:
                last_seq = records[-1][0]
        self._n_records = total
        # All-empty segments (a fresh log, or everything checkpointed away
        # and pruned) restart the numbering at 1 — with no surviving record
        # to collide with, contiguity is vacuously preserved.
        self._next_seq = last_seq + 1
        number = _segment_number(paths[-1])
        self._handle = open(self._directory / _segment_name(number), "ab", buffering=0)
        self._active_segment = number
        self._unsynced = 0

    def _read_segment(self, path: Path, final: bool, repair: bool):
        """Validate one segment; returns ``(records, torn_offset)``.

        ``records`` is a list of ``(seq, type, payload)`` tuples.  With
        ``final`` (the active segment) a torn tail is legal and — with
        ``repair`` — truncated in place through the ``wal_replace``
        atomic-writer seam; torn tails elsewhere, and every CRC/magic
        failure anywhere, raise the typed corruption error.
        """
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise _corrupt(path, f"unreadable segment ({exc})") from exc

        def torn(offset: int, detail: str):
            if not final:
                raise _corrupt(path, f"torn record in a sealed segment: {detail}")
            if repair:
                self._repair_tail(path, data, offset)
            return records, offset

        if len(data) < _FILE_HEADER.size:
            if not final:
                raise _corrupt(path, "segment shorter than its file header")
            records: list = []
            if repair:
                self._repair_tail(path, data, 0, rebuild_header=True)
            return records, 0
        magic, version, declared = _FILE_HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise _corrupt(path, "missing WAL magic — not a WAL segment")
        if version != WAL_VERSION:
            raise ValueError(
                f"WAL version {version} is not supported "
                f"(this build reads version {WAL_VERSION})"
            )
        if declared != _segment_number(path):
            raise _corrupt(
                path,
                f"segment header says number {declared}, file name says "
                f"{_segment_number(path)}",
            )
        records = []
        offset = _FILE_HEADER.size
        while offset < len(data):
            remaining = len(data) - offset
            if remaining < _HEADER_SIZE:
                return torn(offset, f"{remaining} bytes of record header at EOF")
            header = data[offset : offset + _RECORD_HEADER.size]
            (stored_header_crc,) = _HEADER_CRC.unpack_from(
                data, offset + _RECORD_HEADER.size
            )
            if zlib.crc32(header) != stored_header_crc:
                raise _corrupt(
                    path, f"record header checksum mismatch at offset {offset}"
                )
            rec_magic, record_type, seq, payload_len, payload_crc = (
                _RECORD_HEADER.unpack(header)
            )
            if rec_magic != _RECORD_MAGIC:
                raise _corrupt(path, f"bad record magic at offset {offset}")
            if record_type not in (_INSERT, _DELETE):
                raise _corrupt(
                    path, f"record {seq}: unknown record type {record_type}"
                )
            body_start = offset + _HEADER_SIZE
            if payload_len > len(data) - body_start:
                return torn(
                    offset,
                    f"record {seq} declares {payload_len} payload bytes, "
                    f"{len(data) - body_start} present",
                )
            payload = data[body_start : body_start + payload_len]
            if zlib.crc32(payload) != payload_crc:
                raise _corrupt(path, f"record {seq}: payload checksum mismatch")
            records.append((seq, record_type, payload))
            offset = body_start + payload_len
        return records, None

    def _repair_tail(
        self, path: Path, data: bytes, offset: int, rebuild_header: bool = False
    ) -> None:
        """Truncate a torn tail atomically (temp + fsync + rename).

        Rewrites the segment as its intact prefix through the shared
        atomic writer, firing the ``wal_replace`` seam in the write→rename
        window.  A crash mid-repair leaves the original file — still torn,
        still repairable — never a half-truncated one.  If the repaired
        segment is the open active one, the append handle is reopened so
        subsequent appends extend the repaired file.
        """
        with self._lock:
            prefix = (
                _FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION, _segment_number(path))
                if rebuild_header
                else data[:offset]
            )
            reopen = (
                self._handle is not None
                and _segment_number(path) == self._active_segment
            )
            if reopen:
                self._handle.close()
                self._handle = None
            with atomic_writer(path, event="wal_replace") as handle:
                handle.write(prefix)
            self._counters["repaired_tails"] += 1
            if reopen:
                self._handle = open(path, "ab", buffering=0)
