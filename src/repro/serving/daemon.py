"""Resident serving daemon: coalesce concurrent single-query traffic.

The batched entry points (``query_many``/``top_k_many``) are ~16x cheaper
per query than a loop of single calls, but that win only materialises in
production if *concurrent* traffic is batched server-side.  This module is
that server: :class:`ServingDaemon` listens on a unix socket, admits
single-query requests from many concurrent clients, and coalesces them
under a latency budget into batched index calls — every answer stays
bit-identical to the serial path (the daemon only changes *how* requests
are grouped, never how any pair is decided, and JSON's shortest-round-trip
float encoding is exact over the wire).

Operational behaviour, in the order a request experiences it:

* **admission control** — a bounded queue (``max_queue``); a full queue
  rejects with the typed :class:`Overloaded` error instead of queueing
  unboundedly, and a draining daemon rejects with :class:`Draining`;
* **coalescing** — the batcher waits up to ``batch_window_ms`` after the
  first queued request to gather at most ``max_batch`` of them, then
  executes each (kind, parameters) group as one batched call;
* **graceful degradation** — past ``shed_threshold`` queued requests,
  ``top_k`` requests asking for ``rank_by="exact"`` are shed to
  ``"estimate"`` (marked ``degraded`` in the response): estimate ranking
  reuses hash agreements instead of touching raw vectors, trading the
  documented accuracy envelope for latency under pressure;
* **deadlines** — a per-request ``deadline_ms`` is enforced at dispatch
  (expired requests never execute), propagated into the batch's
  ``round_timeout`` (a hung worker cannot stall past the tightest
  deadline), and re-checked at completion; a missed deadline is the typed
  :class:`DeadlineExceeded` error;
* **durable ingest** — ``insert``/``delete`` ops run through the index's
  mutators on the daemon's single executor thread (serialising with query
  batches); with a WAL attached to the index every acknowledged mutation
  is recoverable after a SIGKILL (see :mod:`repro.serving.wal`), and an
  ``idempotency_key`` on the request makes client retries apply at most
  once (replayed responses come from a bounded in-daemon cache);
* **ops endpoints** — ``health``/``ready`` (degraded to not-ready while a
  WAL replay is recovering the index), ``stats`` (including the resident
  pool's health dict and the durability block: WAL bytes/records, fsync
  policy, last checkpoint, replay counters), ``snapshot`` and
  ``checkpoint`` (through a configured
  :class:`~repro.serving.snapshot.SnapshotStore`; a checkpoint seals and
  prunes the WAL), ``wal_stats`` and ``drain`` (reject new work, finish
  everything admitted, then shut down).

The wire protocol is JSON lines (one request object per line, one response
object per line) — see :class:`~repro.serving.client.DaemonClient` for the
matching client.  See ``docs/serving.md`` ("Running the daemon") for the
knob-by-knob ops guide.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.testing import faults as _faults

__all__ = [
    "DaemonError",
    "DeadlineExceeded",
    "Draining",
    "Overloaded",
    "ServingDaemon",
    "decode_vector",
    "encode_vector",
]


class DaemonError(RuntimeError):
    """Base class for daemon-side request failures surfaced to clients."""


class Overloaded(DaemonError):
    """The daemon's admission queue is full; the request was rejected.

    Back off and retry: the request was never admitted, so retrying cannot
    duplicate work.
    """


class Draining(DaemonError):
    """The daemon is draining for shutdown and admits no new requests."""


class DeadlineExceeded(DaemonError):
    """The request's deadline expired before a result could be returned.

    Raised whether the deadline expired while queued (the request never
    executed) or mid-execution (the result was computed too late and is
    withheld for consistency — a deadline is a promise, not a hint).
    """


def encode_vector(vector) -> dict:
    """Encode one query vector as a JSON-safe wire object.

    Three forms are supported, mirroring what the index accepts:

    * a dense row (list/1-D array of floats) → ``{"dense": [...]}``;
    * a token-id set (set/list of ints) → ``{"tokens": [...]}``;
    * a sparse row → ``{"sparse": {"indices": [...], "values": [...]}}``.

    All three decode to the same canonical CSR row the in-process API
    builds, so daemon answers are bit-identical to calling the index
    directly with the original vector.
    """
    if isinstance(vector, dict) and (
        set(vector) & {"dense", "tokens", "sparse"}
    ):
        return vector  # already wire-encoded
    if isinstance(vector, (set, frozenset)):
        return {"tokens": sorted(int(t) for t in vector)}
    if sp.issparse(vector):
        row = vector.tocsr()
        if row.shape[0] != 1:
            raise ValueError(f"expected a single vector, got {row.shape[0]} rows")
        return {
            "sparse": {
                "indices": [int(i) for i in row.indices],
                "values": [float(v) for v in row.data],
            }
        }
    array = np.asarray(vector)
    if array.ndim == 1 and array.size and np.issubdtype(array.dtype, np.integer):
        return {"tokens": sorted(int(t) for t in array)}
    return {"dense": [float(v) for v in np.atleast_1d(array.astype(np.float64))]}


def decode_vector(wire: dict, n_features: int) -> sp.csr_matrix:
    """Decode a wire vector object into one canonical CSR row.

    The inverse of :func:`encode_vector`, pinned to the index's feature
    space.  Raises ``ValueError`` for malformed objects (surfaced to the
    client as a ``bad_request`` error, never a dropped connection).
    """
    if not isinstance(wire, dict):
        raise ValueError("vector must be an object with dense/tokens/sparse")
    if "dense" in wire:
        row = np.asarray(wire["dense"], dtype=np.float64)
        if row.ndim != 1 or len(row) != n_features:
            raise ValueError(
                f"dense vector must have {n_features} entries, got {row.shape}"
            )
        return sp.csr_matrix(row)
    if "tokens" in wire:
        tokens = np.unique(np.asarray(wire["tokens"], dtype=np.int64))
        if len(tokens) and (tokens[0] < 0 or tokens[-1] >= n_features):
            raise ValueError(f"token ids must lie in [0, {n_features})")
        data = np.ones(len(tokens), dtype=np.float64)
        indptr = np.array([0, len(tokens)], dtype=np.int64)
        return sp.csr_matrix((data, tokens, indptr), shape=(1, n_features))
    if "sparse" in wire:
        spec = wire["sparse"]
        indices = np.asarray(spec["indices"], dtype=np.int64)
        values = np.asarray(spec["values"], dtype=np.float64)
        if len(indices) != len(values):
            raise ValueError("sparse indices and values must have equal length")
        if len(indices) and (indices.min() < 0 or indices.max() >= n_features):
            raise ValueError(f"sparse indices must lie in [0, {n_features})")
        indptr = np.array([0, len(indices)], dtype=np.int64)
        return sp.csr_matrix((values, indices, indptr), shape=(1, n_features))
    raise ValueError("vector object needs one of: dense, tokens, sparse")


@dataclass
class _Request:
    """One admitted query request travelling through the batcher."""

    kind: str  # "query" | "top_k"
    row: sp.csr_matrix
    params: dict
    future: asyncio.Future
    deadline: float | None  # absolute loop time, None = no deadline
    degraded: bool = field(default=False)


class ServingDaemon:
    """Socket server coalescing single-query requests into batched calls.

    Parameters
    ----------
    index:
        The :class:`~repro.search.query.QueryIndex` to serve.  Batched
        calls leave ``n_workers`` unset, so they run on the index's
        resident pool when one is attached (see ``pool_workers``).
    socket_path:
        Unix-domain socket path to listen on (created at :meth:`start`,
        unlinked at :meth:`stop`).
    batch_window_ms:
        How long the batcher waits after the first queued request for more
        to coalesce with (the latency cost of batching, paid only under
        concurrency).
    max_batch:
        Upper bound on requests coalesced into one batched call.
    max_queue:
        Admission bound: requests beyond this many queued are rejected
        with :class:`Overloaded`.
    shed_threshold:
        Outstanding-request depth (still queued plus the batch being
        dispatched) at which ``top_k(rank_by="exact")`` requests are shed
        to estimate ranking (``None`` defaults to half of ``max_queue``;
        shedding requires the index's ``verification="bayes"``).
    default_deadline_ms:
        Deadline applied to requests that do not carry their own
        (``None`` = no implicit deadline).
    pool_workers:
        When set, :meth:`start` attaches a resident pool of this many
        workers to the index (``index.start_pool``) and :meth:`stop`
        closes it — the daemon owns the pool.  Leave ``None`` to serve on
        whatever the index already has (resident pool or serial).
    snapshot_store:
        A :class:`~repro.serving.snapshot.SnapshotStore` (or a directory
        path for one) backing the ``snapshot`` ops endpoint; ``None``
        disables the endpoint.
    """

    def __init__(
        self,
        index,
        socket_path,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 128,
        shed_threshold: int | None = None,
        default_deadline_ms: float | None = None,
        pool_workers: int | None = None,
        snapshot_store=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self._index = index
        self._socket_path = str(socket_path)
        self._batch_window = float(batch_window_ms) / 1000.0
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue)
        self._shed_threshold = (
            max(1, self._max_queue // 2) if shed_threshold is None else int(shed_threshold)
        )
        self._default_deadline = (
            None if default_deadline_ms is None else float(default_deadline_ms) / 1000.0
        )
        self._pool_workers = pool_workers
        self._owns_pool = False
        if snapshot_store is not None and not hasattr(snapshot_store, "save"):
            from repro.serving.snapshot import SnapshotStore

            snapshot_store = SnapshotStore(snapshot_store)
        self._snapshots = snapshot_store
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._queue: asyncio.Queue | None = None
        self._server = None
        self._batcher_task = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._draining = False
        self._inflight = 0
        self._last_checkpoint: str | None = None
        # Idempotency-key → response future; a retried mutation with the
        # same key awaits (or replays) the first execution instead of
        # re-applying.  Bounded FIFO — old keys age out.
        self._idempotency: OrderedDict[str, asyncio.Future] = OrderedDict()
        self._idempotency_limit = 1024
        self._stats = {
            "requests": 0,
            "batches": 0,
            "coalesced_batches": 0,
            "max_batch_observed": 0,
            "shed": 0,
            "rejected_overloaded": 0,
            "rejected_draining": 0,
            "deadline_misses": 0,
            "bad_requests": 0,
            "inserts": 0,
            "deletes": 0,
            "idempotent_hits": 0,
            "checkpoints": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle (called from the owning thread)
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingDaemon":
        """Start serving in a background thread; returns once listening.

        Attaches the daemon-owned resident pool first when ``pool_workers``
        is set.  Raises if the daemon was already started — a daemon is
        single-use (create a fresh one to serve again after :meth:`stop`).
        """
        if self._thread is not None:
            raise RuntimeError("daemon already started; daemons are single-use")
        if self._pool_workers is not None:
            self._index.start_pool(self._pool_workers)
            self._owns_pool = True
        self._thread = threading.Thread(
            target=self._thread_main, name="serving-daemon", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if not self._started.is_set():
            raise RuntimeError("daemon failed to start within 30s")
        return self

    def stop(self) -> None:
        """Stop the server, the batcher and the daemon-owned pool (idempotent).

        Pending futures are failed with :class:`Draining`; for a loss-free
        shutdown, :meth:`~repro.serving.client.DaemonClient.drain` first.
        """
        thread = self._thread
        if thread is None or self._stopped.is_set():
            self._close_owned_pool()
            return
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=30)
        self._stopped.set()
        self._close_owned_pool()

    def _close_owned_pool(self) -> None:
        """Close the resident pool if this daemon attached it."""
        if self._owns_pool:
            self._owns_pool = False
            self._index.close()

    def __enter__(self) -> "ServingDaemon":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`stop`."""
        self.stop()

    # ------------------------------------------------------------------ #
    # event-loop thread
    # ------------------------------------------------------------------ #
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        finally:
            self._started.set()  # unblock start() even on failure
            self._stopped.set()

    def _signal_stop(self) -> None:
        if self._stop_event is not None and not self._stop_event.is_set():
            self._stop_event.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop_event = asyncio.Event()
        # One executor thread: batches serialise on the resident pool's
        # lease anyway, and a single worker keeps index access single-file
        # without holding the event loop hostage.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="daemon-exec"
        )
        self._batcher_task = asyncio.ensure_future(self._batch_loop())
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self._socket_path
        )
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except (asyncio.CancelledError, Exception):
                pass
            self._drain_queue_with_error(Draining("daemon stopped"))
            self._executor.shutdown(wait=True)
            try:
                import os

                os.unlink(self._socket_path)
            except OSError:
                pass

    def _drain_queue_with_error(self, error: Exception) -> None:
        """Fail every still-queued request with ``error`` (loop thread)."""
        queue = self._queue
        while queue is not None and not queue.empty():
            request = queue.get_nowait()
            if not request.future.done():
                request.future.set_exception(error)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._handle_request(json.loads(line))
                except Exception as exc:  # never tear the connection
                    response = {"ok": False, "error": "error", "message": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("stop_after_reply"):
                    del response["stop_after_reply"]
                    self._signal_stop()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_request(self, request: dict) -> dict:
        op = request.get("op")
        if op in ("query", "top_k"):
            return await self._handle_query(op, request)
        if op in ("insert", "delete"):
            return await self._handle_ingest(op, request)
        if op == "health":
            replaying = bool(self._index.replaying)
            return {
                "ok": True,
                "serving": not self._draining and not replaying,
                "draining": self._draining,
                "replaying": replaying,
            }
        if op == "ready":
            ready = (
                self._batcher_task is not None
                and not self._batcher_task.done()
                and not self._index.replaying
            )
            return {
                "ok": ready,
                "ready": ready,
                "draining": self._draining,
                "replaying": bool(self._index.replaying),
            }
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "snapshot":
            return await self._handle_snapshot(request)
        if op == "checkpoint":
            return await self._handle_checkpoint(request)
        if op == "wal_stats":
            return {"ok": True, "wal": self._index.wal_stats()}
        if op == "drain":
            return await self._handle_drain()
        self._stats["bad_requests"] += 1
        return {"ok": False, "error": "bad_request", "message": f"unknown op {op!r}"}

    async def _handle_query(self, kind: str, request: dict) -> dict:
        if self._draining:
            self._stats["rejected_draining"] += 1
            return {
                "ok": False,
                "error": "draining",
                "message": "daemon is draining; no new requests admitted",
            }
        if self._queue.qsize() >= self._max_queue:
            self._stats["rejected_overloaded"] += 1
            return {
                "ok": False,
                "error": "overloaded",
                "message": (
                    f"admission queue is full ({self._max_queue} requests); "
                    "back off and retry"
                ),
            }
        try:
            row = decode_vector(
                request.get("vector"), self._index._segments.n_features
            )
            params = self._query_params(kind, request)
        except (ValueError, TypeError, KeyError) as exc:
            self._stats["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "message": str(exc)}
        deadline_ms = request.get("deadline_ms")
        deadline = (
            self._default_deadline
            if deadline_ms is None
            else float(deadline_ms) / 1000.0
        )
        loop = asyncio.get_running_loop()
        item = _Request(
            kind=kind,
            row=row,
            params=params,
            future=loop.create_future(),
            deadline=None if deadline is None else loop.time() + deadline,
        )
        self._stats["requests"] += 1
        _faults.fire("daemon_admit", daemon=self)
        self._queue.put_nowait(item)
        try:
            pairs = await item.future
        except DaemonError as exc:
            code = {
                Overloaded: "overloaded",
                DeadlineExceeded: "deadline",
                Draining: "draining",
            }.get(type(exc), "error")
            return {"ok": False, "error": code, "message": str(exc)}
        return {"ok": True, "result": pairs, "degraded": item.degraded}

    def _query_params(self, kind: str, request: dict) -> dict:
        """Validated per-request parameters (the batch grouping key)."""
        if kind == "query":
            threshold = request.get("threshold")
            return {"threshold": None if threshold is None else float(threshold)}
        rank_by = request.get("rank_by", "exact")
        if rank_by not in ("exact", "estimate"):
            raise ValueError(f"rank_by must be 'exact' or 'estimate', got {rank_by!r}")
        return {
            "k": int(request.get("k", 10)),
            "floor_threshold": float(request.get("floor_threshold", 0.1)),
            "rank_by": rank_by,
        }

    # ------------------------------------------------------------------ #
    # durable ingest
    # ------------------------------------------------------------------ #
    async def _handle_ingest(self, op: str, request: dict) -> dict:
        """Apply one ``insert``/``delete`` request, at most once per key.

        Mutations run on the single executor thread, so they serialise
        naturally with query batches.  With an ``idempotency_key`` on the
        request, the first execution parks a future in a bounded FIFO map:
        a retry that arrives *mid-execution* awaits that future (never
        re-applying), and a retry after completion replays the cached
        response.  Failed executions drop the key so a later retry can
        run the mutation for real.
        """
        if self._draining:
            self._stats["rejected_draining"] += 1
            return {
                "ok": False,
                "error": "draining",
                "message": "daemon is draining; no new requests admitted",
            }
        key = request.get("idempotency_key")
        if key is not None:
            cached = self._idempotency.get(key)
            if cached is not None:
                self._stats["idempotent_hits"] += 1
                return dict(await asyncio.shield(cached))
        try:
            call = self._ingest_call(op, request)
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            self._stats["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "message": str(exc)}
        loop = asyncio.get_running_loop()
        holder = None
        if key is not None:
            holder = loop.create_future()
            self._idempotency[str(key)] = holder
            while len(self._idempotency) > self._idempotency_limit:
                self._idempotency.popitem(last=False)
        _faults.fire("daemon_ingest", daemon=self, op=op)
        try:
            response = await loop.run_in_executor(self._executor, call)
        except Exception as exc:
            response = {"ok": False, "error": "error", "message": f"{op} failed: {exc}"}
            if holder is not None:
                # A failed mutation must not be "remembered" as done — drop
                # the key so a genuine retry re-executes; duplicates already
                # awaiting the holder still get this error response.
                self._idempotency.pop(str(key), None)
                holder.set_result(response)
            return response
        if holder is not None:
            holder.set_result(response)
        return response

    def _ingest_call(self, op: str, request: dict):
        """Validate an ingest request; return the executor-thread callable.

        Validation happens *before* any idempotency holder is created, so a
        malformed request is rejected without poisoning its key.
        """
        if op == "insert":
            vectors = request.get("vectors")
            if not isinstance(vectors, list) or not vectors:
                raise ValueError("insert needs a non-empty 'vectors' list")
            n_features = self._index._segments.n_features
            matrix = sp.vstack(
                [decode_vector(v, n_features) for v in vectors], format="csr"
            )
            ids = request.get("ids")
            if ids is not None:
                ids = [int(i) for i in ids]
                if len(ids) != matrix.shape[0]:
                    raise ValueError(
                        f"ids length {len(ids)} does not match "
                        f"{matrix.shape[0]} vectors"
                    )

            def call() -> dict:
                rows = self._index.insert(matrix, ids=ids)
                self._stats["inserts"] += 1
                return {"ok": True, "rows": [int(r) for r in rows]}

            return call
        rows_spec = request.get("rows")
        if not isinstance(rows_spec, list) or not rows_spec:
            raise ValueError("delete needs a non-empty 'rows' list")
        rows = np.asarray([int(r) for r in rows_spec], dtype=np.int64)

        def call() -> dict:
            deleted = self._index.delete(rows)
            self._stats["deletes"] += 1
            return {"ok": True, "deleted": int(deleted)}

        return call

    # ------------------------------------------------------------------ #
    # ops endpoints
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Current serving counters, knobs and resident-pool health."""
        return {
            **self._stats,
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "inflight": self._inflight,
            "draining": self._draining,
            "config": {
                "batch_window_ms": self._batch_window * 1000.0,
                "max_batch": self._max_batch,
                "max_queue": self._max_queue,
                "shed_threshold": self._shed_threshold,
                "default_deadline_ms": (
                    None
                    if self._default_deadline is None
                    else self._default_deadline * 1000.0
                ),
            },
            "pool": self._index.pool_stats(),
            "durability": {
                "wal": self._index.wal_stats(),
                "replay": self._index.replay_stats(),
                "last_checkpoint": self._last_checkpoint,
            },
        }

    async def _handle_snapshot(self, request: dict) -> dict:
        if self._snapshots is None:
            return {
                "ok": False,
                "error": "bad_request",
                "message": "no snapshot store configured",
            }
        layout = request.get("layout")
        if layout is not None and layout not in ("npz", "flat"):
            return {
                "ok": False,
                "error": "bad_request",
                "message": f"layout must be 'npz' or 'flat', got {layout!r}",
            }
        loop = asyncio.get_running_loop()
        path = await loop.run_in_executor(
            self._executor,
            functools.partial(self._snapshots.save, self._index, layout=layout),
        )
        self._last_checkpoint = str(path)
        return {"ok": True, "path": str(path)}

    async def _handle_checkpoint(self, request: dict) -> dict:
        """Persist a snapshot and (with a WAL attached) seal+prune the log.

        The snapshot machinery does the real work — ``save_query_index``
        rolls the WAL atomically with the payload capture and
        ``SnapshotStore.save`` prunes segments no retained snapshot needs —
        so this endpoint is ``snapshot`` plus the post-checkpoint WAL view
        in the response.
        """
        if self._index.wal is None:
            return {
                "ok": False,
                "error": "bad_request",
                "message": "no WAL attached to the index; use 'snapshot' instead",
            }
        response = await self._handle_snapshot(request)
        if not response.get("ok"):
            return response
        self._stats["checkpoints"] += 1
        response["wal"] = self._index.wal_stats()
        return response

    async def _handle_drain(self) -> dict:
        """Reject new work, finish everything admitted, then shut down."""
        self._draining = True
        while (self._queue is not None and not self._queue.empty()) or self._inflight:
            await asyncio.sleep(0.005)
        return {"ok": True, "drained": True, "stop_after_reply": True}

    # ------------------------------------------------------------------ #
    # batching
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        """Pull requests forever: one batch per wake-up, window-coalesced."""
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            batch = [await queue.get()]
            window_closes = loop.time() + self._batch_window
            while len(batch) < self._max_batch:
                remaining = window_closes - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            self._inflight += len(batch)
            try:
                await self._execute_batch(batch)
            finally:
                self._inflight -= len(batch)

    async def _execute_batch(self, batch: list) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._stats["batches"] += 1
        if len(batch) > 1:
            self._stats["coalesced_batches"] += 1
        self._stats["max_batch_observed"] = max(
            self._stats["max_batch_observed"], len(batch)
        )
        live: list[_Request] = []
        for item in batch:
            if item.deadline is not None and now >= item.deadline:
                self._stats["deadline_misses"] += 1
                item.future.set_exception(
                    DeadlineExceeded("deadline expired while queued")
                )
            else:
                live.append(item)
        if not live:
            return
        # QoS shedding: past the queue-depth threshold, exact top-k ranking
        # degrades to estimate ranking (documented accuracy-for-latency
        # trade; only meaningful under bayes verification).  Depth counts
        # outstanding work — still-queued requests plus this dispatch —
        # so a full batch pulled off the queue still registers as pressure.
        depth = self._queue.qsize() + len(live)
        if depth >= self._shed_threshold and self._index.verification == "bayes":
            for item in live:
                if item.kind == "top_k" and item.params["rank_by"] == "exact":
                    item.params["rank_by"] = "estimate"
                    item.degraded = True
                    self._stats["shed"] += 1
        resident = getattr(self._index, "_resident", None)
        _faults.fire(
            "daemon_batch",
            daemon=self,
            pool=None if resident is None else resident._pool,
            batch_size=len(live),
            round_index=self._stats["batches"] - 1,
        )
        groups: dict[tuple, list[_Request]] = {}
        for item in live:
            key = (item.kind, *sorted(item.params.items()))
            groups.setdefault(key, []).append(item)
        for members in groups.values():
            await self._execute_group(members, loop)

    async def _execute_group(self, members: list, loop) -> None:
        """Run one (kind, params) group as a single batched index call."""
        deadlines = [m.deadline for m in members if m.deadline is not None]
        round_timeout = None
        if deadlines:
            round_timeout = max(min(deadlines) - loop.time(), 0.001)
        matrix = sp.vstack([m.row for m in members], format="csr")
        first = members[0]
        if first.kind == "query":
            call = functools.partial(
                self._index.query_many,
                matrix,
                threshold=first.params["threshold"],
                round_timeout=round_timeout,
            )
        else:
            call = functools.partial(
                self._index.top_k_many,
                matrix,
                k=first.params["k"],
                floor_threshold=first.params["floor_threshold"],
                rank_by=first.params["rank_by"],
                round_timeout=round_timeout,
            )
        try:
            results = await loop.run_in_executor(self._executor, call)
        except Exception as exc:
            for member in members:
                if not member.future.done():
                    member.future.set_exception(
                        DaemonError(f"batched call failed: {exc}")
                    )
            return
        now = loop.time()
        for member, scored in zip(members, results):
            if member.future.done():
                continue
            if member.deadline is not None and now >= member.deadline:
                self._stats["deadline_misses"] += 1
                member.future.set_exception(
                    DeadlineExceeded("deadline expired during execution")
                )
                continue
            member.future.set_result(
                [[int(pair.j), float(pair.similarity)] for pair in scored]
            )
