"""Table 5: output quality while varying gamma, delta and epsilon.

The companion of Figure 2: on the WikiWords100K stand-in at threshold 0.7
with LSH candidate generation, each parameter is varied over
{0.01, 0.03, 0.05, 0.07, 0.09} (the other two held at 0.05) and the relevant
quality metric is reported:

* varying ``gamma``   -> fraction of estimates with error > 0.05 (should stay below gamma);
* varying ``delta``   -> mean absolute estimation error (should shrink with delta);
* varying ``epsilon`` -> recall (false-negative rate should stay below epsilon).
"""

from __future__ import annotations

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import error_statistics, recall as recall_metric
from repro.experiments.common import ExperimentResult, load_experiment_dataset
from repro.experiments.table4 import _exact_map_for_result
from repro.search.pipelines import make_pipeline

__all__ = ["run", "PARAMETER_VALUES"]

PARAMETER_VALUES: tuple[float, ...] = (0.01, 0.03, 0.05, 0.07, 0.09)
_DEFAULT = 0.05


def run(
    dataset_name: str = "wikiwords100k",
    scale: float = 0.5,
    threshold: float = 0.7,
    measure: str = "cosine",
    seed: int = 0,
    values=PARAMETER_VALUES,
    error_bound: float = 0.05,
) -> ExperimentResult:
    """Vary gamma / delta / epsilon one at a time and report the quality metrics."""
    dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed)
    truth = exact_all_pairs(dataset, threshold, measure)

    rows = []
    for value in values:
        value = float(value)
        row = [value]

        # gamma -> fraction of errors above the bound
        engine = make_pipeline(
            "lsh_bayeslsh",
            dataset,
            measure=measure,
            threshold=threshold,
            seed=seed,
            gamma=value,
            delta=_DEFAULT,
            epsilon=_DEFAULT,
        )
        search_result = engine.run(dataset)
        stats = error_statistics(
            search_result,
            exact_similarities=_exact_map_for_result(dataset, measure, search_result),
            error_bound=error_bound,
        )
        row.append(round(stats.fraction_above, 4))

        # delta -> mean error
        engine = make_pipeline(
            "lsh_bayeslsh",
            dataset,
            measure=measure,
            threshold=threshold,
            seed=seed,
            gamma=_DEFAULT,
            delta=value,
            epsilon=_DEFAULT,
        )
        search_result = engine.run(dataset)
        stats = error_statistics(
            search_result,
            exact_similarities=_exact_map_for_result(dataset, measure, search_result),
            error_bound=error_bound,
        )
        row.append(round(stats.mean_error, 4))

        # epsilon -> recall
        engine = make_pipeline(
            "lsh_bayeslsh",
            dataset,
            measure=measure,
            threshold=threshold,
            seed=seed,
            gamma=_DEFAULT,
            delta=_DEFAULT,
            epsilon=value,
        )
        search_result = engine.run(dataset)
        row.append(round(100.0 * recall_metric(search_result, truth), 2))

        rows.append(row)

    result = ExperimentResult(
        experiment_id="table5",
        title="Output quality while varying gamma, delta, epsilon one at a time",
        parameters={
            "dataset": dataset_name,
            "scale": scale,
            "threshold": threshold,
            "measure": measure,
            "seed": seed,
        },
    )
    result.add_table(
        "quality",
        headers=[
            "parameter value",
            "fraction errors > 0.05 (varying gamma)",
            "mean error (varying delta)",
            "recall % (varying epsilon)",
        ],
        rows=rows,
        caption="Table 5: the varied parameter's own quality metric, others fixed at 0.05",
    )
    result.notes.append(
        "expected shape: error fraction grows with gamma but stays below it, mean error "
        "shrinks with delta, recall falls as epsilon grows with false-negative rate below epsilon"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3).render())
