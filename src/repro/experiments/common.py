"""Shared plumbing for the experiment modules.

Every experiment returns an :class:`ExperimentResult` — a uniform container
holding one or more named tables (headers + rows) plus free-form notes — so
the runner, the benchmark harness and EXPERIMENTS.md generation can treat all
ten experiments identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.base import Dataset
from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table

__all__ = [
    "ExperimentResult",
    "ExperimentTable",
    "load_experiment_dataset",
    "COSINE_THRESHOLDS",
    "JACCARD_THRESHOLDS",
    "TEXT_DATASETS",
    "GRAPH_DATASETS",
    "BINARY_DATASETS",
]

#: thresholds swept in the paper
COSINE_THRESHOLDS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
JACCARD_THRESHOLDS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)

#: dataset groups as used in the evaluation
TEXT_DATASETS: tuple[str, ...] = ("rcv1", "wikiwords100k", "wikiwords500k")
GRAPH_DATASETS: tuple[str, ...] = ("wikilinks", "orkut", "twitter")
#: the three largest datasets, used for the binary experiments in the paper
BINARY_DATASETS: tuple[str, ...] = ("wikiwords500k", "orkut", "twitter")


@dataclass
class ExperimentTable:
    """One table of an experiment: headers, rows and an optional caption."""

    headers: list[str]
    rows: list[list]
    caption: str = ""

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.caption or None)


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        ``"figure1"`` ... ``"table5"``.
    title:
        Human-readable description (matches the paper's caption).
    tables:
        Named tables; most experiments produce one, figure3 produces one per
        panel group.
    notes:
        Caveats and reproduction remarks surfaced alongside the numbers.
    parameters:
        The knobs this run used (scale, seeds, thresholds, ...), recorded so
        results are self-describing.
    """

    experiment_id: str
    title: str
    tables: dict[str, ExperimentTable] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def add_table(self, name: str, headers: list[str], rows: list[list], caption: str = "") -> None:
        self.tables[name] = ExperimentTable(headers=headers, rows=rows, caption=caption)

    def render(self) -> str:
        """Render the whole experiment as plain text."""
        blocks = [f"{self.experiment_id}: {self.title}"]
        if self.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.parameters.items()))
            blocks.append(f"parameters: {rendered}")
        for name, table in self.tables.items():
            caption = table.caption or name
            blocks.append(format_table(table.headers, table.rows, title=caption))
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)


_DATASET_CACHE: dict[tuple[str, float, int, bool], Dataset] = {}


def load_experiment_dataset(
    name: str, scale: float = 1.0, seed: int = 0, binary: bool = False
) -> Dataset:
    """Load (and memoise) a registry dataset for use inside experiments.

    Experiments and benchmarks repeatedly need the same dataset at the same
    scale; generation is cheap but not free, so instances are cached for the
    lifetime of the process.
    """
    key = (name, float(scale), int(seed), bool(binary))
    if key not in _DATASET_CACHE:
        dataset = load_dataset(name, scale=scale, seed=seed)
        _DATASET_CACHE[key] = dataset.binarized() if binary else dataset
    return _DATASET_CACHE[key]
