"""Figure 1: hashes required for a fixed accuracy vs the true similarity.

The paper's motivating plot: with the standard fixed-``n`` maximum likelihood
estimator, the number of hashes needed for
``Pr[|s_hat - s| < delta] >= 1 - gamma`` depends strongly on the (unknown)
similarity ``s`` — about 350 hashes at ``s = 0.5`` versus about 16 at
``s = 0.95`` for ``delta = gamma = 0.05``.  This experiment regenerates the
curve from the exact binomial computation of Section 3.1.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators import minimum_hashes_for_accuracy
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run(
    delta: float = 0.05,
    gamma: float = 0.05,
    similarities: np.ndarray | None = None,
    max_hashes: int = 5000,
) -> ExperimentResult:
    """Compute the required-hash-count curve.

    Parameters
    ----------
    delta, gamma:
        Accuracy requirement (the paper uses 0.05 for both).
    similarities:
        Similarity grid; defaults to 0.05 .. 0.95 in steps of 0.05.
    max_hashes:
        Search budget per similarity value.
    """
    if similarities is None:
        similarities = np.round(np.arange(0.05, 0.96, 0.05), 2)
    similarities = np.asarray(similarities, dtype=np.float64)

    rows = []
    for similarity in similarities:
        required = minimum_hashes_for_accuracy(
            float(similarity), delta=delta, gamma=gamma, max_hashes=max_hashes, boundary="strict"
        )
        rows.append([float(similarity), int(required)])

    result = ExperimentResult(
        experiment_id="figure1",
        title="Hashes required for |s_hat - s| < delta with probability 1 - gamma, "
        "as a function of the true similarity",
        parameters={"delta": delta, "gamma": gamma, "max_hashes": max_hashes},
    )
    result.add_table(
        "required_hashes",
        headers=["similarity", "hashes_required"],
        rows=rows,
        caption=f"Figure 1 (delta={delta}, gamma={gamma})",
    )
    peak = max(rows, key=lambda row: row[1])
    result.notes.append(
        "the curve peaks near similarity 0.5 and falls towards 0 and 1 "
        f"(peak here: {peak[1]} hashes at s={peak[0]}); the paper quotes ~350 at 0.5 and 16 at "
        "0.95 — the value at the extremes depends on how the interval endpoints are rounded "
        "(see repro.core.estimators.probability_within_delta's boundary parameter)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run().render())
