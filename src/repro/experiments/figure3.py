"""Figure 3: timing comparison of all pipelines across datasets and thresholds.

The paper's main evaluation figure has twelve panels: the six weighted
datasets under cosine similarity (thresholds 0.5-0.9), and the three largest
datasets under binary Jaccard (thresholds 0.3-0.7) and binary cosine
(0.5-0.9).  Every panel compares AllPairs, AP+BayesLSH, AP+BayesLSH-Lite,
LSH, LSH Approx, LSH+BayesLSH, LSH+BayesLSH-Lite and (for the binary panels)
PPJoin+.

This module reproduces those measurements on the synthetic stand-ins.  The
sweep machinery (:func:`run_sweep`) is shared with Tables 2-4, which are
different aggregations of the same measurements.

Reproduction caveat (also recorded in EXPERIMENTS.md): the paper's absolute
times come from single-threaded C/C++ on multi-million-vector corpora, where
hashing costs are amortised over enormous candidate sets.  At laptop scale in
pure Python the candidate sets are ~10^4-10^5 pairs, so the BayesLSH variants
pay proportionally more fixed overhead; the *pruning* behaviour (Figure 4)
and the *quality* behaviour (Tables 3-5) reproduce faithfully, while timing
ratios reproduce in shape (which generator wins on which dataset family) more
than in magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import recall as recall_metric
from repro.evaluation.timing import time_pipeline
from repro.experiments.common import (
    BINARY_DATASETS,
    COSINE_THRESHOLDS,
    ExperimentResult,
    GRAPH_DATASETS,
    JACCARD_THRESHOLDS,
    TEXT_DATASETS,
    load_experiment_dataset,
)
from repro.search.pipelines import pipelines_for_measure

__all__ = ["run", "run_sweep", "SweepRecord", "PANEL_GROUPS"]

#: the three panel groups of Figure 3: (group name, datasets, measure, binary view?, thresholds)
PANEL_GROUPS: tuple[tuple[str, tuple[str, ...], str, bool, tuple[float, ...]], ...] = (
    ("weighted_cosine", TEXT_DATASETS + GRAPH_DATASETS, "cosine", False, COSINE_THRESHOLDS),
    ("binary_jaccard", BINARY_DATASETS, "jaccard", True, JACCARD_THRESHOLDS),
    ("binary_cosine", BINARY_DATASETS, "binary_cosine", True, COSINE_THRESHOLDS),
)


@dataclass
class SweepRecord:
    """One measurement of one pipeline on one dataset at one threshold."""

    group: str
    dataset: str
    measure: str
    pipeline: str
    threshold: float
    mean_time: float
    timed_out: bool
    n_pairs: int
    n_candidates: int
    recall: float | None


def run_sweep(
    group: str,
    datasets,
    measure: str,
    thresholds,
    binary: bool,
    pipelines=None,
    scale: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
    timeout: float | None = 120.0,
    compute_recall: bool = True,
) -> list[SweepRecord]:
    """Time every (dataset, threshold, pipeline) combination of one panel group."""
    if pipelines is None:
        pipelines = pipelines_for_measure(measure)
    records: list[SweepRecord] = []
    for dataset_name in datasets:
        dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed, binary=binary)
        for threshold in thresholds:
            truth = (
                exact_all_pairs(dataset, threshold, measure) if compute_recall else None
            )
            for pipeline in pipelines:
                timed = time_pipeline(
                    pipeline,
                    dataset,
                    measure=measure,
                    threshold=threshold,
                    repeats=repeats,
                    timeout=timeout,
                    seed=seed,
                )
                result = timed.result
                records.append(
                    SweepRecord(
                        group=group,
                        dataset=dataset_name,
                        measure=measure,
                        pipeline=pipeline,
                        threshold=float(threshold),
                        mean_time=timed.mean_time,
                        timed_out=timed.timed_out,
                        n_pairs=len(result) if result is not None else 0,
                        n_candidates=result.n_candidates if result is not None else 0,
                        recall=(
                            recall_metric(result, truth)
                            if (truth is not None and result is not None)
                            else None
                        ),
                    )
                )
    return records


def records_to_rows(records: list[SweepRecord]) -> list[list]:
    """Flatten sweep records into report rows."""
    rows = []
    for record in records:
        rows.append(
            [
                record.dataset,
                record.pipeline,
                record.threshold,
                round(record.mean_time, 4) if record.mean_time != float("inf") else float("inf"),
                "yes" if record.timed_out else "no",
                record.n_candidates,
                record.n_pairs,
                round(record.recall, 4) if record.recall is not None else None,
            ]
        )
    return rows


def run(
    scale: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
    timeout: float | None = 120.0,
    groups=None,
    datasets=None,
    thresholds=None,
    pipelines=None,
) -> ExperimentResult:
    """Reproduce the Figure 3 timing panels.

    Parameters
    ----------
    scale, seed, repeats, timeout:
        Sweep controls; the paper uses 3 repeats and a 50-hour timeout, the
        defaults here use 1 repeat and a 2-minute per-combination timeout.
    groups:
        Subset of ``("weighted_cosine", "binary_jaccard", "binary_cosine")``;
        all three by default.
    datasets, thresholds, pipelines:
        Optional overrides applied to every selected group (used by the quick
        benchmarks and tests).
    """
    selected = groups if groups is not None else [name for name, *_ in PANEL_GROUPS]
    result = ExperimentResult(
        experiment_id="figure3",
        title="Timing comparison of all pipelines across datasets and thresholds",
        parameters={
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "timeout": timeout,
            "groups": list(selected),
        },
    )
    all_records: list[SweepRecord] = []
    for group_name, group_datasets, measure, binary, group_thresholds in PANEL_GROUPS:
        if group_name not in selected:
            continue
        sweep_records = run_sweep(
            group_name,
            datasets if datasets is not None else group_datasets,
            measure,
            thresholds if thresholds is not None else group_thresholds,
            binary,
            pipelines=pipelines,
            scale=scale,
            seed=seed,
            repeats=repeats,
            timeout=timeout,
        )
        all_records.extend(sweep_records)
        result.add_table(
            group_name,
            headers=[
                "dataset",
                "pipeline",
                "threshold",
                "time (s)",
                "timed out",
                "candidates",
                "pairs",
                "recall",
            ],
            rows=records_to_rows(sweep_records),
            caption=f"Figure 3 group: {group_name} ({measure})",
        )
    result.notes.append(
        "absolute seconds are not comparable with the paper's C/C++ cluster numbers; "
        "compare orderings per dataset family and the recall column instead"
    )
    # Stash the raw records so Table 2 can reuse them without re-running.
    result.parameters["n_records"] = len(all_records)
    result.records = all_records  # type: ignore[attr-defined]
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3, groups=["weighted_cosine"], datasets=["rcv1"]).render())
