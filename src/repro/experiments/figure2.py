"""Figure 2: effect of varying gamma, delta, epsilon on BayesLSH's running time.

The paper fixes the WikiWords100K dataset and threshold 0.7 (cosine), uses
LSH candidate generation, and varies each BayesLSH parameter over
{0.01, 0.03, 0.05, 0.07, 0.09} while holding the other two at 0.05.  The
finding: epsilon and gamma barely move the running time, while tightening
delta (more accurate estimates) increases it substantially — because a
smaller delta forces *every* surviving pair to be compared on more hashes,
whereas gamma only affects pairs whose estimates are borderline.

LSH (exact verification) and LSH Approx reference times are reported
alongside, as in the original figure.
"""

from __future__ import annotations

from repro.evaluation.timing import time_pipeline
from repro.experiments.common import ExperimentResult, load_experiment_dataset

__all__ = ["run", "PARAMETER_VALUES"]

PARAMETER_VALUES: tuple[float, ...] = (0.01, 0.03, 0.05, 0.07, 0.09)
_DEFAULT = 0.05


def run(
    dataset_name: str = "wikiwords100k",
    scale: float = 0.5,
    threshold: float = 0.7,
    measure: str = "cosine",
    seed: int = 0,
    repeats: int = 1,
    values=PARAMETER_VALUES,
) -> ExperimentResult:
    """Time LSH+BayesLSH while varying each quality parameter separately."""
    dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed)

    rows = []
    for parameter in ("gamma", "delta", "epsilon"):
        for value in values:
            settings = {"gamma": _DEFAULT, "delta": _DEFAULT, "epsilon": _DEFAULT}
            settings[parameter] = float(value)
            timed = time_pipeline(
                "lsh_bayeslsh",
                dataset,
                measure=measure,
                threshold=threshold,
                repeats=repeats,
                seed=seed,
                **settings,
            )
            rows.append([parameter, float(value), round(timed.mean_time, 4)])

    reference_rows = []
    for pipeline in ("lsh", "lsh_approx"):
        timed = time_pipeline(
            pipeline, dataset, measure=measure, threshold=threshold, repeats=repeats, seed=seed
        )
        reference_rows.append([pipeline, round(timed.mean_time, 4)])

    result = ExperimentResult(
        experiment_id="figure2",
        title="Effect of varying gamma, delta, epsilon on LSH+BayesLSH running time",
        parameters={
            "dataset": dataset_name,
            "scale": scale,
            "threshold": threshold,
            "measure": measure,
            "repeats": repeats,
        },
    )
    result.add_table(
        "parameter_sweep",
        headers=["parameter varied", "value", "time (s)"],
        rows=rows,
        caption="Figure 2: one parameter varied at a time, the others fixed at 0.05",
    )
    result.add_table(
        "references",
        headers=["pipeline", "time (s)"],
        rows=reference_rows,
        caption="Reference lines: LSH (exact) and LSH Approx",
    )
    result.notes.append(
        "expected shape: times are flat in epsilon and gamma and grow as delta shrinks, "
        "because delta controls the hash budget of every emitted pair"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3).render())
