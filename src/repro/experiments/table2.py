"""Table 2: fastest BayesLSH variant per dataset and speedups over the baselines.

For each dataset and similarity measure the paper sums each algorithm's
running time across the threshold sweep, identifies the fastest BayesLSH
variant, and reports its speedup relative to AllPairs, LSH, LSH Approx and
(for binary data) PPJoin+.  When a baseline timed out, only a lower bound on
the speedup is available — the same convention is used here, marked with
``>=``.

This experiment is an aggregation of the Figure 3 sweep; pass an existing
figure-3 result (``figure3.run(...)``) to avoid re-measuring, or let it run
its own sweep.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import figure3
from repro.experiments.common import ExperimentResult

__all__ = ["run", "summarise_records"]

_BAYES_PIPELINES = ("ap_bayeslsh", "ap_bayeslsh_lite", "lsh_bayeslsh", "lsh_bayeslsh_lite")
_BASELINES = ("allpairs", "lsh", "lsh_approx", "ppjoin")


def summarise_records(records) -> list[list]:
    """Aggregate sweep records into Table 2 rows."""
    # total time per (group, dataset, pipeline), plus a censoring flag
    totals: dict[tuple[str, str, str], float] = defaultdict(float)
    censored: dict[tuple[str, str, str], bool] = defaultdict(bool)
    for record in records:
        key = (record.group, record.dataset, record.pipeline)
        if record.mean_time == float("inf"):
            censored[key] = True
        else:
            totals[key] += record.mean_time
        if record.timed_out:
            censored[key] = True

    rows = []
    group_datasets = sorted({(record.group, record.dataset) for record in records})
    for group, dataset in group_datasets:
        bayes_totals = {
            pipeline: totals[(group, dataset, pipeline)]
            for pipeline in _BAYES_PIPELINES
            if (group, dataset, pipeline) in totals and not censored[(group, dataset, pipeline)]
        }
        if not bayes_totals:
            continue
        fastest_pipeline = min(bayes_totals, key=bayes_totals.get)
        fastest_time = bayes_totals[fastest_pipeline]
        row = [group, dataset, fastest_pipeline, round(fastest_time, 3)]
        for baseline in _BASELINES:
            key = (group, dataset, baseline)
            if key not in totals and not censored[key]:
                row.append(None)
                continue
            baseline_time = totals.get(key, 0.0)
            if fastest_time <= 0:
                row.append(None)
                continue
            speedup = baseline_time / fastest_time if baseline_time > 0 else None
            if speedup is None:
                row.append(None)
            elif censored[key]:
                row.append(f">= {speedup:.1f}x")
            else:
                row.append(f"{speedup:.1f}x")
        rows.append(row)
    return rows


def run(
    scale: float = 0.5,
    seed: int = 0,
    repeats: int = 1,
    timeout: float | None = 120.0,
    groups=None,
    datasets=None,
    thresholds=None,
    figure3_result: ExperimentResult | None = None,
) -> ExperimentResult:
    """Compute the fastest-variant / speedup table.

    Either reuses the records attached to a prior :func:`figure3.run` result
    or runs the sweep itself with the given controls.
    """
    if figure3_result is None:
        figure3_result = figure3.run(
            scale=scale,
            seed=seed,
            repeats=repeats,
            timeout=timeout,
            groups=groups,
            datasets=datasets,
            thresholds=thresholds,
        )
    records = getattr(figure3_result, "records", [])
    result = ExperimentResult(
        experiment_id="table2",
        title="Fastest BayesLSH variant per dataset and speedups over baselines",
        parameters=dict(figure3_result.parameters),
    )
    result.add_table(
        "speedups",
        headers=[
            "group",
            "dataset",
            "fastest BayesLSH variant",
            "total time (s)",
            "speedup vs AllPairs",
            "speedup vs LSH",
            "speedup vs LSH Approx",
            "speedup vs PPJoin",
        ],
        rows=summarise_records(records),
        caption="Table 2: totals across the threshold sweep",
    )
    result.notes.append(
        "the paper reports speedups of 2x-20x (sometimes much larger against timed-out "
        "baselines); at laptop scale in Python the ratios are compressed because fixed "
        "per-pair overheads dominate, so compare orderings rather than magnitudes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3, groups=["weighted_cosine"], datasets=["rcv1"]).render())
