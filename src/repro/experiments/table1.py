"""Table 1: dataset statistics (vectors, dimensions, average length, non-zeros).

The reproduction uses synthetic stand-ins, so this table reports both the
paper's original statistics and those of the stand-ins actually used in the
experiments, side by side.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES, PAPER_STATISTICS
from repro.experiments.common import ExperimentResult, load_experiment_dataset

__all__ = ["run"]


def run(scale: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Tabulate paper-vs-reproduction dataset statistics."""
    rows = []
    for name in DATASET_NAMES:
        paper = PAPER_STATISTICS[name]
        dataset = load_experiment_dataset(name, scale=scale, seed=seed)
        ours = dataset.statistics()
        rows.append(
            [
                name,
                paper.n_vectors,
                ours.n_vectors,
                paper.n_features,
                ours.n_features,
                paper.average_length,
                ours.average_length,
                paper.nnz,
                ours.nnz,
            ]
        )
    result = ExperimentResult(
        experiment_id="table1",
        title="Dataset details (paper corpora vs synthetic stand-ins)",
        parameters={"scale": scale, "seed": seed},
    )
    result.add_table(
        "datasets",
        headers=[
            "dataset",
            "vectors (paper)",
            "vectors (ours)",
            "dims (paper)",
            "dims (ours)",
            "avg len (paper)",
            "avg len (ours)",
            "nnz (paper)",
            "nnz (ours)",
        ],
        rows=rows,
        caption="Table 1: dataset details",
    )
    result.notes.append(
        "stand-ins are scaled down uniformly; the preserved properties are the relative "
        "average lengths and length-variance regimes across datasets, not the absolute sizes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run().render())
