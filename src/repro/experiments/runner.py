"""Command-line runner for the reproduction experiments.

Examples
--------
.. code-block:: console

   # one experiment at the default scale
   bayeslsh-experiments figure4

   # everything, smaller and faster
   bayeslsh-experiments all --quick

   # a specific figure at a specific scale, written to a file
   bayeslsh-experiments figure3 --scale 0.4 --output figure3.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENT_IDS
# Imported for dispatch: run_experiment resolves experiment modules through
# sys.modules, so every module must be imported here even though no name is
# referenced directly.
from repro.experiments import (
    figure1,  # noqa: F401
    figure2,  # noqa: F401
    figure3,  # noqa: F401
    figure4,  # noqa: F401
    figure5,  # noqa: F401
    table1,  # noqa: F401
    table2,  # noqa: F401
    table3,  # noqa: F401
    table4,  # noqa: F401
    table5,  # noqa: F401
)
from repro.experiments.common import ExperimentResult

__all__ = ["main", "run_experiment"]

_QUICK_DATASETS = ("rcv1", "wikilinks")
_QUICK_THRESHOLDS = (0.6, 0.8)


def run_experiment(experiment_id: str, scale: float = 0.5, seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    if experiment_id not in EXPERIMENT_IDS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENT_IDS)}"
        )
    module = sys.modules[f"repro.experiments.{experiment_id}"]
    if experiment_id in ("figure1", "figure5"):
        return module.run()
    if experiment_id in ("figure2", "table5"):
        return module.run(scale=scale if not quick else min(scale, 0.3), seed=seed)
    if experiment_id == "figure4":
        return module.run(scale=scale if not quick else min(scale, 0.3), seed=seed)
    if experiment_id == "table1":
        return module.run(scale=scale, seed=seed)
    if experiment_id in ("figure3", "table2"):
        kwargs = {"scale": scale, "seed": seed}
        if quick:
            kwargs.update(
                scale=min(scale, 0.3),
                groups=["weighted_cosine"],
                datasets=list(_QUICK_DATASETS),
                thresholds=list(_QUICK_THRESHOLDS),
            )
        return module.run(**kwargs)
    if experiment_id in ("table3", "table4"):
        kwargs = {"scale": scale, "seed": seed}
        if quick:
            kwargs.update(
                scale=min(scale, 0.3),
                datasets=list(_QUICK_DATASETS),
                thresholds=list(_QUICK_THRESHOLDS),
            )
        return module.run(**kwargs)
    raise ValueError(f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENT_IDS)}")


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``bayeslsh-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="bayeslsh-experiments",
        description="Regenerate the tables and figures of the BayesLSH paper (VLDB 2012).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--quick", action="store_true", help="reduced datasets/thresholds for a fast sanity run"
    )
    parser.add_argument("--output", type=str, default=None, help="write the report to this file")
    args = parser.parse_args(argv)

    requested = list(EXPERIMENT_IDS) if "all" in args.experiments else args.experiments
    unknown = [experiment for experiment in requested if experiment not in EXPERIMENT_IDS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    blocks = []
    for experiment_id in requested:
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale, seed=args.seed, quick=args.quick)
        elapsed = time.perf_counter() - start
        blocks.append(result.render() + f"\n\n(experiment wall-clock: {elapsed:.1f}s)")
    report = ("\n\n" + "=" * 78 + "\n\n").join(blocks)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(main())
