"""Figure 5 (appendix): posterior convergence from very different priors.

The appendix shows that for the cosine collision probability ``r`` on
``[0.5, 1]``, three very different priors — proportional to ``r^-3``,
uniform, and ``r^3`` — produce nearly identical posteriors after a small
number of hash observations (32, 64, 128 hashes with 75% agreement,
corresponding to a cosine similarity of about 0.70).

Rather than plotting densities, this experiment reports for each prior and
each observation count the posterior MAP (mapped to cosine), the posterior
mean of ``r``, and the total-variation distance to the uniform-prior
posterior — the numbers behind the "posteriors become very similar" claim.
"""

from __future__ import annotations

import numpy as np

from repro.core.posteriors import GridCollisionPosterior
from repro.experiments.common import ExperimentResult
from repro.hashing.simhash import collision_to_cosine

__all__ = ["run", "PRIORS"]

#: the three priors of Figure 5 (unnormalised densities on [0.5, 1])
PRIORS = {
    "x^-3": lambda r: r**-3.0,
    "uniform": lambda r: np.ones_like(r),
    "x^3": lambda r: r**3.0,
}

#: the observation checkpoints of Figure 5: (n hashes, m agreements)
OBSERVATIONS: tuple[tuple[int, int], ...] = ((32, 24), (64, 48), (128, 96))


def _total_variation(grid: np.ndarray, p: np.ndarray, q: np.ndarray) -> float:
    return 0.5 * float(np.trapezoid(np.abs(p - q), grid))


def run(grid_size: int = 2049) -> ExperimentResult:
    """Compare posteriors under the three priors at each observation checkpoint."""
    posteriors = {
        name: GridCollisionPosterior(density, grid_size=grid_size)
        for name, density in PRIORS.items()
    }
    grid = posteriors["uniform"].grid

    rows = []
    for n, m in OBSERVATIONS:
        densities = {name: post.posterior_density_r(m, n) for name, post in posteriors.items()}
        for name, post in posteriors.items():
            density = densities[name]
            map_cosine = post.map_estimate(m, n)
            mean_r = float(np.trapezoid(grid * density, grid))
            tv_to_uniform = _total_variation(grid, density, densities["uniform"])
            rows.append(
                [
                    f"{m}/{n}",
                    name,
                    round(map_cosine, 4),
                    round(float(collision_to_cosine(mean_r)), 4),
                    round(tv_to_uniform, 4),
                ]
            )

    result = ExperimentResult(
        experiment_id="figure5",
        title="Posterior convergence from different priors (appendix, Figure 5)",
        parameters={"grid_size": grid_size, "observations": list(OBSERVATIONS)},
    )
    result.add_table(
        "posteriors",
        headers=[
            "matches/hashes",
            "prior",
            "MAP cosine estimate",
            "posterior-mean cosine",
            "TV distance to uniform-prior posterior",
        ],
        rows=rows,
        caption="Figure 5: posteriors after observing ~75% hash agreement",
    )
    result.notes.append(
        "the total-variation distance between posteriors from the extreme priors and the "
        "uniform prior shrinks quickly with the number of observed hashes, which is the "
        "paper's justification for the simple uniform prior"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run().render())
