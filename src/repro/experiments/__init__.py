"""Experiments reproducing every table and figure in the paper's evaluation.

Each module exposes ``run(...) -> ExperimentResult`` and can be executed from
the command line through :mod:`repro.experiments.runner`:

.. code-block:: console

   bayeslsh-experiments figure4 --scale 0.5
   bayeslsh-experiments all --quick

=============  =====================================================================
experiment     paper content
=============  =====================================================================
``figure1``    hashes needed for a fixed accuracy as a function of the similarity
``figure2``    running time while varying gamma, delta, epsilon one at a time
``figure3``    timing comparison of all pipelines across datasets and thresholds
``figure4``    candidates surviving BayesLSH pruning vs number of hashes examined
``figure5``    posterior convergence from very different priors (appendix)
``table1``     dataset statistics
``table2``     fastest BayesLSH variant per dataset and speedups over baselines
``table3``     recall of AP+BayesLSH and AP+BayesLSH-Lite
``table4``     % of similarity estimates with error > 0.05 (LSH Approx vs BayesLSH)
``table5``     output quality while varying gamma, delta, epsilon
=============  =====================================================================

The runs operate on the synthetic stand-in datasets from
:mod:`repro.datasets.registry`; shapes and orderings are expected to match
the paper, absolute seconds are not (see DESIGN.md / EXPERIMENTS.md).
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult", "EXPERIMENT_IDS"]

#: the experiments the runner knows about, in presentation order
EXPERIMENT_IDS: tuple[str, ...] = (
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
)
