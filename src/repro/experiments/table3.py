"""Table 3: recall of AP+BayesLSH and AP+BayesLSH-Lite across datasets and thresholds.

The paper reports recall (percentage of true pairs retrieved) for the two
AllPairs-fed BayesLSH variants on every weighted-cosine dataset and every
threshold from 0.5 to 0.9, showing that recall stays at roughly 97% or above
for the paper's ``epsilon = 0.03``.
"""

from __future__ import annotations

from repro.evaluation.ground_truth import exact_all_pairs
from repro.evaluation.metrics import recall as recall_metric
from repro.experiments.common import (
    COSINE_THRESHOLDS,
    ExperimentResult,
    GRAPH_DATASETS,
    TEXT_DATASETS,
    load_experiment_dataset,
)
from repro.search.pipelines import make_pipeline

__all__ = ["run"]

_PIPELINES = ("ap_bayeslsh", "ap_bayeslsh_lite")


def run(
    scale: float = 0.5,
    seed: int = 0,
    datasets=None,
    thresholds=COSINE_THRESHOLDS,
    measure: str = "cosine",
    epsilon: float = 0.03,
) -> ExperimentResult:
    """Measure recall of the AllPairs + BayesLSH variants."""
    if datasets is None:
        datasets = TEXT_DATASETS + GRAPH_DATASETS
    result = ExperimentResult(
        experiment_id="table3",
        title="Recall of AllPairs+BayesLSH and AllPairs+BayesLSH-Lite",
        parameters={
            "scale": scale,
            "seed": seed,
            "measure": measure,
            "epsilon": epsilon,
            "thresholds": list(thresholds),
        },
    )
    for pipeline in _PIPELINES:
        rows = []
        for dataset_name in datasets:
            dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed)
            row = [dataset_name]
            for threshold in thresholds:
                truth = exact_all_pairs(dataset, threshold, measure)
                engine = make_pipeline(
                    pipeline,
                    dataset,
                    measure=measure,
                    threshold=threshold,
                    seed=seed,
                    epsilon=epsilon,
                )
                search_result = engine.run(dataset)
                row.append(round(100.0 * recall_metric(search_result, truth), 2))
            rows.append(row)
        result.add_table(
            pipeline,
            headers=["dataset"] + [f"t={threshold}" for threshold in thresholds],
            rows=rows,
            caption=f"Table 3: recall (%) of {pipeline}",
        )
    result.notes.append(
        "the paper's guarantee is a false-negative rate below epsilon per candidate pair; "
        "recalls should therefore sit near or above 100 * (1 - epsilon) = 97"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3, datasets=["rcv1"]).render())
