"""Figure 4: candidates surviving BayesLSH pruning vs hashes examined.

The paper's key mechanism plot: starting from the candidate sets produced by
AllPairs and by LSH, BayesLSH prunes the vast majority of false-positive
candidates after examining only a handful of hashes (32 hashes = 4 bytes for
cosine), while the surviving count converges towards the true result size.

Three panels are reproduced:

* WikiWords100K stand-in, ``t = 0.7``, weighted cosine;
* WikiLinks stand-in, ``t = 0.7``, weighted cosine;
* WikiWords100K stand-in, ``t = 0.7``, binary cosine.

For each panel and each candidate generator the table reports the number of
candidates still alive after every 32-hash round, plus the exact result size
for reference.
"""

from __future__ import annotations

from repro.candidates.allpairs import AllPairsGenerator
from repro.candidates.lsh_index import LSHGenerator
from repro.evaluation.ground_truth import exact_all_pairs
from repro.experiments.common import ExperimentResult, load_experiment_dataset
from repro.verification.bayes import BayesLSHVerifier

__all__ = ["run", "prune_trace_for"]

#: (panel name, dataset, binary?, measure) reproducing Figure 4(a)-(c)
PANELS: tuple[tuple[str, str, bool, str], ...] = (
    ("wikiwords100k_cosine", "wikiwords100k", False, "cosine"),
    ("wikilinks_cosine", "wikilinks", False, "cosine"),
    ("wikiwords100k_binary_cosine", "wikiwords100k", True, "binary_cosine"),
)


def prune_trace_for(
    dataset,
    measure: str,
    threshold: float,
    generator_name: str,
    seed: int = 0,
    max_hashes: int = 256,
    epsilon: float = 0.03,
) -> dict:
    """Run one (generator, BayesLSH) combination and return its pruning trace."""
    if generator_name == "allpairs":
        generator = AllPairsGenerator(measure, threshold)
    elif generator_name == "lsh":
        generator = LSHGenerator(measure, threshold, seed=seed)
    else:
        raise ValueError(f"unknown generator {generator_name!r}; expected 'allpairs' or 'lsh'")
    candidates = generator.generate(dataset.collection)
    verifier = BayesLSHVerifier(
        dataset.collection,
        measure,
        threshold,
        seed=seed,
        epsilon=epsilon,
        max_hashes=max_hashes,
    )
    output = verifier.verify(candidates)
    return {
        "generator": generator_name,
        "n_candidates": len(candidates),
        "trace": list(output.trace),
        "n_output": output.n_output,
    }


def run(
    scale: float = 0.5,
    threshold: float = 0.7,
    seed: int = 0,
    max_hashes: int = 256,
    panels=PANELS,
) -> ExperimentResult:
    """Reproduce the three pruning-trace panels of Figure 4."""
    result = ExperimentResult(
        experiment_id="figure4",
        title="Candidates remaining vs number of hashes examined by BayesLSH",
        parameters={
            "scale": scale,
            "threshold": threshold,
            "seed": seed,
            "max_hashes": max_hashes,
        },
    )
    for panel_name, dataset_name, binary, measure in panels:
        dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed, binary=binary)
        truth = exact_all_pairs(dataset, threshold, measure)
        rows = []
        for generator_name in ("allpairs", "lsh"):
            trace_info = prune_trace_for(
                dataset,
                measure,
                threshold,
                generator_name,
                seed=seed,
                max_hashes=max_hashes,
            )
            rows.append([generator_name, 0, trace_info["n_candidates"]])
            for n_hashes, n_alive in trace_info["trace"]:
                rows.append([generator_name, n_hashes, n_alive])
            rows.append([generator_name, "output", trace_info["n_output"]])
        rows.append(["exact result size", "-", len(truth)])
        result.add_table(
            panel_name,
            headers=["candidate generator", "hashes examined", "candidates remaining"],
            rows=rows,
            caption=f"Figure 4 panel: {dataset_name} ({measure}), t={threshold}",
        )
    result.notes.append(
        "the bulk of false-positive candidates disappears within the first 32-64 hashes, "
        "and the surviving count approaches the exact result size — the paper's Figure 4 shape"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3).render())
