"""Table 4: fraction of similarity estimates with error above 0.05.

The paper compares the accuracy of the standard fixed-budget estimator
(LSH Approx, 2048 hashes for cosine) with LSH+BayesLSH across datasets and
thresholds.  The characteristic shape: LSH Approx is very error-prone at low
thresholds (where 2048 hashes are not enough) and essentially error-free at
high thresholds (where they are overkill), while BayesLSH maintains a
consistent error rate governed by its ``gamma``/``delta`` parameters across
the whole range.
"""

from __future__ import annotations

from repro.evaluation.metrics import error_statistics
from repro.experiments.common import (
    COSINE_THRESHOLDS,
    ExperimentResult,
    GRAPH_DATASETS,
    TEXT_DATASETS,
    load_experiment_dataset,
)
from repro.search.pipelines import make_pipeline
from repro.verification.base import exact_similarities_for_pairs
from repro.similarity.measures import get_measure

__all__ = ["run"]

_PIPELINES = ("lsh_approx", "lsh_bayeslsh")


def _exact_map_for_result(dataset, measure_name, search_result) -> dict:
    """Exact similarities of every reported pair (including false positives)."""
    measure = get_measure(measure_name)
    prepared = measure.prepare(dataset.collection)
    values = exact_similarities_for_pairs(
        prepared, measure, search_result.left, search_result.right
    )
    return {
        (int(i), int(j)): float(v)
        for i, j, v in zip(search_result.left, search_result.right, values)
    }


def run(
    scale: float = 0.5,
    seed: int = 0,
    datasets=None,
    thresholds=COSINE_THRESHOLDS,
    measure: str = "cosine",
    error_bound: float = 0.05,
) -> ExperimentResult:
    """Measure the error profile of LSH Approx vs LSH+BayesLSH."""
    if datasets is None:
        datasets = TEXT_DATASETS + GRAPH_DATASETS
    result = ExperimentResult(
        experiment_id="table4",
        title="Percentage of similarity estimates with error > 0.05",
        parameters={
            "scale": scale,
            "seed": seed,
            "measure": measure,
            "error_bound": error_bound,
            "thresholds": list(thresholds),
        },
    )
    for pipeline in _PIPELINES:
        rows = []
        for dataset_name in datasets:
            dataset = load_experiment_dataset(dataset_name, scale=scale, seed=seed)
            row = [dataset_name]
            for threshold in thresholds:
                engine = make_pipeline(
                    pipeline, dataset, measure=measure, threshold=threshold, seed=seed
                )
                search_result = engine.run(dataset)
                exact_map = _exact_map_for_result(dataset, measure, search_result)
                stats = error_statistics(
                    search_result, exact_similarities=exact_map, error_bound=error_bound
                )
                row.append(round(stats.percent_above, 2))
            rows.append(row)
        result.add_table(
            pipeline,
            headers=["dataset"] + [f"t={threshold}" for threshold in thresholds],
            rows=rows,
            caption=f"Table 4: % estimates with error > {error_bound} ({pipeline})",
        )
    result.notes.append(
        "expected shape: LSH Approx errors shrink as the threshold rises, BayesLSH errors "
        "stay roughly constant and bounded by gamma"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    print(run(scale=0.3, datasets=["rcv1"]).render())
