"""Evaluation harness: ground truth, quality metrics, timing and reporting.

This package produces the numbers behind every table and figure in the
paper's evaluation: exact ground-truth pair sets, recall and similarity-error
statistics, repeated-run timing with timeouts, and plain-text table /
series rendering for terminal output.
"""

from repro.evaluation.ground_truth import exact_all_pairs, GroundTruth
from repro.evaluation.metrics import (
    error_statistics,
    false_negative_rate,
    precision,
    recall,
    ErrorStatistics,
)
from repro.evaluation.timing import TimedRun, time_pipeline
from repro.evaluation.reporting import format_table, format_series

__all__ = [
    "ErrorStatistics",
    "GroundTruth",
    "TimedRun",
    "error_statistics",
    "exact_all_pairs",
    "false_negative_rate",
    "format_series",
    "format_table",
    "precision",
    "recall",
    "time_pipeline",
]
