"""Exact ground truth for all-pairs similarity search.

Computes, by exhaustive (but vectorised) comparison, the set of all pairs
with similarity above a threshold together with their exact similarities.
Quadratic in the number of vectors; intended for the evaluation harness and
for tests, not for production search (that is what the library itself is
for).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.engine import as_collection
from repro.similarity.measures import get_measure
from repro.verification.base import exact_similarities_for_pairs

__all__ = ["GroundTruth", "exact_all_pairs"]


@dataclass
class GroundTruth:
    """The exact answer to an all-pairs similarity query.

    Attributes
    ----------
    left, right, similarities:
        Parallel arrays describing every pair with similarity strictly above
        the threshold (``left < right``).
    threshold, measure:
        The query parameters.
    """

    left: np.ndarray
    right: np.ndarray
    similarities: np.ndarray
    threshold: float
    measure: str

    def __len__(self) -> int:
        return len(self.left)

    def pair_set(self) -> set[tuple[int, int]]:
        return {(int(i), int(j)) for i, j in zip(self.left, self.right)}

    def similarity_map(self) -> dict[tuple[int, int], float]:
        return {
            (int(i), int(j)): float(s)
            for i, j, s in zip(self.left, self.right, self.similarities)
        }


def exact_all_pairs(
    data,
    threshold: float,
    measure: str = "cosine",
    block_size: int = 512,
) -> GroundTruth:
    """Compute every pair with similarity above ``threshold`` exhaustively.

    Only pairs of vectors sharing at least one feature are examined (pairs
    with disjoint supports have similarity zero under all supported
    measures), in blocks so memory use stays bounded.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
    measure_obj = get_measure(measure)
    collection = as_collection(data)
    prepared = measure_obj.prepare(collection)
    binary = prepared.binarized().matrix
    n = prepared.n_vectors

    lefts: list[np.ndarray] = []
    rights: list[np.ndarray] = []
    for start in range(0, n, block_size):
        end = min(start + block_size, n)
        # Pairs (i in block, j anywhere) sharing a feature.
        overlap = (binary[start:end] @ binary.T).tocoo()
        rows = overlap.row + start
        cols = overlap.col
        mask = rows < cols
        lefts.append(rows[mask].astype(np.int64))
        rights.append(cols[mask].astype(np.int64))
    if lefts:
        left = np.concatenate(lefts)
        right = np.concatenate(rights)
    else:
        left = np.zeros(0, dtype=np.int64)
        right = np.zeros(0, dtype=np.int64)

    similarities = exact_similarities_for_pairs(prepared, measure_obj, left, right)
    above = similarities > threshold
    return GroundTruth(
        left=left[above],
        right=right[above],
        similarities=similarities[above],
        threshold=float(threshold),
        measure=measure_obj.name,
    )
