"""Timing harness: repeated runs, averaging and timeouts.

The paper runs every randomised algorithm three times and reports the mean
full execution time, and kills any algorithm exceeding a 50-hour budget
(reporting only a lower bound on the speedups over it).  This module
reproduces that protocol at laptop scale: ``time_pipeline`` runs a pipeline
``repeats`` times with different seeds, and a per-run ``timeout`` marks the
measurement as censored rather than waiting forever.

The timeout is cooperative (checked between runs), because the algorithms
are pure Python/numpy and cannot be safely interrupted mid-run; the runs
themselves are sized so that a single run never dominates the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.search.pipelines import make_pipeline
from repro.search.results import SearchResult

__all__ = ["TimedRun", "time_pipeline"]


@dataclass
class TimedRun:
    """Aggregate of repeated timed executions of one pipeline.

    Attributes
    ----------
    pipeline:
        Pipeline name.
    times:
        Wall-clock seconds of each completed run.
    result:
        The :class:`SearchResult` of the last completed run (None when every
        run timed out).
    timed_out:
        True when the measurement was censored by the timeout.
    """

    pipeline: str
    times: list[float] = field(default_factory=list)
    result: SearchResult | None = None
    timed_out: bool = False

    @property
    def mean_time(self) -> float:
        """Mean wall-clock seconds over completed runs (``inf`` when censored with no runs)."""
        if not self.times:
            return float("inf")
        return float(sum(self.times) / len(self.times))

    @property
    def completed(self) -> bool:
        return bool(self.times) and not self.timed_out


def time_pipeline(
    name: str,
    data,
    measure: str,
    threshold: float,
    repeats: int = 3,
    timeout: float | None = None,
    seed: int = 0,
    **pipeline_kwargs,
) -> TimedRun:
    """Run a pipeline ``repeats`` times and aggregate the wall-clock times.

    Parameters
    ----------
    name, data, measure, threshold, pipeline_kwargs:
        Forwarded to :func:`repro.search.pipelines.make_pipeline`.
    repeats:
        Number of runs; randomised pipelines get a different seed per run
        (``seed``, ``seed + 1``, ...), deterministic ones simply repeat.
    timeout:
        Total wall-clock budget in seconds across all runs; when exceeded the
        remaining runs are skipped and the measurement is marked
        ``timed_out`` (mirroring the paper's 50-hour kill rule).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    run = TimedRun(pipeline=name)
    budget_start = time.perf_counter()
    for attempt in range(repeats):
        if timeout is not None and (time.perf_counter() - budget_start) > timeout:
            run.timed_out = True
            break
        engine = make_pipeline(
            name, data, measure=measure, threshold=threshold, seed=seed + attempt, **pipeline_kwargs
        )
        result = engine.run(data)
        run.times.append(result.total_time)
        run.result = result
        if timeout is not None and (time.perf_counter() - budget_start) > timeout:
            # Budget exhausted after this run: keep the measurement but note
            # that later repetitions were skipped.
            if attempt + 1 < repeats:
                run.timed_out = True
            break
    return run
