"""Plain-text rendering of tables and series for experiment output.

The experiment modules print the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly rendering of one cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "timeout"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(headers))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render named series sharing an x-axis as a table (one column per series).

    This is how the figure experiments print their data: the same points the
    paper plots, as numbers.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[index] if index < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title, precision=precision)
