"""Output-quality metrics: recall, precision and similarity-error statistics.

These are the quantities the paper reports:

* **recall** (Tables 3 and 5) — the fraction of true pairs (similarity above
  the threshold) present in a method's output;
* **error statistics** (Tables 4 and 5, Figure 2's discussion) — for methods
  that report similarity *estimates*, the fraction of output pairs whose
  estimate is off by more than 0.05 and the mean absolute error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.ground_truth import GroundTruth
from repro.search.results import SearchResult

__all__ = [
    "recall",
    "precision",
    "false_negative_rate",
    "error_statistics",
    "ErrorStatistics",
]


def recall(result: SearchResult, truth: GroundTruth) -> float:
    """Fraction of true pairs present in the result (1.0 when there are no true pairs)."""
    true_pairs = truth.pair_set()
    if not true_pairs:
        return 1.0
    found = result.pair_set()
    return len(true_pairs & found) / len(true_pairs)


def false_negative_rate(result: SearchResult, truth: GroundTruth) -> float:
    """``1 - recall``: the fraction of true pairs the method missed."""
    return 1.0 - recall(result, truth)


def precision(result: SearchResult, truth: GroundTruth) -> float:
    """Fraction of reported pairs that are true pairs (1.0 for an empty result)."""
    found = result.pair_set()
    if not found:
        return 1.0
    true_pairs = truth.pair_set()
    return len(true_pairs & found) / len(found)


@dataclass(frozen=True)
class ErrorStatistics:
    """Similarity-estimate accuracy over the pairs a method reported.

    Attributes
    ----------
    n_pairs:
        Number of reported pairs whose true similarity was available.
    mean_error:
        Mean absolute estimation error.
    max_error:
        Largest absolute estimation error.
    fraction_above:
        Fraction of estimates whose absolute error exceeds ``error_bound``.
    error_bound:
        The error bound used for ``fraction_above`` (0.05 in the paper).
    """

    n_pairs: int
    mean_error: float
    max_error: float
    fraction_above: float
    error_bound: float

    @property
    def percent_above(self) -> float:
        """``fraction_above`` expressed as a percentage (as in Table 4)."""
        return 100.0 * self.fraction_above


def error_statistics(
    result: SearchResult,
    truth: GroundTruth | None = None,
    exact_similarities: dict[tuple[int, int], float] | None = None,
    error_bound: float = 0.05,
) -> ErrorStatistics:
    """Accuracy of a result's similarity estimates against exact values.

    Exact similarities are taken from ``exact_similarities`` when given,
    otherwise from the ground truth's similarity map; reported pairs whose
    exact similarity is unknown (below-threshold false positives when only a
    ground truth is available) are skipped.
    """
    if exact_similarities is None:
        if truth is None:
            raise ValueError("provide either a ground truth or an exact similarity map")
        exact_similarities = truth.similarity_map()
    errors = []
    for pair, estimate in result.similarity_map().items():
        exact = exact_similarities.get(pair)
        if exact is None:
            continue
        errors.append(abs(estimate - exact))
    if not errors:
        return ErrorStatistics(0, 0.0, 0.0, 0.0, error_bound)
    errors_array = np.asarray(errors, dtype=np.float64)
    return ErrorStatistics(
        n_pairs=len(errors_array),
        mean_error=float(errors_array.mean()),
        max_error=float(errors_array.max()),
        fraction_above=float(np.mean(errors_array > error_bound)),
        error_bound=error_bound,
    )
