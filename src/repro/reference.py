"""Scalar reference implementations of the vectorised hot paths.

Every batched kernel in the library (signature generation, the posterior
``*_many`` queries, the array-based candidate generators) is required to be
**bit-identical** to a straightforward scalar formulation — same seeds give
same signatures, same prune/emit decisions, same candidate pairs and the
same bookkeeping counters.  This module holds those scalar formulations:
direct ports of the original one-row-at-a-time / one-pair-at-a-time loops,
kept as the executable specification that
``tests/property/test_vectorised_equivalence.py`` checks the production
kernels against on randomised inputs.

Nothing here is exported for production use; these functions trade every
optimisation for obviousness.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.posteriors import PosteriorModel
from repro.hashing.minhash import _PRIME, MinHashFamily
from repro.hashing.signatures import SignatureStore
from repro.hashing.simhash import SimHashFamily
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection

__all__ = [
    "minhash_signatures_reference",
    "simhash_bits_reference",
    "concentration_decisions_reference",
    "map_estimates_reference",
    "prob_above_threshold_reference",
    "lsh_candidates_reference",
    "allpairs_candidates_reference",
    "ppjoin_candidates_reference",
]


# --------------------------------------------------------------------- #
# hashing
# --------------------------------------------------------------------- #
def minhash_signatures_reference(family: MinHashFamily, n_hashes: int) -> np.ndarray:
    """Row-at-a-time minwise signatures for ``family``'s first ``n_hashes`` functions."""
    coef_a, coef_b = family.coefficients(n_hashes)
    collection = family.collection
    values = np.empty((collection.n_vectors, n_hashes), dtype=np.int64)
    for row in range(collection.n_vectors):
        features = collection.row_features(row)
        if len(features) == 0:
            values[row, :] = -(row + 1)
            continue
        feats = features.astype(np.int64) % _PRIME
        permuted = (coef_a[:, None] * feats[None, :] + coef_b[:, None]) % _PRIME
        values[row, :] = permuted.min(axis=1)
    return values


def simhash_bits_reference(family: SimHashFamily, n_hashes: int) -> np.ndarray:
    """Row-at-a-time signed-random-projection bits for ``family``."""
    directions = family.projections.columns(0, n_hashes)
    collection = family.collection
    bits = np.empty((collection.n_vectors, n_hashes), dtype=np.uint8)
    for row in range(collection.n_vectors):
        products = collection.row(row) @ directions
        bits[row, :] = (np.asarray(products).ravel() >= 0.0).astype(np.uint8)
    return bits


# --------------------------------------------------------------------- #
# posterior queries
# --------------------------------------------------------------------- #
def concentration_decisions_reference(
    posterior: PosteriorModel, matches, n: int, delta: float, gamma: float
) -> np.ndarray:
    """Pair-at-a-time concentration decisions (Equation 6 per match count)."""
    return np.array(
        [
            posterior.concentration_probability(int(m), int(n), delta) >= 1.0 - gamma
            for m in np.asarray(matches)
        ],
        dtype=bool,
    )


def map_estimates_reference(posterior: PosteriorModel, matches, hashes) -> np.ndarray:
    """Pair-at-a-time MAP estimates (Equation 4 per ``(m, n)``)."""
    return np.array(
        [
            posterior.map_estimate(int(m), int(n))
            for m, n in zip(np.asarray(matches), np.asarray(hashes))
        ],
        dtype=np.float64,
    )


def prob_above_threshold_reference(
    posterior: PosteriorModel, matches, n: int, threshold: float
) -> np.ndarray:
    """Pair-at-a-time pruning probabilities (Equation 3 per match count)."""
    return np.array(
        [posterior.prob_above_threshold(int(m), int(n), threshold) for m in np.asarray(matches)],
        dtype=np.float64,
    )


# --------------------------------------------------------------------- #
# candidate generation
# --------------------------------------------------------------------- #
def lsh_candidates_reference(
    store: SignatureStore, rows: np.ndarray, n_signatures: int, signature_width: int
) -> tuple[set[tuple[int, int]], int]:
    """Dict-of-buckets LSH banding: ``(candidate pairs, raw collision count)``."""
    pairs: set[tuple[int, int]] = set()
    n_raw_collisions = 0
    for band in range(n_signatures):
        buckets: dict[bytes, list[int]] = defaultdict(list)
        for row in rows:
            buckets[store.band_key(int(row), band, signature_width)].append(int(row))
        for bucket_rows in buckets.values():
            for a_index in range(len(bucket_rows)):
                for b_index in range(a_index + 1, len(bucket_rows)):
                    i, j = bucket_rows[a_index], bucket_rows[b_index]
                    n_raw_collisions += 1
                    pairs.add((i, j) if i < j else (j, i))
    return pairs, n_raw_collisions


def allpairs_candidates_reference(
    collection: VectorCollection, measure, threshold: float
) -> tuple[set[tuple[int, int]], dict]:
    """Sequential AllPairs with per-feature Python lists (Bayardo et al.)."""
    measure = get_measure(measure)
    prepared = measure.prepare(collection).normalized()
    n_vectors = prepared.n_vectors
    if n_vectors < 2:
        return set(), {"n_score_accumulations": 0, "index_entries": 0}
    matrix = prepared.matrix
    n_features = prepared.n_features

    feature_counts = np.asarray((matrix != 0).sum(axis=0)).ravel()
    feature_order = np.argsort(-feature_counts, kind="stable")
    feature_rank = np.empty(n_features, dtype=np.int64)
    feature_rank[feature_order] = np.arange(n_features)

    max_weight_dim = np.zeros(n_features, dtype=np.float64)
    coo = matrix.tocoo()
    np.maximum.at(max_weight_dim, coo.col, coo.data)

    vector_order = np.argsort(-prepared.max_weights, kind="stable")
    index_rows: list[list[int]] = [[] for _ in range(n_features)]
    index_weights: list[list[float]] = [[] for _ in range(n_features)]
    pairs: set[tuple[int, int]] = set()
    n_score_accumulations = 0

    for x in vector_order:
        x = int(x)
        features = prepared.row_features(x)
        weights = prepared.row_values(x)
        if len(features) == 0:
            continue
        order = np.argsort(feature_rank[features], kind="stable")
        features = features[order]
        weights = weights[order]

        scores: dict[int, float] = {}
        for feature, weight in zip(features, weights):
            for y, y_weight in zip(index_rows[feature], index_weights[feature]):
                scores[y] = scores.get(y, 0.0) + weight * y_weight
                n_score_accumulations += 1
        for y in scores:
            pairs.add((x, y) if x < y else (y, x))

        bound = 0.0
        x_max_weight = float(prepared.max_weights[x])
        for feature, weight in zip(features, weights):
            bound += float(weight) * min(float(max_weight_dim[feature]), x_max_weight)
            if bound >= threshold:
                index_rows[feature].append(x)
                index_weights[feature].append(float(weight))

    metadata = {
        "n_score_accumulations": n_score_accumulations,
        "index_entries": int(sum(len(rows) for rows in index_rows)),
    }
    return pairs, metadata


def _minimum_overlap_reference(measure_name: str, threshold, size_x: int, size_y: int) -> float:
    import math

    if measure_name == "jaccard":
        return threshold / (1.0 + threshold) * (size_x + size_y)
    return threshold * math.sqrt(size_x * size_y)


def ppjoin_candidates_reference(
    collection: VectorCollection,
    measure,
    threshold: float,
    use_positional_filter: bool = True,
    use_suffix_filter: bool = True,
) -> tuple[set[tuple[int, int]], dict]:
    """Sequential PPJoin/PPJoin+ with a dict-based prefix index (Xiao et al.)."""
    import math

    measure = get_measure(measure)
    prepared = measure.prepare(collection)
    n_vectors = prepared.n_vectors
    empty_meta = {
        "n_prefix_collisions": 0,
        "n_filtered_positional": 0,
        "n_filtered_suffix": 0,
    }
    if n_vectors < 2:
        return set(), empty_meta

    binary = prepared.binarized().matrix
    token_counts = np.asarray(binary.sum(axis=0)).ravel()
    token_rank = np.argsort(np.argsort(token_counts, kind="stable"), kind="stable")

    records: list[np.ndarray] = []
    for row in range(n_vectors):
        features = prepared.row_features(row)
        order = np.argsort(token_rank[features], kind="stable")
        records.append(token_rank[features][order].astype(np.int64))
    sizes = np.array([len(tokens) for tokens in records], dtype=np.int64)
    processing_order = np.argsort(sizes, kind="stable")

    def length_bounds(size_x: int) -> float:
        if measure.name == "jaccard":
            return threshold * size_x
        return threshold * threshold * size_x

    def prefix_length(size_x: int) -> int:
        if measure.name == "jaccard":
            min_overlap_with_self = math.ceil(threshold * size_x)
        else:
            min_overlap_with_self = math.ceil(threshold * threshold * size_x)
        return max(1, size_x - min_overlap_with_self + 1)

    def suffix_overlap_bound(tokens_x, tokens_y, position_x, position_y) -> int:
        suffix_x = tokens_x[position_x + 1 :]
        suffix_y = tokens_y[position_y + 1 :]
        if len(suffix_x) == 0 or len(suffix_y) == 0:
            return 0
        if suffix_x[-1] < suffix_y[0] or suffix_y[-1] < suffix_x[0]:
            return 0
        return min(len(suffix_x), len(suffix_y))

    index: dict[int, list[tuple[int, int]]] = defaultdict(list)
    pairs: set[tuple[int, int]] = set()
    n_prefix_collisions = 0
    n_filtered_positional = 0
    n_filtered_suffix = 0

    for x in processing_order:
        x = int(x)
        tokens_x = records[x]
        size_x = len(tokens_x)
        if size_x == 0:
            continue
        lower = length_bounds(size_x)
        prefix_x = prefix_length(size_x)

        scores: dict[int, bool] = {}
        for position_x in range(prefix_x):
            token = int(tokens_x[position_x])
            for y, position_y in index[token]:
                if y in scores:
                    continue
                size_y = len(records[y])
                if size_y < lower:
                    continue
                n_prefix_collisions += 1
                alpha = _minimum_overlap_reference(measure.name, threshold, size_x, size_y)
                if use_positional_filter:
                    overlap_bound = 1 + min(size_x - position_x - 1, size_y - position_y - 1)
                    if overlap_bound < alpha:
                        n_filtered_positional += 1
                        continue
                if use_suffix_filter:
                    suffix_bound = 1 + suffix_overlap_bound(
                        tokens_x, records[y], position_x, position_y
                    )
                    if suffix_bound < alpha:
                        n_filtered_suffix += 1
                        continue
                scores[y] = True
        for y in scores:
            pairs.add((x, y) if x < y else (y, x))

        for position_x in range(prefix_x):
            index[int(tokens_x[position_x])].append((x, position_x))

    metadata = {
        "n_prefix_collisions": n_prefix_collisions,
        "n_filtered_positional": n_filtered_positional,
        "n_filtered_suffix": n_filtered_suffix,
    }
    return pairs, metadata
