"""BayesLSH: Bayesian Locality Sensitive Hashing for fast similarity search.

This package reproduces the system described in:

    Venu Satuluri and Srinivasan Parthasarathy.
    "Bayesian Locality Sensitive Hashing for Fast Similarity Search."
    PVLDB 5(5), 2012.

The public API is intentionally small.  Most users only need:

``Dataset``
    A collection of (sparse) vectors plus metadata, the unit every algorithm
    operates on.  Built from a ``scipy.sparse`` matrix, a dense array, or a
    list of feature dictionaries / token sets.

``all_pairs_similarity``
    One-call all-pairs similarity search: picks a candidate generator and a
    verifier (BayesLSH by default) and returns every pair above a threshold.

``SearchEngine`` / ``make_pipeline``
    Explicit composition of a candidate generator with a verifier, matching
    the algorithm combinations evaluated in the paper (``AllPairs``,
    ``AP+BayesLSH``, ``LSH+BayesLSH-Lite`` and so on).

``BayesLSHParams``
    The ``epsilon`` (recall), ``delta``/``gamma`` (accuracy) knobs from the
    paper.

Example
-------
>>> import numpy as np
>>> from repro import Dataset, all_pairs_similarity
>>> rng = np.random.default_rng(0)
>>> data = Dataset.from_dense(rng.random((200, 50)))
>>> result = all_pairs_similarity(data, threshold=0.8)
>>> sorted(result.pairs())[:3]  # doctest: +SKIP
"""

from repro.core.params import BayesLSHParams
from repro.core.bayeslsh import BayesLSH
from repro.core.lite import BayesLSHLite
from repro.datasets.base import Dataset
from repro.search.engine import SearchEngine, all_pairs_similarity
from repro.search.pipelines import make_pipeline, PIPELINES
from repro.search.query import QueryIndex
from repro.search.results import SearchResult, ScoredPair
from repro.serving import load_query_index, save_query_index

__version__ = "1.0.0"

__all__ = [
    "BayesLSH",
    "BayesLSHLite",
    "BayesLSHParams",
    "Dataset",
    "PIPELINES",
    "QueryIndex",
    "ScoredPair",
    "SearchEngine",
    "SearchResult",
    "all_pairs_similarity",
    "load_query_index",
    "make_pipeline",
    "save_query_index",
    "__version__",
]
