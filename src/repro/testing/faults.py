"""Fault-injection harness for the worker pools, daemon and snapshot writer.

The production code carries a handful of *injection seams*: at well-defined
points it calls :func:`fire`, which is a no-op unless a test has installed
a :class:`FaultPlan` via :func:`inject`.  The seams are:

* ``pool_start`` — a worker pool just forked (installs queue faults);
* ``serving_round`` / ``allpairs_round`` — one verification round is about
  to be dispatched (``round_index`` in the info dict);
* ``pool_respawn`` — a resident pool just respawned a dead worker slot
  (fires after the fresh process started, before the next batch uses it);
* ``daemon_admit`` — the daemon admitted one request into its queue;
* ``daemon_batch`` — the daemon is about to execute a coalesced batch
  (``round_index`` is the batch counter, ``pool`` the resident pool's
  worker pool or ``None`` when serving serially, ``batch_size`` the number
  of live requests) — killing a worker here is the canonical
  "kill mid-batch with waiting clients" scenario;
* ``snapshot_replace`` — the window between a snapshot's temp-file write
  and its atomic rename (the ``.npz`` archive, the snapshot-store pointer
  and the dataset archives all share this seam via
  :func:`repro.datasets.io.atomic_writer`);
* ``flat_replace`` — the same window for the flat layout's ``MANIFEST.json``
  commit point (the data files are already on disk, unreferenced, when it
  fires);
* ``wal_append`` — a write-ahead-log record's bytes just hit the segment
  file, *before* any fsync (``wal``/``path``/``seq`` in the info dict) — a
  kill here loses an unacknowledged record or not, both legal;
* ``wal_fsync`` — the WAL just fsynced the segment (record durable, the
  in-memory apply and the acknowledgement still pending) — a kill here is
  the durable-but-unacked case replay must re-apply;
* ``wal_replace`` — the torn-tail repair's write→rename window (the WAL's
  :func:`~repro.datasets.io.atomic_writer` seam, like ``snapshot_replace``);
* ``wal_replay`` — one WAL record was just re-applied during recovery
  (``index``/``seq`` in the info dict) — lets tests observe or block a
  replay in progress;
* ``daemon_ingest`` — the daemon admitted one ``insert``/``delete`` op
  (fires before the index call executes).

A plan schedules faults against those seams:

* :meth:`FaultPlan.kill_worker` — SIGKILL a chosen worker when a chosen
  event fires (e.g. round 2 of a serving verification), simulating an OOM
  kill or native crash;
* :meth:`FaultPlan.hang_worker` — SIGSTOP a worker so it stays alive but
  silent, exercising the supervisor's ``round_timeout`` hung-worker path;
* :meth:`FaultPlan.delay_worker` — make a worker sleep before processing
  its next message (a slow-but-healthy worker must *not* be killed when the
  delay stays under ``round_timeout``);
* :meth:`FaultPlan.drop_messages` — silently swallow parent→worker control
  messages of a given tag, simulating queue message loss (the worker never
  replies, so recovery requires ``round_timeout``);
* :meth:`FaultPlan.crash_before_replace` / :meth:`FaultPlan.truncate_snapshot`
  / :meth:`FaultPlan.corrupt_snapshot` — abort, truncate or bit-flip a
  snapshot in the write→rename window, driving the crash-safety tests;
* :meth:`FaultPlan.kill_process` — SIGKILL the *current process* when a
  chosen event fires for the n-th time (run it in a sacrificial fork!) —
  the primitive behind the WAL's SIGKILL-at-every-seam recovery matrix;
* :meth:`FaultPlan.on_event` — run an arbitrary callback when an event
  fires (e.g. block ``wal_replay`` to observe a daemon degrading its
  readiness while recovery is in progress).

Usage::

    from repro.testing import faults

    with faults.inject() as plan:
        plan.kill_worker(1, event="serving_round", round_index=2)
        results = index.query_many(batch, n_workers=4)

Every scheduled fault fires at most once; ``plan.fired`` records what
actually triggered so tests can assert the fault really happened.  The
harness is deliberately parent-side only — it needs no cooperation from the
workers beyond the ``_fault_sleep`` control message — so installing a plan
never perturbs the code under test until a fault actually fires.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

__all__ = ["FaultPlan", "InjectedCrash", "fire", "inject"]

#: the active plan; ``None`` keeps every seam a no-op
_INJECTOR: "FaultPlan | None" = None


def fire(event: str, **info) -> None:
    """Trigger ``event`` at an injection seam (no-op without an active plan).

    Called by the production code; ``info`` carries the seam's context
    (the worker pool, the round index, the snapshot temp path, ...).
    """
    injector = _INJECTOR
    if injector is not None:
        injector.dispatch(event, info)


class InjectedCrash(RuntimeError):
    """Raised by :meth:`FaultPlan.crash_before_replace` to simulate process death.

    The snapshot writer deliberately skips its temp-file cleanup for this
    exception (a real crash would not clean up either), so tests observe the
    exact on-disk state an interrupted save leaves behind.
    """


class _DroppingQueue:
    """Task-queue proxy that swallows the first ``count`` puts of a tag."""

    def __init__(self, queue, tag: str, count: int, plan: "FaultPlan"):
        self._queue = queue
        self._tag = tag
        self._count = count
        self._plan = plan

    def put(self, message, *args, **kwargs):
        if self._count > 0 and isinstance(message, tuple) and message[:1] == (self._tag,):
            self._count -= 1
            self._plan.fired.append(("drop", self._tag))
            return None
        return self._queue.put(message, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._queue, name)


class FaultPlan:
    """A schedule of faults to fire at the injection seams.

    Build one through :func:`inject`; the methods below arm individual
    faults.  ``fired`` lists ``(kind, detail)`` tuples for every fault that
    actually triggered.
    """

    def __init__(self):
        self._actions: list[dict] = []
        self.fired: list[tuple] = []

    # ------------------------------------------------------------------ #
    # worker faults
    # ------------------------------------------------------------------ #
    def kill_worker(
        self, worker: int, event: str = "serving_round", round_index: int | None = None
    ) -> None:
        """SIGKILL worker ``worker`` of the pool active when ``event`` fires.

        ``round_index`` restricts round events to one specific round; for
        non-round events it is ignored when ``None``.
        """
        self._actions.append(
            {"kind": "kill", "worker": worker, "event": event, "round_index": round_index}
        )

    def hang_worker(
        self, worker: int, event: str = "serving_round", round_index: int | None = None
    ) -> None:
        """SIGSTOP a worker (alive but silent) when ``event`` fires.

        The supervisor can only recover from a hang when a ``round_timeout``
        is configured — a stopped worker still passes the liveness check.
        """
        self._actions.append(
            {"kind": "hang", "worker": worker, "event": event, "round_index": round_index}
        )

    def delay_worker(
        self,
        worker: int,
        seconds: float,
        event: str = "serving_round",
        round_index: int | None = None,
    ) -> None:
        """Make a worker sleep ``seconds`` before its next message.

        Implemented by enqueueing a ``_fault_sleep`` control message ahead
        of the round about to be dispatched, so the delay is observed
        worker-side (unlike a parent-side sleep, it really does race the
        supervisor's deadline).
        """
        self._actions.append(
            {
                "kind": "delay",
                "worker": worker,
                "seconds": float(seconds),
                "event": event,
                "round_index": round_index,
            }
        )

    def drop_messages(self, worker: int, tag: str, count: int = 1) -> None:
        """Silently drop the next ``count`` parent→worker messages of ``tag``.

        Installed on the next pool start; the worker never sees the message
        and therefore never replies, so the parent's only recovery path is
        the ``round_timeout`` hung-worker deadline.
        """
        self._actions.append(
            {"kind": "drop", "worker": worker, "tag": tag, "count": int(count)}
        )

    # ------------------------------------------------------------------ #
    # snapshot faults (fire in the temp-write → atomic-rename window)
    # ------------------------------------------------------------------ #
    def crash_before_replace(self, event: str = "snapshot_replace") -> None:
        """Abort the save between temp-file write and atomic rename.

        Raises :class:`InjectedCrash` out of ``save_query_index``; the temp
        file is left on disk and the destination is never touched —
        exactly the state a process crash at that point leaves behind.
        ``event`` selects the atomic-writer seam: ``"snapshot_replace"``
        (the ``.npz`` archive or any other single-file writer) or
        ``"flat_replace"`` (the flat layout's manifest commit point).
        """
        self._actions.append({"kind": "snapshot_crash", "event": event})

    def truncate_snapshot(
        self, keep_fraction: float = 0.5, event: str = "snapshot_replace"
    ) -> None:
        """Truncate the snapshot temp file before the rename goes through.

        The rename then publishes a torn archive — the load path must reject
        it with ``SnapshotCorruptError``.  ``event`` selects the seam as in
        :meth:`crash_before_replace`.
        """
        self._actions.append(
            {
                "kind": "snapshot_truncate",
                "event": event,
                "keep_fraction": float(keep_fraction),
            }
        )

    def corrupt_snapshot(
        self,
        offset: int | None = None,
        flip: int = 0xFF,
        event: str = "snapshot_replace",
    ) -> None:
        """XOR one byte of the snapshot temp file before the rename.

        ``offset`` defaults to the middle of the file.  Publishes a
        bit-flipped archive; the zip layer or the per-array checksums (or,
        for ``event="flat_replace"``, the manifest's self-CRC) must catch it
        on load.
        """
        self._actions.append(
            {
                "kind": "snapshot_corrupt",
                "event": event,
                "offset": offset,
                "flip": int(flip),
            }
        )

    # ------------------------------------------------------------------ #
    # process faults and callbacks
    # ------------------------------------------------------------------ #
    def kill_process(
        self, event: str, after: int = 0, round_index: int | None = None
    ) -> None:
        """SIGKILL the current process on the ``after``-th later firing of ``event``.

        ``after=0`` dies on the first matching firing, ``after=1`` on the
        second, and so on — the knob that moves a crash to *every* armed
        seam occurrence in turn.  The signal is delivered to ``os.getpid()``
        and is not catchable, so this must only ever be armed inside a
        sacrificial child process (the WAL recovery matrix forks one per
        crash point); nothing after the firing runs, exactly like a real
        OOM kill.
        """
        self._actions.append(
            {
                "kind": "kill_process",
                "event": event,
                "after": int(after),
                "round_index": round_index,
            }
        )

    def on_event(
        self, event: str, callback, count: int = 1, round_index: int | None = None
    ) -> None:
        """Invoke ``callback(info)`` when ``event`` fires (``count`` times).

        The callback runs synchronously inside the production code's seam —
        on whatever thread fired it — so it can block (stalling a WAL replay
        while a test probes daemon health), raise, or record the seam's
        ``info`` dict for later assertions.
        """
        self._actions.append(
            {
                "kind": "callback",
                "event": event,
                "callback": callback,
                "count": int(count),
                "round_index": round_index,
            }
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _matches(self, action: dict, event: str, info: dict) -> bool:
        if action.get("event") != event:
            return False
        wanted_round = action.get("round_index")
        if wanted_round is not None and info.get("round_index") != wanted_round:
            return False
        return True

    def dispatch(self, event: str, info: dict) -> None:
        """Fire every armed action matching ``event`` (each at most once)."""
        if event == "pool_start":
            self._install_queue_faults(info["pool"])
            return
        remaining: list[dict] = []
        for action in self._actions:
            if action["kind"] == "drop" or not self._matches(action, event, info):
                remaining.append(action)
                continue
            if action["kind"] == "kill_process" and action["after"] > 0:
                action["after"] -= 1
                remaining.append(action)
                continue
            if action["kind"] == "callback" and action["count"] > 1:
                action["count"] -= 1
                remaining.append(action)
            self._execute(action, info)
        self._actions = remaining

    def _install_queue_faults(self, pool) -> None:
        """Wrap the new pool's task queues for the armed ``drop`` faults."""
        for action in self._actions:
            if action["kind"] != "drop":
                continue
            worker = action["worker"]
            if worker < len(pool._task_queues):
                pool._task_queues[worker] = _DroppingQueue(
                    pool._task_queues[worker], action["tag"], action["count"], self
                )
                self.fired.append(("drop_armed", worker))

    def _execute(self, action: dict, info: dict) -> None:
        kind = action["kind"]
        if kind in ("kill", "hang", "delay"):
            pool = info.get("pool")
            if pool is None:
                return  # seam fired without a pool (e.g. serial daemon batch)
            worker = action["worker"]
            if worker >= len(pool._processes):
                return
            process = pool._processes[worker]
            if kind == "delay":
                pool._task_queues[worker].put(("_fault_sleep", action["seconds"]))
                self.fired.append(("delay", worker, action["seconds"]))
            elif process.is_alive():
                if kind == "kill":
                    os.kill(process.pid, signal.SIGKILL)
                    process.join(timeout=10)
                    self.fired.append(("kill", worker))
                else:  # hang
                    os.kill(process.pid, signal.SIGSTOP)
                    self.fired.append(("hang", worker))
        elif kind == "kill_process":
            self.fired.append(("kill_process", action["event"]))
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "callback":
            self.fired.append(("callback", action["event"]))
            action["callback"](info)
        elif kind == "snapshot_crash":
            self.fired.append(("snapshot_crash", str(info["tmp"])))
            raise InjectedCrash(f"injected crash before replacing {info['path']}")
        elif kind == "snapshot_truncate":
            tmp = Path(info["tmp"])
            data = tmp.read_bytes()
            keep = int(len(data) * action["keep_fraction"])
            tmp.write_bytes(data[:keep])
            self.fired.append(("snapshot_truncate", keep))
        elif kind == "snapshot_corrupt":
            tmp = Path(info["tmp"])
            data = bytearray(tmp.read_bytes())
            offset = action["offset"]
            if offset is None:
                offset = len(data) // 2
            data[offset] ^= action["flip"]
            tmp.write_bytes(bytes(data))
            self.fired.append(("snapshot_corrupt", offset))


class inject:
    """Context manager installing a fresh :class:`FaultPlan` as the active plan.

    Plans do not nest (the seams consult one module-global); entering while
    another plan is active raises ``RuntimeError``.
    """

    def __enter__(self) -> FaultPlan:
        global _INJECTOR
        if _INJECTOR is not None:
            raise RuntimeError("a fault-injection plan is already active")
        self._plan = FaultPlan()
        _INJECTOR = self._plan
        return self._plan

    def __exit__(self, exc_type, exc, tb) -> None:
        global _INJECTOR
        _INJECTOR = None
