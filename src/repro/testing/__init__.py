"""Test-support machinery that ships with the library.

Currently one module: :mod:`repro.testing.faults`, the fault-injection
harness behind ``tests/faults/``.  It lives in ``src`` (not ``tests``)
because the production executor and snapshot writer carry the injection
seams — a no-op hook unless a test installs a fault plan — and keeping the
hook protocol next to the seams keeps the two in lock step.
"""

from repro.testing.faults import FaultPlan, InjectedCrash, inject

__all__ = ["FaultPlan", "InjectedCrash", "inject"]
