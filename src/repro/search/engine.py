"""The search engine: candidate generation + verification, with timing.

:class:`SearchEngine` is the composition point of the two phases the paper
analyses.  It times each phase separately (the paper always reports the full
execution time, including candidate generation and all hashing) and packages
the output in a :class:`~repro.search.results.SearchResult`.

:func:`all_pairs_similarity` is the one-call entry point most users need:
give it data, a threshold and a measure, and it picks the pipeline the
paper's results suggest (AllPairs + BayesLSH for weighted cosine, LSH +
BayesLSH for Jaccard) unless told otherwise.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.candidates.base import CandidateGenerator
from repro.datasets.base import Dataset
from repro.search.results import SearchResult
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection
from repro.verification.base import Verifier

__all__ = ["SearchEngine", "all_pairs_similarity", "as_collection"]


def as_collection(data, n_features: int | None = None) -> VectorCollection:
    """Coerce user data into a :class:`VectorCollection`.

    Accepts a :class:`Dataset`, a :class:`VectorCollection`, a
    :class:`~repro.serving.segments.SegmentedCollection` (consolidated into
    one monolithic collection — the all-pairs pipelines operate on a single
    matrix), a scipy sparse matrix, a dense array, or a list of sets / dicts.

    ``n_features`` pins the collection's feature space — the serving layer
    passes an index's feature count so that inserted vectors and query
    batches align with the indexed corpus.  Token-set and dict inputs are
    built directly in that space; array-like inputs must already have exactly
    that many columns (a mismatch raises ``ValueError``).
    """
    collection = _coerce_collection(data, n_features)
    if n_features is not None and collection.n_features != n_features:
        raise ValueError(
            f"data has {collection.n_features} features, expected {n_features}"
        )
    return collection


def _coerce_collection(data, n_features: int | None) -> VectorCollection:
    # Imported lazily: the serving layer sits above the search layer, and
    # the engine only needs the type for this isinstance dispatch.
    from repro.serving.segments import SegmentedCollection

    if isinstance(data, Dataset):
        return data.collection
    if isinstance(data, VectorCollection):
        return data
    if isinstance(data, SegmentedCollection):
        return data.to_collection()
    if sp.issparse(data):
        return VectorCollection(data)
    if isinstance(data, np.ndarray):
        return VectorCollection.from_dense(data)
    if isinstance(data, (list, tuple)):
        if not data:
            if n_features is None:
                raise ValueError(
                    "cannot build a collection from an empty sequence without n_features"
                )
            return VectorCollection(sp.csr_matrix((0, n_features), dtype=np.float64))
        first = data[0]
        if isinstance(first, dict):
            return VectorCollection.from_dicts(data, n_features=n_features)
        if isinstance(first, (set, frozenset)):
            return VectorCollection.from_sets(data, n_features=n_features)
        if isinstance(first, (list, tuple, np.ndarray)):
            if n_features is None:
                return VectorCollection.from_sets(data)
            # With the feature space pinned, a batch of integer rows is a
            # batch of token-id sets *unless* every row has exactly
            # n_features entries — then it can only plausibly be a dense
            # matrix (a token set naming every feature is degenerate), and
            # treating it as ids would silently corrupt the vectors.
            integer_rows = all(
                len(row) == 0 or np.issubdtype(np.asarray(row).dtype, np.integer)
                for row in data
            )
            dense_shaped = all(len(row) == n_features for row in data)
            if integer_rows and not dense_shaped:
                return VectorCollection.from_sets(data, n_features=n_features)
            return VectorCollection.from_dense(np.asarray(data, dtype=np.float64))
    # Last resort: let numpy try.
    return VectorCollection.from_dense(np.asarray(data, dtype=np.float64))


class SearchEngine:
    """A candidate generator paired with a verifier.

    Parameters
    ----------
    generator:
        Phase-1 algorithm producing candidate pairs.
    verifier:
        Phase-2 algorithm deciding which candidates to report (bound to the
        collection it will be run on).
    name:
        Optional pipeline name for reports; defaults to
        ``"<generator>+<verifier>"``.
    """

    def __init__(self, generator: CandidateGenerator, verifier: Verifier, name: str | None = None):
        if generator.measure.name != verifier.measure.name:
            raise ValueError(
                "generator and verifier disagree on the similarity measure: "
                f"{generator.measure.name!r} vs {verifier.measure.name!r}"
            )
        if abs(generator.threshold - verifier.threshold) > 1e-12:
            raise ValueError(
                "generator and verifier disagree on the threshold: "
                f"{generator.threshold} vs {verifier.threshold}"
            )
        self._generator = generator
        self._verifier = verifier
        self._name = name or f"{generator.name}+{verifier.name}"

    @property
    def name(self) -> str:
        """Pipeline name used in reports (``"<generator>+<verifier>"`` by default)."""
        return self._name

    @property
    def generator(self) -> CandidateGenerator:
        """The phase-1 candidate generator."""
        return self._generator

    @property
    def verifier(self) -> Verifier:
        """The phase-2 candidate verifier."""
        return self._verifier

    def run(
        self,
        data,
        *,
        block_size: int | None = None,
        n_workers: int | None = None,
        round_timeout: float | None = None,
    ) -> SearchResult:
        """Run the full pipeline on ``data`` and return the scored pairs.

        Parameters
        ----------
        data:
            Anything :func:`as_collection` accepts.
        block_size:
            When set, candidates are generated, deduplicated and verified in
            bounded-memory blocks of at most this many pairs (see
            :class:`~repro.search.executor.StreamExecutor`) instead of one
            monolithic array.  Results are bit-identical either way.
        n_workers:
            When greater than 1, verification is sharded across this many
            forked worker processes (implies streamed execution, with
            ``block_size`` defaulting to
            :data:`~repro.search.executor.DEFAULT_BLOCK_SIZE`).  Results are
            bit-identical to the serial path — including after worker loss,
            which re-executes the affected blocks serially in the parent.
        round_timeout:
            Seconds a silent-but-alive worker may stall a gather before the
            supervisor declares it hung and falls back serially (``None``
            waits forever; dead workers are always detected promptly).  Only
            meaningful with ``n_workers > 1``.
        """
        collection = as_collection(data)
        if n_workers is not None and int(n_workers) < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        if block_size is not None or (n_workers is not None and int(n_workers) > 1):
            return self._run_streamed(collection, block_size, n_workers, round_timeout)
        start_total = time.perf_counter()

        start = time.perf_counter()
        candidates = self._generator.generate(collection)
        generation_time = time.perf_counter() - start

        start = time.perf_counter()
        output = self._verifier.verify(candidates)
        verification_time = time.perf_counter() - start

        total_time = time.perf_counter() - start_total
        metadata = {
            "candidate_metadata": dict(candidates.metadata),
            "hash_comparisons": output.hash_comparisons,
            "exact_computations": output.exact_computations,
            "prune_trace": list(output.trace),
        }
        return SearchResult(
            left=output.left,
            right=output.right,
            similarities=output.estimates,
            method=self._name,
            threshold=self._verifier.threshold,
            measure=self._verifier.measure.name,
            n_candidates=output.n_candidates,
            n_pruned=output.n_pruned,
            timings={
                "generation": generation_time,
                "verification": verification_time,
                "total": total_time,
            },
            exact_similarities=self._verifier.exact_output,
            metadata=metadata,
        )

    def _run_streamed(
        self,
        collection,
        block_size: int | None,
        n_workers: int | None,
        round_timeout: float | None = None,
    ) -> SearchResult:
        """Streamed/sharded execution path (bit-identical to the serial one)."""
        from repro.search.executor import StreamExecutor

        executor = StreamExecutor(
            block_size=block_size, n_workers=n_workers, round_timeout=round_timeout
        )
        candidate_metadata, output, timings = executor.run(
            self._generator, self._verifier, collection
        )
        metadata = {
            "candidate_metadata": candidate_metadata,
            "hash_comparisons": output.hash_comparisons,
            "exact_computations": output.exact_computations,
            "prune_trace": list(output.trace),
            "execution": {
                "mode": "streamed",
                "block_size": executor.block_size,
                "n_workers": executor.n_workers,
            },
        }
        return SearchResult(
            left=output.left,
            right=output.right,
            similarities=output.estimates,
            method=self._name,
            threshold=self._verifier.threshold,
            measure=self._verifier.measure.name,
            n_candidates=output.n_candidates,
            n_pruned=output.n_pruned,
            timings=timings,
            exact_similarities=self._verifier.exact_output,
            metadata=metadata,
        )

    def __repr__(self) -> str:
        return f"SearchEngine(name={self._name!r})"


def all_pairs_similarity(
    data,
    threshold: float,
    measure: str = "cosine",
    method: str | None = None,
    seed: int = 0,
    block_size: int | None = None,
    n_workers: int | None = None,
    round_timeout: float | None = None,
    **pipeline_kwargs,
) -> SearchResult:
    """All-pairs similarity search in one call.

    Parameters
    ----------
    data:
        Anything :func:`as_collection` accepts.
    threshold:
        Similarity threshold ``t`` in (0, 1).
    measure:
        ``"cosine"`` (default), ``"jaccard"`` or ``"binary_cosine"``.
    method:
        Pipeline name from :data:`repro.search.pipelines.PIPELINES`; the
        default is ``"ap_bayeslsh"`` for the cosine measures and
        ``"lsh_bayeslsh"`` for Jaccard — the combinations the paper found
        fastest most often.
    seed:
        Seed for all randomised components.
    block_size, n_workers, round_timeout:
        Streamed/sharded execution knobs, forwarded to :meth:`SearchEngine.run`
        (results are bit-identical to the defaults, including after worker
        loss and serial fallback).
    pipeline_kwargs:
        Extra keyword arguments forwarded to
        :func:`repro.search.pipelines.make_pipeline` (``epsilon``, ``delta``,
        ``gamma``, ``h`` and so on).
    """
    from repro.search.pipelines import make_pipeline

    measure_name = get_measure(measure).name
    if method is None:
        method = "ap_bayeslsh" if measure_name in ("cosine", "binary_cosine") else "lsh_bayeslsh"
    collection = as_collection(data)
    engine = make_pipeline(
        method, collection, measure=measure_name, threshold=threshold, seed=seed, **pipeline_kwargs
    )
    return engine.run(
        collection,
        block_size=block_size,
        n_workers=n_workers,
        round_timeout=round_timeout,
    )
