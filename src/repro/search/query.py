"""Query-centric similarity search: one query object against an indexed collection.

The paper focuses on the *all-pairs* problem, but its introduction frames the
general similarity-search problem ("given a query q, retrieve all objects
with s(x, q) > t"), and BayesLSH applies to that setting unchanged: the
candidate generation index is built once over the collection, and each query
is verified against its candidates with the same Bayesian pruning.

:class:`QueryIndex` packages that workflow:

* at build time the collection is hashed and an LSH banding index is built
  (the same signatures are reused for verification, as in the all-pairs
  pipelines);
* ``query(vector, ...)`` hashes the query, collects the rows sharing at least
  one signature band, and verifies them either exactly or with BayesLSH-style
  pruning depending on ``verification``;
* ``top_k(vector, k)`` returns the ``k`` most similar objects among the
  pairs that pass a (low) threshold — the paper's suggested future-work
  direction of nearest-neighbour retrieval, implemented on top of the
  threshold machinery.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.candidates.lsh_index import signatures_for_false_negative_rate
from repro.core.concentration_cache import ConcentrationCache
from repro.core.min_matches import MinMatchesTable
from repro.core.params import BayesLSHParams
from repro.core.posteriors import make_posterior
from repro.hashing.base import get_hash_family
from repro.search.engine import as_collection
from repro.search.results import ScoredPair
from repro.similarity.measures import get_measure
from repro.similarity.vectors import VectorCollection

__all__ = ["QueryIndex"]


class QueryIndex:
    """An LSH index over a collection supporting threshold and top-k queries.

    Parameters
    ----------
    data:
        The collection to index (anything ``as_collection`` accepts).
    measure:
        ``"cosine"``, ``"jaccard"`` or ``"binary_cosine"``.
    threshold:
        Default similarity threshold for queries (also controls how many
        signatures the index builds for the target recall).
    false_negative_rate:
        Target probability of missing an object exactly at the threshold.
    signature_width:
        Hashes per signature band; defaults to the measure's standard width.
    verification:
        ``"bayes"`` (default) verifies candidates with BayesLSH pruning and
        returns similarity estimates; ``"exact"`` computes exact similarities
        for every candidate.
    epsilon, delta, gamma, k, max_hashes:
        BayesLSH parameters used when ``verification="bayes"``.
    seed:
        Seed for the hash family.
    """

    def __init__(
        self,
        data,
        measure: str = "cosine",
        threshold: float = 0.7,
        false_negative_rate: float = 0.03,
        signature_width: int | None = None,
        verification: str = "bayes",
        epsilon: float = 0.03,
        delta: float = 0.05,
        gamma: float = 0.03,
        k: int = 32,
        max_hashes: int = 2048,
        seed: int = 0,
    ):
        if verification not in ("bayes", "exact"):
            raise ValueError(f"verification must be 'bayes' or 'exact', got {verification!r}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        self._measure = get_measure(measure)
        self._collection = as_collection(data)
        self._prepared = self._measure.prepare(self._collection)
        self._threshold = float(threshold)
        self._verification = verification
        self._params = BayesLSHParams(
            threshold=threshold, epsilon=epsilon, delta=delta, gamma=gamma, k=k, max_hashes=max_hashes
        )
        self._seed = int(seed)
        self._family = get_hash_family(self._measure.lsh_family, self._prepared, seed=seed)

        if signature_width is None:
            signature_width = 8 if self._measure.lsh_family == "simhash" else 4
        self._signature_width = int(signature_width)
        collision = (
            self._threshold
            if self._measure.lsh_family == "minhash"
            else self._family.collision_similarity(self._threshold)
        )
        self._n_signatures = signatures_for_false_negative_rate(
            collision, self._signature_width, false_negative_rate
        )
        self._store = self._family.signatures(self._n_signatures * self._signature_width)

        # band key -> list of row ids
        self._buckets: list[dict[bytes, list[int]]] = []
        non_empty = np.flatnonzero(self._prepared.row_nnz > 0)
        for band in range(self._n_signatures):
            bucket: dict[bytes, list[int]] = {}
            for row in non_empty:
                key = self._store.band_key(int(row), band, self._signature_width)
                bucket.setdefault(key, []).append(int(row))
            self._buckets.append(bucket)

        # BayesLSH machinery shared across queries.
        self._posterior = make_posterior(self._measure.name)
        self._min_matches = MinMatchesTable(
            self._posterior, self._threshold, epsilon, k, max_hashes
        )
        self._concentration = ConcentrationCache(self._posterior, delta, gamma)

    # ------------------------------------------------------------------ #
    @property
    def n_indexed(self) -> int:
        """Number of vectors in the indexed collection."""
        return self._prepared.n_vectors

    @property
    def n_signatures(self) -> int:
        return self._n_signatures

    def _query_collection(self, vector) -> VectorCollection:
        """Wrap a raw query vector as a 1-row collection aligned with the index."""
        if isinstance(vector, (set, frozenset)) or (
            isinstance(vector, (list, tuple)) and vector and isinstance(vector[0], (int, np.integer))
            and not isinstance(vector, np.ndarray)
        ):
            collection = VectorCollection.from_sets([vector], n_features=self._prepared.n_features)
        elif isinstance(vector, dict):
            collection = VectorCollection.from_dicts([vector], n_features=self._prepared.n_features)
        elif sp.issparse(vector):
            collection = VectorCollection(sp.csr_matrix(vector))
        else:
            collection = VectorCollection.from_dense(np.atleast_2d(np.asarray(vector, dtype=np.float64)))
        if collection.n_features != self._prepared.n_features:
            raise ValueError(
                f"query has {collection.n_features} features, index expects {self._prepared.n_features}"
            )
        return self._measure.prepare(collection)

    def _candidate_rows(self, query_prepared: VectorCollection) -> np.ndarray:
        """Rows of the indexed collection sharing at least one band with the query."""
        query_family = get_hash_family(
            self._measure.lsh_family, query_prepared, seed=self._seed
        )
        query_store = query_family.signatures(self._n_signatures * self._signature_width)
        rows: set[int] = set()
        for band in range(self._n_signatures):
            key = query_store.band_key(0, band, self._signature_width)
            rows.update(self._buckets[band].get(key, ()))
        self._last_query_store = query_store
        return np.array(sorted(rows), dtype=np.int64)

    def _exact_similarity_to_query(self, query_prepared: VectorCollection, row: int) -> float:
        joint = VectorCollection(
            sp.vstack([query_prepared.matrix, self._prepared.row(row)])
        )
        return self._measure.exact(self._measure.prepare(joint), 0, 1)

    # ------------------------------------------------------------------ #
    def query(self, vector, threshold: float | None = None) -> list[ScoredPair]:
        """All indexed objects with similarity to ``vector`` above the threshold.

        Returns :class:`ScoredPair` entries whose ``i`` field is always -1
        (the query is not part of the collection) and whose ``j`` field is the
        index of the matching row.  Similarities are estimates under
        ``verification="bayes"`` and exact values under ``"exact"``.
        """
        threshold = self._threshold if threshold is None else float(threshold)
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        query_prepared = self._query_collection(vector)
        if query_prepared.row_nnz[0] == 0:
            return []
        candidates = self._candidate_rows(query_prepared)
        if len(candidates) == 0:
            return []

        if self._verification == "exact":
            scored = [
                (row, self._exact_similarity_to_query(query_prepared, int(row)))
                for row in candidates
            ]
            return [
                ScoredPair(-1, int(row), float(sim)) for row, sim in scored if sim > threshold
            ]

        # Bayesian verification: compare the query's hashes to each candidate's.
        # The query is hashed with a family built on the same seed and feature
        # space as the collection's, so hash function i agrees on both sides.
        params = self._params
        query_family = get_hash_family(self._measure.lsh_family, query_prepared, seed=self._seed)
        query_store = query_family.signatures(params.max_hashes)
        collection_store = self._family.signatures(params.max_hashes)

        def block_matches(row: int, start: int, end: int) -> int:
            if hasattr(query_store, "get_bits"):
                return int(
                    np.sum(
                        query_store.get_bits(0, start, end)
                        == collection_store.get_bits(row, start, end)
                    )
                )
            return int(
                np.sum(
                    query_store.values[0, start:end] == collection_store.values[row, start:end]
                )
            )

        results: list[ScoredPair] = []
        for row in candidates:
            row = int(row)
            matches = 0
            n_seen = 0
            pruned = False
            while n_seen < params.max_hashes:
                matches += block_matches(row, n_seen, n_seen + params.k)
                n_seen += params.k
                if not self._min_matches.passes(matches, n_seen):
                    pruned = True
                    break
                if self._concentration.is_concentrated(matches, n_seen):
                    break
            if pruned:
                continue
            estimate = self._posterior.map_estimate(matches, n_seen)
            results.append(ScoredPair(-1, row, float(estimate)))
        return results

    def top_k(self, vector, k: int = 10, floor_threshold: float = 0.1) -> list[ScoredPair]:
        """The ``k`` indexed objects most similar to ``vector``.

        Candidates are collected from the LSH index and verified exactly, then
        the best ``k`` above ``floor_threshold`` are returned in decreasing
        order of similarity.  With an LSH index tuned for ``threshold`` the
        result is approximate in the same sense as the underlying index:
        objects the index misses cannot be returned.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query_prepared = self._query_collection(vector)
        if query_prepared.row_nnz[0] == 0:
            return []
        candidates = self._candidate_rows(query_prepared)
        scored = [
            ScoredPair(-1, int(row), self._exact_similarity_to_query(query_prepared, int(row)))
            for row in candidates
        ]
        scored = [pair for pair in scored if pair.similarity > floor_threshold]
        scored.sort(key=lambda pair: pair.similarity, reverse=True)
        return scored[:k]
